//! Crash recovery: rebuild a [`DurableStore`] from whatever survived.
//!
//! The invariant recovery enforces is *verified-prefix consistency*: the
//! recovered trees are bit-identical (witnessed by `answers_digest`) to a
//! never-crashed store that ingested some prefix of the acknowledged
//! arrivals — the longest prefix the surviving checksums can vouch for.
//! Corrupt bytes can shorten that prefix; they can never change an
//! answer, and they can never panic the recovery path.
//!
//! ## Procedure
//!
//! 1. Load the newest manifest whose whole-file checksum verifies;
//!    corrupt newer generations are counted and skipped.
//! 2. Walk its segments newest-first for the **base**: the newest entry
//!    whose embedded snapshot verifies end-to-end. Entries at or before
//!    the base are kept as-is (they are the historical row index).
//! 3. Roll forward: newer segments contribute their verified row
//!    prefixes, then WAL generations chain from the replay clock — read
//!    in bounded chunks (never materializing a whole log), each record
//!    checksum-verified, a torn tail dropped. A generation may begin
//!    before the clock; the overlap is skipped, not replayed twice.
//! 4. Replayed rows are re-segmented as they stream through: every
//!    `freeze_rows` rows a fresh segment (rows + snapshot) is written,
//!    so the recovered store is fully covered by segments and memory
//!    stays bounded no matter how long the log grew.
//! 5. Commit a fresh manifest (the new commit point), then reclaim
//!    orphans: `.tmp` staging files, segments no manifest names,
//!    compaction leftovers, fully-covered WAL generations, and migrated
//!    legacy checkpoints.
//!
//! Stores written by the pre-tiered layout (flat `ckpt-*` + WAL) are
//! migrated on the fly: the newest valid checkpoint becomes a
//! snapshot-only anchor segment and the WAL replays on top.

use std::collections::HashSet;
use std::fs::{self, File};
use std::io::Read;
use std::path::{Path, PathBuf};

use swat_tree::StreamSet;

use crate::checkpoint::{self, checkpoint_name, wal_name};
use crate::error::StoreError;
use crate::fault::IoFaults;
use crate::io;
use crate::manifest::{self, Manifest, SegmentEntry, StoreFile};
use crate::segment::{self, segment_name, SegmentData};
use crate::store::{DurableStore, StoreOptions};
use crate::wal::{WalBodyReader, WalHeader, HEADER_LEN};

/// Rows per [`WalBodyReader`] chunk during replay — the unit of the
/// bounded-memory guarantee, deliberately far below any real log size.
const REPLAY_CHUNK_ROWS: usize = 1024;

/// What recovery found and did — the observability half of the story.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Arrival clock of the base snapshot (segment or legacy checkpoint);
    /// `None` when bootstrapped from the `wal-0` header.
    pub checkpoint_t: Option<u64>,
    /// Snapshots that failed verification on the way to the base —
    /// corrupt manifests, segment snapshots, legacy checkpoints.
    pub checkpoints_skipped: usize,
    /// Sequence number of the manifest recovery started from.
    pub manifest_seq: Option<u64>,
    /// Newer segments whose rows were rolled forward over the base.
    pub segments_replayed: usize,
    /// Manifest entries dropped (row sections torn or unverifiable).
    pub segments_dropped: usize,
    /// Unreferenced files reclaimed after the fresh commit point.
    pub orphans_reclaimed: usize,
    /// WAL rows replayed on top of the base state.
    pub wal_rows_replayed: u64,
    /// WAL bytes discarded as torn or corrupt (headers of unusable
    /// generations included).
    pub wal_bytes_dropped: u64,
    /// Arrival clock of the recovered store.
    pub recovered_arrivals: u64,
}

/// Entry point for turning a possibly-damaged store directory back into a
/// live [`DurableStore`].
pub struct RecoveryManager;

/// Rows verified but not yet pushed into the recovering set; drained in
/// `freeze_rows` slices, each becoming a fresh segment.
struct Resegmenter {
    acc: Vec<f64>,
    emit_rows: usize,
    entries: Vec<SegmentEntry>,
}

impl Resegmenter {
    fn pending_rows(&self, streams: usize) -> u64 {
        (self.acc.len() / streams) as u64
    }

    /// Buffer `rows` and emit full segments at every boundary.
    fn push(&mut self, dir: &Path, set: &mut StreamSet, rows: &[f64]) -> Result<(), StoreError> {
        self.acc.extend_from_slice(rows);
        let streams = set.streams();
        while self.acc.len() >= self.emit_rows * streams {
            self.emit(dir, set, self.emit_rows)?;
        }
        Ok(())
    }

    /// Emit one segment of `take_rows` rows (pushing them into `set`
    /// first, so the embedded snapshot is exactly the state at the
    /// segment's end).
    fn emit(
        &mut self,
        dir: &Path,
        set: &mut StreamSet,
        take_rows: usize,
    ) -> Result<(), StoreError> {
        let streams = set.streams();
        let rows: Vec<f64> = self.acc.drain(..take_rows * streams).collect();
        let start_t = set.tree(0).arrivals();
        for row in rows.chunks_exact(streams) {
            set.push_row(row);
        }
        let end_t = set.tree(0).arrivals();
        let name = segment_name(start_t, end_t);
        io::write_atomic(
            &IoFaults::none(),
            dir,
            &name,
            &segment::encode(start_t, &rows, set),
            "write recovery segment",
        )?;
        self.entries.push(SegmentEntry {
            name,
            start_t,
            end_t,
        });
        Ok(())
    }

    /// Emit whatever remains as a final (short) segment.
    fn finish(&mut self, dir: &Path, set: &mut StreamSet) -> Result<(), StoreError> {
        let streams = set.streams();
        let rows = self.acc.len() / streams;
        if rows > 0 {
            self.emit(dir, set, rows)?;
        }
        Ok(())
    }
}

impl RecoveryManager {
    /// Recover the store in `dir` with default [`StoreOptions`]. See the
    /// module docs for the procedure and the consistency contract.
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(DurableStore, RecoveryReport), StoreError> {
        Self::recover_with(dir, StoreOptions::default())
    }

    /// [`Self::recover`] with explicit options (the recovered store's
    /// tuning, and the `freeze_rows` used to re-segment replayed rows).
    pub fn recover_with(
        dir: impl Into<PathBuf>,
        opts: StoreOptions,
    ) -> Result<(DurableStore, RecoveryReport), StoreError> {
        let dir = dir.into();
        let mut report = RecoveryReport::default();

        // 1. Newest verifiable manifest.
        let (man, man_skipped) = manifest::load_newest(&dir)?;
        report.checkpoints_skipped += man_skipped;

        let mut kept: Vec<SegmentEntry> = Vec::new();
        let mut set: Option<StreamSet> = None;
        let mut reseg = Resegmenter {
            acc: Vec::new(),
            emit_rows: if opts.freeze_rows == 0 {
                4096
            } else {
                opts.freeze_rows as usize
            },
            entries: Vec::new(),
        };

        // 2. Base = newest segment with a verifiable snapshot.
        if let Some(m) = &man {
            report.manifest_seq = Some(m.seq);
            let mut base_idx = None;
            for (i, e) in m.entries.iter().enumerate().rev() {
                let ok = fs::read(dir.join(&e.name)).ok().and_then(|bytes| {
                    let seg = SegmentData::parse(&e.name, &bytes).ok()?;
                    if (seg.header.start_t, seg.header.end_t) != (e.start_t, e.end_t) {
                        return None;
                    }
                    seg.snapshot(&e.name).ok()
                });
                match ok {
                    Some(s) => {
                        base_idx = Some(i);
                        set = Some(s);
                        break;
                    }
                    None => report.checkpoints_skipped += 1,
                }
            }
            if let Some(bi) = base_idx {
                report.checkpoint_t = Some(m.entries[bi].end_t);
                kept.extend(m.entries[..=bi].iter().cloned());
                // 3a. Roll forward through newer segments' rows.
                let set = set.as_mut().expect("base snapshot just restored");
                for e in &m.entries[bi + 1..] {
                    match roll_segment(&dir, e, set) {
                        SegRoll::Complete => {
                            kept.push(e.clone());
                            report.segments_replayed += 1;
                        }
                        SegRoll::Partial(rows) => {
                            report.segments_dropped += 1;
                            if !rows.is_empty() {
                                report.segments_replayed += 1;
                                reseg.push(&dir, set, &rows)?;
                            }
                            break;
                        }
                    }
                }
            } else {
                report.segments_dropped += m.entries.len();
            }
        }

        // 2b. Legacy layout: newest valid flat checkpoint becomes a
        // snapshot-only anchor segment.
        if set.is_none() {
            let mut ckpts: Vec<u64> = scan_kind(&dir, |f| match f {
                StoreFile::Checkpoint(t) => Some(t),
                _ => None,
            })?;
            ckpts.sort_unstable_by(|a, b| b.cmp(a));
            for t in ckpts {
                let name = checkpoint_name(t);
                let ok = fs::read(dir.join(&name))
                    .ok()
                    .and_then(|bytes| checkpoint::decode(&name, &bytes).ok())
                    .filter(|s| s.tree(0).arrivals() == t);
                match ok {
                    Some(s) => {
                        let anchor = segment_name(t, t);
                        io::write_atomic(
                            &IoFaults::none(),
                            &dir,
                            &anchor,
                            &segment::encode(t, &[], &s),
                            "write migration anchor segment",
                        )?;
                        kept.push(SegmentEntry {
                            name: anchor,
                            start_t: t,
                            end_t: t,
                        });
                        report.checkpoint_t = Some(t);
                        set = Some(s);
                        break;
                    }
                    None => report.checkpoints_skipped += 1,
                }
            }
        }

        // 2c. Last resort: bootstrap an empty set from the wal-0 header.
        let mut set = match set {
            Some(s) => s,
            None => match bootstrap(&dir)? {
                Some(s) => s,
                None => return Err(StoreError::NoState),
            },
        };

        // 3b. Chain WAL generations forward, bounded-memory.
        replay_wals(&dir, &mut set, &mut reseg, &mut report)?;
        reseg.finish(&dir, &mut set)?;
        report.recovered_arrivals = set.tree(0).arrivals();
        kept.append(&mut reseg.entries);

        // 4. The fresh commit point. Its sequence number must beat every
        // manifest file present, including corrupt newer ones.
        let next_seq = manifest::list_manifests(&dir)?
            .into_iter()
            .max()
            .unwrap_or(0)
            + 1;
        let fresh = Manifest {
            seq: next_seq,
            covered_t: report.recovered_arrivals,
            entries: kept,
        };
        manifest::commit(&IoFaults::none(), &dir, &fresh)?;

        // 5. Reclaim everything the new commit point does not reference.
        report.orphans_reclaimed = reclaim_orphans(&dir, &fresh)?;

        // The recovered store opens a fresh WAL generation at the
        // recovered clock; `covered_t == arrivals` holds by construction.
        let store = DurableStore::resume(dir, set, fresh, opts)?;
        Ok((store, report))
    }
}

enum SegRoll {
    /// Every declared row verified and was replayed; the entry stays.
    Complete,
    /// Only a prefix (possibly empty) verified; the entry is dropped and
    /// the prefix rows are handed back for re-segmentation.
    Partial(Vec<f64>),
}

/// Replay one newer segment's rows on top of `set`.
fn roll_segment(dir: &Path, e: &SegmentEntry, set: &mut StreamSet) -> SegRoll {
    let Ok(bytes) = fs::read(dir.join(&e.name)) else {
        return SegRoll::Partial(Vec::new());
    };
    let Ok(seg) = SegmentData::parse(&e.name, &bytes) else {
        return SegRoll::Partial(Vec::new());
    };
    if (seg.header.start_t, seg.header.end_t) != (e.start_t, e.end_t)
        || e.start_t != set.tree(0).arrivals()
    {
        return SegRoll::Partial(Vec::new());
    }
    let prefix = seg.rows();
    if prefix.values.len() == (e.end_t - e.start_t) as usize * set.streams() {
        for row in prefix.values.chunks_exact(set.streams()) {
            set.push_row(row);
        }
        SegRoll::Complete
    } else {
        SegRoll::Partial(prefix.values)
    }
}

/// Chain WAL generations from the replay clock, reading each in bounded
/// chunks and re-segmenting as rows verify. A generation may start at or
/// before the clock (the overlap is skipped); the chain ends when no
/// generation extends it.
fn replay_wals(
    dir: &Path,
    set: &mut StreamSet,
    reseg: &mut Resegmenter,
    report: &mut RecoveryReport,
) -> Result<(), StoreError> {
    let mut bases: Vec<u64> = scan_kind(dir, |f| match f {
        StoreFile::Wal(b) => Some(b),
        _ => None,
    })?;
    bases.sort_unstable();
    let streams = set.streams();
    let mut tried: HashSet<u64> = HashSet::new();
    loop {
        let logical = set.tree(0).arrivals() + reseg.pending_rows(streams);
        let Some(&base) = bases
            .iter()
            .rev()
            .find(|b| **b <= logical && !tried.contains(b))
        else {
            break;
        };
        tried.insert(base);
        let path = dir.join(wal_name(base));
        let file_len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let Ok(mut file) = File::open(&path) else {
            report.wal_bytes_dropped += file_len;
            continue;
        };
        let mut header_bytes = [0u8; HEADER_LEN];
        let header = match file
            .read_exact(&mut header_bytes)
            .ok()
            .and_then(|()| WalHeader::decode(&header_bytes).ok())
        {
            Some(h) => h,
            None => {
                report.wal_bytes_dropped += file_len;
                continue;
            }
        };
        if header != WalHeader::describe(set.config(), streams, base) {
            report.wal_bytes_dropped += file_len;
            continue;
        }
        let skip_rows = logical - base;
        let mut seen: u64 = 0;
        let mut appended: u64 = 0;
        let mut reader = WalBodyReader::new(file, streams, REPLAY_CHUNK_ROWS);
        while let Some(chunk) = reader.next_rows() {
            for row in chunk.chunks_exact(streams) {
                seen += 1;
                if seen <= skip_rows {
                    continue;
                }
                reseg.push(dir, set, row)?;
                appended += 1;
            }
        }
        report.wal_rows_replayed += appended;
        report.wal_bytes_dropped += file_len
            .saturating_sub(HEADER_LEN as u64)
            .saturating_sub(reader.verified_len());
        if appended == 0 {
            // This generation did not extend the clock; no other
            // generation starts at or before it, so the chain is done.
            break;
        }
    }
    Ok(())
}

/// An empty [`StreamSet`] reconstructed from the `wal-0` header, if that
/// header survives verification.
fn bootstrap(dir: &Path) -> Result<Option<StreamSet>, StoreError> {
    // Only the header matters here; the generation may be huge.
    let Ok(mut file) = File::open(dir.join(wal_name(0))) else {
        return Ok(None);
    };
    let mut bytes = [0u8; HEADER_LEN];
    if file.read_exact(&mut bytes).is_err() {
        return Ok(None);
    }
    let Ok(header) = WalHeader::decode(&bytes) else {
        return Ok(None);
    };
    if header.base_t != 0 {
        return Ok(None);
    }
    let Ok(config) = header.config() else {
        return Ok(None);
    };
    Ok(Some(StreamSet::new(config, header.streams as usize)))
}

/// Collect file-name metadata of one [`StoreFile`] kind.
fn scan_kind<T>(dir: &Path, pick: impl Fn(StoreFile) -> Option<T>) -> Result<Vec<T>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(StoreError::io("list store directory"))? {
        let entry = entry.map_err(StoreError::io("list store directory"))?;
        if let Some(f) = manifest::classify(&entry.file_name().to_string_lossy()) {
            if let Some(t) = pick(f) {
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// Delete every store file the fresh manifest does not reference:
/// `.tmp` staging debris, orphan segments (crashed flushes/compactions),
/// fully-covered WAL generations, migrated legacy checkpoints, and
/// manifest generations older than the kept window.
fn reclaim_orphans(dir: &Path, fresh: &Manifest) -> Result<usize, StoreError> {
    let live: HashSet<&str> = fresh.entries.iter().map(|e| e.name.as_str()).collect();
    let mut reclaimed = 0;
    let keep_manifests: HashSet<u64> = {
        let mut seqs = manifest::list_manifests(dir)?;
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        seqs.into_iter().take(manifest::KEPT_MANIFESTS).collect()
    };
    for entry in fs::read_dir(dir).map_err(StoreError::io("list store directory"))? {
        let entry = entry.map_err(StoreError::io("list store directory"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let doomed = match manifest::classify(&name) {
            Some(StoreFile::Segment(..)) => !live.contains(name.as_str()),
            Some(StoreFile::Checkpoint(_)) => true,
            Some(StoreFile::Wal(_)) => true,
            Some(StoreFile::Manifest(seq)) => !keep_manifests.contains(&seq),
            None => name.ends_with(".tmp"),
        };
        if doomed && fs::remove_file(dir.join(&name)).is_ok() {
            reclaimed += 1;
        }
    }
    checkpoint::sync_dir(dir)?;
    Ok(reclaimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use swat_tree::SwatConfig;

    use crate::store::StoreHealth;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-recovery-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> SwatConfig {
        SwatConfig::with_coefficients(32, 2).unwrap()
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            freeze_rows: 10,
            retry_backoff: Duration::from_millis(1),
            ..StoreOptions::default()
        }
    }

    /// A reference store that never crashes, for digest comparison.
    fn uncrashed(rows: u64) -> StreamSet {
        let mut set = StreamSet::new(config(), 2);
        for i in 0..rows {
            set.push_row(&row(i));
        }
        set
    }

    fn row(i: u64) -> [f64; 2] {
        [(i as f64 * 0.37).sin() * 5.0, i as f64]
    }

    #[test]
    fn clean_shutdown_recovers_bit_identically() {
        let dir = tmp("clean");
        let mut store = DurableStore::create_with(&dir, config(), 2, small_opts()).unwrap();
        for i in 0..75 {
            store.push_row(&row(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let (recovered, report) = RecoveryManager::recover_with(&dir, small_opts()).unwrap();
        assert_eq!(report.recovered_arrivals, 75);
        // Freezes at 10..70 flushed; the base is the newest segment,
        // the 5-row tail replays from the live WAL generation.
        assert_eq!(report.checkpoint_t, Some(70));
        assert_eq!(report.wal_rows_replayed, 5);
        assert_eq!(report.wal_bytes_dropped, 0);
        assert_eq!(recovered.answers_digest(), uncrashed(75).answers_digest());
        // The recovered store is fully covered by segments.
        assert_eq!(recovered.status().covered_t, 75);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_segment_snapshot_falls_back_and_replays_rows() {
        let dir = tmp("fallback");
        let mut store = DurableStore::create_with(&dir, config(), 2, small_opts()).unwrap();
        for i in 0..30 {
            store.push_row(&row(i)).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);

        // Corrupt the newest segment's snapshot section (the last bytes);
        // its rows stay intact, so no data is lost.
        let name = segment_name(20, 30);
        let mut bytes = fs::read(dir.join(&name)).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40;
        fs::write(dir.join(&name), bytes).unwrap();

        let (recovered, report) = RecoveryManager::recover_with(&dir, small_opts()).unwrap();
        assert_eq!(report.checkpoint_t, Some(20));
        assert_eq!(report.checkpoints_skipped, 1);
        assert_eq!(report.segments_replayed, 1);
        assert_eq!(report.recovered_arrivals, 30);
        assert_eq!(recovered.answers_digest(), uncrashed(30).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_trusted() {
        let dir = tmp("torn");
        let mut store = DurableStore::create_with(&dir, config(), 2, small_opts()).unwrap();
        for i in 0..9 {
            store.push_row(&row(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Tear the last record mid-way, as an interrupted write would.
        let name = wal_name(0);
        let len = fs::metadata(dir.join(&name)).unwrap().len();
        let f = fs::OpenOptions::new()
            .write(true)
            .open(dir.join(&name))
            .unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let (recovered, report) = RecoveryManager::recover(&dir).unwrap();
        assert_eq!(report.recovered_arrivals, 8);
        assert_eq!(report.wal_rows_replayed, 8);
        assert!(report.wal_bytes_dropped > 0);
        assert_eq!(recovered.answers_digest(), uncrashed(8).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_a_typed_error() {
        let dir = tmp("empty");
        fs::create_dir_all(&dir).unwrap();
        let err = RecoveryManager::recover(&dir).unwrap_err();
        assert!(matches!(err, StoreError::NoState), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_re_anchors_so_a_second_crash_recovers_too() {
        let dir = tmp("reanchor");
        let mut store = DurableStore::create_with(&dir, config(), 2, small_opts()).unwrap();
        for i in 0..30 {
            store.push_row(&row(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let (mut recovered, _) = RecoveryManager::recover_with(&dir, small_opts()).unwrap();
        for i in 30..45 {
            recovered.push_row(&row(i)).unwrap();
        }
        recovered.sync().unwrap();
        drop(recovered);

        let (again, report) = RecoveryManager::recover(&dir).unwrap();
        assert_eq!(report.recovered_arrivals, 45);
        assert_eq!(again.answers_digest(), uncrashed(45).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_flat_layout_is_migrated_to_the_tiered_one() {
        let dir = tmp("legacy");
        fs::create_dir_all(&dir).unwrap();
        // Hand-build a PR 4 layout: ckpt at t=20 + sealed wal-0 + live
        // wal-20 with 10 more rows.
        let mut set = StreamSet::new(config(), 2);
        let mut wal0 = WalHeader::describe(set.config(), 2, 0).encode();
        for i in 0..20 {
            crate::wal::encode_record(&mut wal0, &row(i));
            set.push_row(&row(i));
        }
        fs::write(dir.join(wal_name(0)), wal0).unwrap();
        fs::write(dir.join(checkpoint_name(20)), checkpoint::encode(&set)).unwrap();
        let mut wal20 = WalHeader::describe(set.config(), 2, 20).encode();
        for i in 20..30 {
            crate::wal::encode_record(&mut wal20, &row(i));
        }
        fs::write(dir.join(wal_name(20)), wal20).unwrap();

        let (recovered, report) = RecoveryManager::recover_with(&dir, small_opts()).unwrap();
        assert_eq!(report.checkpoint_t, Some(20));
        assert_eq!(report.wal_rows_replayed, 10);
        assert_eq!(report.recovered_arrivals, 30);
        assert_eq!(recovered.answers_digest(), uncrashed(30).answers_digest());
        // The legacy files are gone; the tiered layout is in place.
        assert!(!dir.join(checkpoint_name(20)).exists());
        assert!(report.orphans_reclaimed >= 2);
        assert!(recovered.status().covered_t == 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_store_recovers_from_the_wal_alone() {
        let dir = tmp("walonly");
        let opts = small_opts();
        let flush_faults = opts.flush_faults.clone();
        let mut store = DurableStore::create_with(&dir, config(), 2, opts).unwrap();
        flush_faults.kill(); // every background flush fails from the start
        for i in 0..35 {
            store.push_row(&row(i)).unwrap();
        }
        store.sync().unwrap(); // the ack: WAL path is healthy
        assert!(matches!(store.health(), StoreHealth::Degraded { .. }));
        store.crash();

        let (recovered, report) = RecoveryManager::recover_with(&dir, small_opts()).unwrap();
        assert_eq!(report.recovered_arrivals, 35, "acked rows must survive");
        assert_eq!(recovered.answers_digest(), uncrashed(35).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }
}
