//! Checksummed state images: a tiny tagged-record container for durable
//! state that is not a tree — per-node replication bookkeeping, the chaos
//! driver's modeled durable device, operator tooling.
//!
//! ```text
//! "SWIM"  version  frame*     frame = 'R'  len  crc32  tag  payload
//!   4B       1B                       1B   4B    4B    1B   len-1 B
//! ```
//!
//! Frames reuse the tree crate's CRC32 framing ([`swat_tree::codec`]).
//! The caller's record tag travels *inside* the checksummed frame payload
//! (the outer frame tag is the constant `'R'`), so — unlike a bare frame,
//! whose tag byte sits outside its checksum — every single-bit error
//! anywhere in an image is detected, truncation is positioned, and
//! decoding never panics on adversarial bytes. Records keep their write
//! order.

use swat_tree::codec::{write_frame, CodecError, Cursor};

use crate::error::StoreError;

/// First bytes of every image.
pub const IMAGE_MAGIC: &[u8; 4] = b"SWIM";
/// Current image format version.
pub const IMAGE_VERSION: u8 = 1;
/// The fixed outer tag of every record frame.
const REC: u8 = b'R';

/// Incrementally build an image.
#[derive(Debug, Clone)]
pub struct ImageWriter {
    buf: Vec<u8>,
}

impl Default for ImageWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageWriter {
    /// An image with no records yet.
    pub fn new() -> ImageWriter {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(IMAGE_MAGIC);
        buf.push(IMAGE_VERSION);
        ImageWriter { buf }
    }

    /// Append one tagged, checksummed record.
    pub fn record(&mut self, tag: u8, payload: &[u8]) -> &mut Self {
        let mut inner = Vec::with_capacity(1 + payload.len());
        inner.push(tag);
        inner.extend_from_slice(payload);
        write_frame(&mut self.buf, REC, &inner);
        self
    }

    /// The finished image bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Decode an image into its `(tag, payload)` records, verifying every
/// checksum. Errors carry the byte offset of the first problem.
pub fn read_image(bytes: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, StoreError> {
    let corrupt = |source| StoreError::Corrupt {
        file: "image".to_owned(),
        source,
    };
    let mut c = Cursor::new(bytes);
    let magic = c.take(4).map_err(corrupt)?;
    if magic != IMAGE_MAGIC {
        return Err(corrupt(CodecError::Invalid {
            what: "image magic",
            offset: 0,
        }));
    }
    let version = c.u8().map_err(corrupt)?;
    if version != IMAGE_VERSION {
        return Err(corrupt(CodecError::Invalid {
            what: "image version",
            offset: 4,
        }));
    }
    let mut records = Vec::new();
    while !c.is_empty() {
        let (outer, mut payload) = c.frame().map_err(corrupt)?;
        if outer != REC {
            return Err(corrupt(CodecError::Invalid {
                what: "image record frame tag",
                offset: payload.offset(),
            }));
        }
        let tag = payload.u8().map_err(corrupt)?;
        records.push((tag, payload.rest().to_vec()));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_roundtrip_in_order() {
        let mut w = ImageWriter::new();
        w.record(1, b"alpha").record(7, b"").record(1, b"beta");
        let bytes = w.finish();
        let records = read_image(&bytes).unwrap();
        assert_eq!(
            records,
            vec![
                (1u8, b"alpha".to_vec()),
                (7u8, Vec::new()),
                (1u8, b"beta".to_vec())
            ]
        );
    }

    #[test]
    fn empty_image_is_valid_and_empty() {
        assert_eq!(read_image(&ImageWriter::new().finish()).unwrap(), vec![]);
    }

    #[test]
    fn every_flip_and_truncation_is_detected() {
        let mut w = ImageWriter::new();
        w.record(3, b"state bytes here").record(4, &[0xAB; 9]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            // Truncation inside the header or a frame must error; a cut on
            // a frame boundary yields a shorter — but verified — record
            // list, which the caller sees by record count.
            match read_image(&bytes[..cut]) {
                Ok(records) => assert!(records.len() < 2, "cut {cut}"),
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
        for byte in 5..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                read_image(&bad).unwrap_err();
            }
        }
    }
}
