//! Checkpoint files and the atomic write protocol.
//!
//! A checkpoint is a [`StreamSet`] snapshot wrapped in a whole-file
//! checksum:
//!
//! ```text
//! "SWCP"  version  payload_crc32  payload = StreamSet::snapshot()
//!   4B       1B         4B
//! ```
//!
//! The outer checksum makes validation cheap and total — a checkpoint is
//! either verified end-to-end or not used at all — while the payload's
//! own framed sections give positioned diagnostics when it is not.
//!
//! Durability comes from the write protocol, not the format: a checkpoint
//! is written to a `.tmp` sibling, `fsync`ed, atomically renamed into
//! place, and the directory is `fsync`ed so the rename itself survives a
//! crash. At every instant there is a complete old checkpoint or a
//! complete new one on disk, never a half-written file under the real
//! name.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use swat_tree::codec::{crc32, CodecError, Cursor};
use swat_tree::StreamSet;

use crate::error::StoreError;

/// First bytes of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 4] = b"SWCP";
/// Current checkpoint format version.
pub const CKPT_VERSION: u8 = 1;

/// Name of the checkpoint file for a store whose trees have seen
/// `base_t` arrivals. Zero-padded so lexicographic order is chronological.
pub fn checkpoint_name(base_t: u64) -> String {
    format!("ckpt-{base_t:020}.ckpt")
}

/// Name of the WAL extending the checkpoint at `base_t`.
pub fn wal_name(base_t: u64) -> String {
    format!("wal-{base_t:020}.wal")
}

/// Parse `base_t` back out of a file name produced by [`checkpoint_name`]
/// or [`wal_name`]; `None` for files this store never writes.
pub fn parse_name(name: &str) -> Option<(FileKind, u64)> {
    let (kind, rest) = if let Some(r) = name.strip_prefix("ckpt-") {
        (FileKind::Checkpoint, r.strip_suffix(".ckpt")?)
    } else if let Some(r) = name.strip_prefix("wal-") {
        (FileKind::Wal, r.strip_suffix(".wal")?)
    } else {
        return None;
    };
    if rest.len() != 20 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok().map(|t| (kind, t))
}

/// What a store-directory file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A checksummed [`StreamSet`] snapshot.
    Checkpoint,
    /// A write-ahead log generation.
    Wal,
}

/// Serialize a checkpoint image of `set`.
pub fn encode(set: &StreamSet) -> Vec<u8> {
    let payload = set.snapshot();
    let mut out = Vec::with_capacity(9 + payload.len());
    out.extend_from_slice(CKPT_MAGIC);
    out.push(CKPT_VERSION);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validate and restore a checkpoint image. `file` names the source for
/// error context; offsets in the nested snapshot error are relative to
/// the payload, which starts at byte 9 of the file.
pub fn decode(file: &str, bytes: &[u8]) -> Result<StreamSet, StoreError> {
    let corrupt = |source| StoreError::Corrupt {
        file: file.to_owned(),
        source,
    };
    let mut c = Cursor::new(bytes);
    let magic = c.take(4).map_err(corrupt)?;
    if magic != CKPT_MAGIC {
        return Err(corrupt(CodecError::Invalid {
            what: "checkpoint magic",
            offset: 0,
        }));
    }
    let version = c.u8().map_err(corrupt)?;
    if version != CKPT_VERSION {
        return Err(corrupt(CodecError::Invalid {
            what: "checkpoint version",
            offset: 4,
        }));
    }
    let stored = c.u32().map_err(corrupt)?;
    let payload = c.rest();
    let computed = crc32(payload);
    if stored != computed {
        return Err(corrupt(CodecError::ChecksumMismatch {
            offset: 5,
            stored,
            computed,
        }));
    }
    StreamSet::restore(payload).map_err(|source| StoreError::Snapshot {
        file: file.to_owned(),
        source,
    })
}

/// Write `bytes` under `dir/name` with full crash atomicity: temp file,
/// `fsync`, rename, directory `fsync`.
pub fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, StoreError> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(StoreError::io("create checkpoint temp file"))?;
        tmp.write_all(bytes)
            .map_err(StoreError::io("write checkpoint temp file"))?;
        tmp.sync_all()
            .map_err(StoreError::io("fsync checkpoint temp file"))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(StoreError::io("rename checkpoint into place"))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// `fsync` the directory so renames and unlinks inside it are durable.
/// Directory handles cannot be fsynced on every platform; where the
/// operating system refuses, the rename is still atomic and we proceed.
pub fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    match File::open(dir) {
        Ok(d) => {
            let _ = d.sync_all();
            Ok(())
        }
        Err(source) => Err(StoreError::Io {
            context: "open store directory for fsync",
            source,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::SwatConfig;

    fn sample_set() -> StreamSet {
        let mut set = StreamSet::new(SwatConfig::with_coefficients(16, 2).unwrap(), 2);
        for i in 0..40 {
            set.push_row(&[i as f64, 40.0 - i as f64]);
        }
        set
    }

    #[test]
    fn names_roundtrip_and_sort_chronologically() {
        assert_eq!(
            parse_name(&checkpoint_name(42)),
            Some((FileKind::Checkpoint, 42))
        );
        assert_eq!(parse_name(&wal_name(0)), Some((FileKind::Wal, 0)));
        assert!(checkpoint_name(9) < checkpoint_name(10));
        assert_eq!(parse_name("ckpt-12.ckpt"), None); // not zero-padded
        assert_eq!(parse_name("ckpt-00000000000000000042.ckpt.tmp"), None);
        assert_eq!(parse_name("notes.txt"), None);
    }

    #[test]
    fn checkpoint_roundtrips_bit_identically() {
        let set = sample_set();
        let restored = decode("ckpt", &encode(&set)).unwrap();
        assert_eq!(restored.answers_digest(), set.answers_digest());
    }

    #[test]
    fn every_flip_and_truncation_is_rejected_or_identical() {
        let set = sample_set();
        let bytes = encode(&set);
        let reference = set.answers_digest();
        for cut in 0..bytes.len() {
            assert!(decode("ckpt", &bytes[..cut]).is_err(), "cut {cut}");
        }
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                if let Ok(s) = decode("ckpt", &bad) {
                    assert_eq!(s.answers_digest(), reference, "flip {byte}.{bit}");
                }
            }
        }
    }

    #[test]
    fn errors_name_the_file() {
        let e = decode("ckpt-00000000000000000007.ckpt", b"XXXX").unwrap_err();
        assert!(e.to_string().contains("ckpt-00000000000000000007.ckpt"));
    }
}
