//! Background compaction of checkpoint segments.
//!
//! Each flush appends one `freeze_rows`-sized segment; left alone, a
//! long-lived store would accumulate thousands of small files and
//! recovery would open every one. Compaction merges `fanin` adjacent
//! segments into a single larger one: concatenated rows, a rebuilt bloom
//! filter, and the snapshot of the newest input (which *is* the state at
//! the merged end — rows are replayed in arrival order, so the last
//! input's snapshot is bit-identical to replaying all of them).
//!
//! ## Crash safety
//!
//! The merged segment is written atomically under its own name; the
//! manifest commit (fsync → rename → directory fsync) is the single
//! point at which the merge becomes real; inputs are deleted only after
//! that commit. A crash before the commit leaves an orphan merged
//! segment and intact inputs; a crash after it leaves orphan inputs —
//! both are detected and reclaimed by recovery, and neither loses a row.
//! A *disk fault* at any step aborts the compaction cleanly with the
//! inputs untouched.

use std::fs;
use std::path::Path;

use crate::error::StoreError;
use crate::fault::IoFaults;
use crate::io;
use crate::manifest::{self, Manifest, SegmentEntry};
use crate::segment::{self, segment_name, SegmentData};

/// The window of consecutive manifest entries the policy wants merged:
/// the oldest run of `fanin` row-bearing segments whose combined rows
/// stay within `max_rows`. Nothing is proposed until the manifest holds
/// at least `2 * fanin` segments, so the hot tail is left alone.
pub fn plan_window(
    entries: &[SegmentEntry],
    fanin: usize,
    max_rows: u64,
) -> Option<std::ops::Range<usize>> {
    let fanin = fanin.max(2);
    if entries.len() < 2 * fanin {
        return None;
    }
    'starts: for start in 0..=(entries.len() - fanin) {
        let mut total = 0u64;
        for e in &entries[start..start + fanin] {
            let rows = e.end_t - e.start_t;
            if rows == 0 {
                // Snapshot-only anchors (legacy migration, re-anchor)
                // carry no rows and are not worth rewriting.
                continue 'starts;
            }
            total += rows;
        }
        if total <= max_rows {
            return Some(start..start + fanin);
        }
    }
    None
}

/// Merge one [`plan_window`] of `m` into a single segment and commit the
/// resulting manifest. Returns the new manifest, or `None` when the
/// policy finds nothing to merge. On any error the inputs — and the
/// committed manifest — are exactly as before.
pub fn compact_once(
    faults: &IoFaults,
    dir: &Path,
    m: &Manifest,
    fanin: usize,
    max_rows: u64,
) -> Result<Option<Manifest>, StoreError> {
    let Some(window) = plan_window(&m.entries, fanin, max_rows) else {
        return Ok(None);
    };
    let inputs = &m.entries[window.clone()];
    let start_t = inputs[0].start_t;
    let end_t = inputs[inputs.len() - 1].end_t;

    // Read and fully verify every input before writing anything; a
    // corrupt input aborts the compaction (recovery owns that situation),
    // it never produces a merged segment with invented rows.
    let mut rows: Vec<f64> = Vec::new();
    let mut last_set = None;
    for e in inputs {
        let bytes = fs::read(dir.join(&e.name)).map_err(StoreError::io("read segment"))?;
        let seg = SegmentData::parse(&e.name, &bytes)?;
        if !seg.rows_complete() {
            return Err(StoreError::Corrupt {
                file: e.name.clone(),
                source: swat_tree::codec::CodecError::Invalid {
                    what: "segment row section",
                    offset: segment::SEG_HEADER_LEN,
                },
            });
        }
        rows.extend_from_slice(&seg.rows().values);
        if e.end_t == end_t {
            last_set = Some(seg.snapshot(&e.name)?);
        }
    }
    // invariant: the window is non-empty and its last entry has
    // e.end_t == end_t, so last_set is always populated here.
    let set = last_set.expect("compaction window has a last input");

    let merged_name = segment_name(start_t, end_t);
    let bytes = segment::encode(start_t, &rows, &set);
    io::write_atomic(faults, dir, &merged_name, &bytes, "write merged segment")?;

    let mut next = m.clone();
    next.seq += 1;
    next.entries.splice(
        window,
        [SegmentEntry {
            name: merged_name.clone(),
            start_t,
            end_t,
        }],
    );
    manifest::commit(faults, dir, &next)?;

    // The commit happened: the inputs are now orphans. Removal is
    // best-effort — recovery reclaims anything left behind.
    for e in inputs {
        if e.name != merged_name {
            let _ = fs::remove_file(dir.join(&e.name));
        }
    }
    Ok(Some(next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use swat_tree::{StreamSet, SwatConfig};

    use crate::fault::{IoFaultKind, IoFaultPlan};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-compact-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Build `n` chained segments of `rows_per` rows each on disk plus
    /// the manifest naming them; returns (manifest, all rows).
    fn seed(dir: &Path, n: usize, rows_per: u64) -> (Manifest, Vec<f64>) {
        let mut set = StreamSet::new(SwatConfig::with_coefficients(16, 2).unwrap(), 2);
        let mut m = Manifest::default();
        let mut all = Vec::new();
        for g in 0..n {
            let start_t = g as u64 * rows_per;
            let mut rows = Vec::new();
            for i in 0..rows_per {
                let row = [(start_t + i) as f64, -((start_t + i) as f64)];
                set.push_row(&row);
                rows.extend_from_slice(&row);
            }
            let name = segment_name(start_t, start_t + rows_per);
            fs::write(dir.join(&name), segment::encode(start_t, &rows, &set)).unwrap();
            m.entries.push(SegmentEntry {
                name,
                start_t,
                end_t: start_t + rows_per,
            });
            all.extend_from_slice(&rows);
        }
        m.covered_t = n as u64 * rows_per;
        m.seq = 1;
        manifest::commit(&IoFaults::none(), dir, &m).unwrap();
        (m, all)
    }

    #[test]
    fn window_policy_respects_threshold_and_size_cap() {
        let e = |s: u64, t: u64| SegmentEntry {
            name: segment_name(s, t),
            start_t: s,
            end_t: t,
        };
        // Below 2 * fanin: nothing.
        assert_eq!(plan_window(&[e(0, 5), e(5, 10), e(10, 15)], 2, 100), None);
        // Oldest qualifying run wins.
        let six = [
            e(0, 5),
            e(5, 10),
            e(10, 15),
            e(15, 20),
            e(20, 25),
            e(25, 30),
        ];
        assert_eq!(plan_window(&six, 2, 100), Some(0..2));
        // A giant old segment is skipped, the run after it merges.
        let giant = [e(0, 1000), e(1000, 1005), e(1005, 1010), e(1010, 1015)];
        assert_eq!(plan_window(&giant, 2, 100), Some(1..3));
        // Snapshot-only anchors are never rewritten.
        let anchored = [e(0, 0), e(0, 5), e(5, 10), e(10, 15)];
        assert_eq!(plan_window(&anchored, 2, 100), Some(1..3));
    }

    #[test]
    fn merge_is_bit_identical_and_drops_inputs() {
        let dir = tmp("merge");
        let (m, all) = seed(&dir, 4, 6);
        let next = compact_once(&IoFaults::none(), &dir, &m, 2, 1 << 20)
            .unwrap()
            .unwrap();
        assert_eq!(next.entries.len(), 3);
        assert_eq!(next.covered_t, 24);
        let merged = &next.entries[0];
        assert_eq!((merged.start_t, merged.end_t), (0, 12));
        let bytes = fs::read(dir.join(&merged.name)).unwrap();
        let seg = SegmentData::parse(&merged.name, &bytes).unwrap();
        assert!(seg.rows_complete());
        assert_eq!(seg.rows().values, all[..24]);
        seg.snapshot(&merged.name).unwrap();
        // Inputs are gone; everything the manifest names exists.
        assert!(!dir.join(segment_name(0, 6)).exists());
        assert!(!dir.join(segment_name(6, 12)).exists());
        for e in &next.entries {
            assert!(dir.join(&e.name).exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_compaction_aborts_cleanly_leaving_inputs_intact() {
        let dir = tmp("fault");
        let (m, _) = seed(&dir, 4, 6);
        // Fail every step of the merged-segment write protocol in turn:
        // whatever the step, the committed manifest and inputs survive.
        for step in 0..6 {
            let faults = IoFaults::with_plan(IoFaultPlan::at(step, IoFaultKind::Eio));
            let res = compact_once(&faults, &dir, &m, 2, 1 << 20);
            if let Ok(Some(_)) = &res {
                break; // steps past the protocol's end: merge succeeded
            }
            assert!(res.is_err(), "step {step}");
            for e in &m.entries {
                assert!(dir.join(&e.name).exists(), "step {step} lost an input");
            }
            let (newest, _) = manifest::load_newest(&dir).unwrap();
            assert_eq!(newest.unwrap(), m, "step {step} moved the commit point");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
