//! Crash-point grid over the tiered store (ISSUE 10 satellite): kill the
//! store at **every I/O step** of a seeded flush/compaction schedule —
//! and, independently, at every step of the foreground WAL schedule —
//! then recover and require the acked-prefix contract:
//!
//! * zero acked-data loss: `recovered_arrivals >= rows acked by sync()`,
//! * no invention: `recovered_arrivals <= rows pushed`,
//! * bit-identity: the recovered digest equals the uncrashed twin's
//!   digest at exactly `recovered_arrivals` rows,
//! * never a panic.
//!
//! The step horizons are *probed*, not guessed: the same workload first
//! runs against fault-free domains and reports how many operations each
//! domain adjudicated; the grid then replays it once per step with an
//! injected [`IoFaultKind::Crash`] at that step.

use std::path::{Path, PathBuf};
use std::time::Duration;

use swat_store::{DurableStore, IoFaultKind, IoFaultPlan, IoFaults, RecoveryManager, StoreOptions};
use swat_tree::{StreamSet, SwatConfig};

const ROWS: u64 = 60;
const STREAMS: usize = 2;
const SYNC_EVERY: u64 = 9;

fn config() -> SwatConfig {
    SwatConfig::with_coefficients(16, 2).unwrap()
}

fn row(i: u64) -> [f64; STREAMS] {
    [(i as f64 * 0.83).cos() * 12.0, (i % 7) as f64]
}

/// Small tiers so 60 rows exercise freeze, flush, and compaction.
fn opts() -> StoreOptions {
    StoreOptions {
        freeze_rows: 8,
        compact_fanin: 2,
        retry_backoff: Duration::from_millis(1),
        ..StoreOptions::default()
    }
}

/// Scratch on tmpfs when available (each grid cell replays the whole
/// workload; on a disk-backed `/tmp` the grid would be fsync-bound).
fn scratch(name: &str, cell: u64) -> PathBuf {
    let base = Path::new("/dev/shm");
    let base = if base.is_dir() {
        base.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!("swat-crash-{name}-{cell}-{}", std::process::id()))
}

/// Digest of the uncrashed twin at every prefix.
fn digests() -> Vec<u64> {
    let mut set = StreamSet::new(config(), STREAMS);
    let mut out = vec![set.answers_digest()];
    for i in 0..ROWS {
        set.push_row(&row(i));
        out.push(set.answers_digest());
    }
    out
}

/// Run the seeded workload against a store whose fault domains are
/// `wal` / `flush`; returns the highest arrival count acknowledged by a
/// successful `sync()`. Panics bubbling out of here fail the grid —
/// faults must degrade, never explode.
fn workload(dir: &Path, wal: std::sync::Arc<IoFaults>, flush: std::sync::Arc<IoFaults>) -> u64 {
    let o = StoreOptions {
        wal_faults: wal,
        flush_faults: flush,
        ..opts()
    };
    // A fault can hit store creation itself (the initial manifest commit
    // runs in the foreground domain); that is a valid grid cell with
    // nothing acked.
    let Ok(mut store) = DurableStore::create_with(dir, config(), STREAMS, o) else {
        return 0;
    };
    let mut acked = 0;
    for i in 0..ROWS {
        store.push_row(&row(i)).unwrap();
        if (i + 1) % SYNC_EVERY == 0 && store.sync().is_ok() {
            acked = store.arrivals();
        }
    }
    // Drain the background schedule (barrier) so every flush/compaction
    // the workload provoked is attempted before the simulated kill; a
    // degraded barrier is fine, parked rows are the scenario under test.
    let _ = store.checkpoint();
    if store.sync().is_ok() {
        acked = store.arrivals();
    }
    store.crash();
    acked
}

fn check_cell(dir: &Path, acked: u64, digests: &[u64], what: &str) {
    match RecoveryManager::recover_with(dir, opts()) {
        Ok((recovered, report)) => {
            let p = report.recovered_arrivals;
            assert!(p >= acked, "{what}: lost acked rows ({p} < {acked})");
            assert!(p <= ROWS, "{what}: invented rows ({p} > {ROWS})");
            assert_eq!(
                recovered.answers_digest(),
                digests[p as usize],
                "{what}: recovered state is not the uncrashed prefix at {p}"
            );
        }
        Err(e) => {
            assert_eq!(acked, 0, "{what}: acked rows vanished into error: {e}");
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn crash_at_every_flush_and_compaction_step_preserves_acked_rows() {
    let digests = digests();

    // Probe the background schedule's horizon with fault-free domains.
    let probe_flush = IoFaults::none();
    let dir = scratch("probe-flush", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let acked = workload(&dir, IoFaults::none(), probe_flush.clone());
    assert_eq!(acked, ROWS);
    let horizon = probe_flush.steps();
    assert!(
        horizon > 20,
        "schedule too small to be interesting: {horizon}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    for step in 0..horizon {
        let dir = scratch("flush", step);
        let _ = std::fs::remove_dir_all(&dir);
        let flush = IoFaults::with_plan(IoFaultPlan::at(step, IoFaultKind::Crash));
        let acked = workload(&dir, IoFaults::none(), flush);
        check_cell(
            &dir,
            acked,
            &digests,
            &format!("flush crash at step {step}"),
        );
    }
}

#[test]
fn crash_at_every_wal_step_preserves_acked_rows() {
    let digests = digests();

    let probe_wal = IoFaults::none();
    let dir = scratch("probe-wal", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let acked = workload(&dir, probe_wal.clone(), IoFaults::none());
    assert_eq!(acked, ROWS);
    let horizon = probe_wal.steps();
    assert!(horizon > 5, "WAL schedule too small: {horizon}");
    let _ = std::fs::remove_dir_all(&dir);

    for step in 0..horizon {
        let dir = scratch("wal", step);
        let _ = std::fs::remove_dir_all(&dir);
        let wal = IoFaults::with_plan(IoFaultPlan::at(step, IoFaultKind::Crash));
        let acked = workload(&dir, wal, IoFaults::none());
        check_cell(&dir, acked, &digests, &format!("WAL crash at step {step}"));
    }
}

#[test]
fn seeded_transient_fault_storms_never_lose_acked_rows() {
    let digests = digests();

    // Learn both horizons once, then throw seeded multi-fault plans
    // (ENOSPC / EIO / torn, no crash) at both domains simultaneously.
    let pw = IoFaults::none();
    let pf = IoFaults::none();
    let dir = scratch("probe-storm", 0);
    let _ = std::fs::remove_dir_all(&dir);
    workload(&dir, pw.clone(), pf.clone());
    let (hw, hf) = (pw.steps(), pf.steps());
    let _ = std::fs::remove_dir_all(&dir);

    for seed in 0..40u64 {
        let dir = scratch("storm", seed);
        let _ = std::fs::remove_dir_all(&dir);
        let wal = IoFaults::with_plan(IoFaultPlan::seeded(seed, hw, 3));
        let flush = IoFaults::with_plan(IoFaultPlan::seeded(seed ^ 0xA5A5, hf, 4));
        let acked = workload(&dir, wal, flush);
        check_cell(&dir, acked, &digests, &format!("fault storm seed {seed}"));
    }
}
