//! Exhaustive corruption fuzz over the on-disk formats (ISSUE 4,
//! satellite 3): for a reference store directory, flip **every bit of
//! every byte** and truncate at **every offset** of the checkpoint and of
//! each WAL generation — one fault per recovery attempt — and require
//! that recovery returns either a typed error or a store whose digest
//! matches a verified-consistent prefix of the ingested rows. Never a
//! panic, never an unrecognized state.
//!
//! The per-format unit tests already fuzz decode functions in isolation;
//! this test drives the whole `RecoveryManager` path end to end, where a
//! corrupt checkpoint must additionally trigger generation fallback and
//! a corrupt WAL record must cut the replayed prefix.

use std::fs;
use std::path::Path;

use swat_store::{DurableStore, RecoveryManager};
use swat_tree::{StreamSet, SwatConfig};

const ROWS: u64 = 30;
const STREAMS: usize = 2;

fn config() -> SwatConfig {
    SwatConfig::with_coefficients(16, 2).unwrap()
}

fn row(i: u64) -> [f64; STREAMS] {
    [(i as f64 * 0.61).sin() * 8.0, (i % 11) as f64 - 5.0]
}

/// Build the reference directory — a checkpoint at t = 20 with the sealed
/// `wal-0` behind it and ten live rows in `wal-20` — and capture its
/// files, so each fault case can reset the directory with plain writes
/// instead of re-running the (fsync-heavy) store.
fn reference(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let _ = fs::remove_dir_all(dir);
    let mut store = DurableStore::create(dir, config(), STREAMS).unwrap();
    for i in 0..ROWS {
        store.push_row(&row(i)).unwrap();
        if i + 1 == 20 {
            store.checkpoint().unwrap();
        }
    }
    store.sync().unwrap();
    drop(store);
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

/// Restore the directory to exactly the reference file set.
fn reset(dir: &Path, files: &[(String, Vec<u8>)]) {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    for (name, bytes) in files {
        fs::write(dir.join(name), bytes).unwrap();
    }
}

/// `answers_digest` of every uncrashed prefix.
fn digests() -> Vec<u64> {
    let mut set = StreamSet::new(config(), STREAMS);
    let mut out = vec![set.answers_digest()];
    for i in 0..ROWS {
        set.push_row(&row(i));
        out.push(set.answers_digest());
    }
    out
}

/// Recover `dir` and check the contract against the prefix digests.
fn check(dir: &Path, digests: &[u64], what: &str) {
    match RecoveryManager::recover(dir.to_path_buf()) {
        Ok((store, report)) => {
            let p = report.recovered_arrivals as usize;
            assert!(
                p < digests.len(),
                "{what}: recovered past the ingested rows"
            );
            assert_eq!(
                store.answers_digest(),
                digests[p],
                "{what}: recovered state is not the uncrashed prefix at {p}"
            );
        }
        Err(e) => {
            // Typed degradation; exercise Display too, it must not panic.
            let _ = e.to_string();
        }
    }
}

#[test]
fn every_single_bit_flip_recovers_consistently() {
    let dir = std::env::temp_dir().join(format!("swat-fuzz-flip-{}", std::process::id()));
    let digests = digests();
    let files = reference(&dir);
    assert!(files.iter().any(|(f, _)| f.starts_with("ckpt-")));
    assert!(
        files.len() >= 3,
        "expected checkpoint + two WAL generations"
    );

    for (file, pristine) in &files {
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                reset(&dir, &files);
                let mut bad = pristine.clone();
                bad[byte] ^= 1 << bit;
                fs::write(dir.join(file), &bad).unwrap();
                check(&dir, &digests, &format!("{file} flip {byte}.{bit}"));
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_recovers_consistently() {
    let dir = std::env::temp_dir().join(format!("swat-fuzz-cut-{}", std::process::id()));
    let digests = digests();
    let files = reference(&dir);

    for (file, pristine) in &files {
        for cut in 0..pristine.len() {
            reset(&dir, &files);
            fs::write(dir.join(file), &pristine[..cut]).unwrap();
            check(&dir, &digests, &format!("{file} cut {cut}"));
        }
    }

    // Deleting any single file must degrade gracefully too.
    for (file, _) in &files {
        reset(&dir, &files);
        fs::remove_file(dir.join(file)).unwrap();
        check(&dir, &digests, &format!("{file} deleted"));
    }
    let _ = fs::remove_dir_all(&dir);
}
