//! Exhaustive corruption fuzz over the on-disk formats (ISSUE 4
//! satellite 3, extended to the tiered layout by ISSUE 10): for a
//! reference store directory holding **segments, manifests, and WAL
//! generations**, flip every bit of every byte and truncate at every
//! offset — one fault per recovery attempt — and require that recovery
//! returns either a typed error or a store whose digest matches a
//! verified-consistent prefix of the ingested rows. Never a panic,
//! never an unrecognized state.
//!
//! The per-format unit tests already fuzz decode functions in isolation;
//! this test drives the whole `RecoveryManager` path end to end, where a
//! corrupt segment snapshot must trigger base fallback, a corrupt
//! manifest must fall back a manifest generation, and a corrupt WAL
//! record must cut the replayed prefix.

use std::fs;
use std::path::Path;
use std::time::Duration;

use swat_store::{DurableStore, RecoveryManager, StoreOptions};
use swat_tree::{StreamSet, SwatConfig};

const ROWS: u64 = 30;
const STREAMS: usize = 2;

/// Small freeze/compaction knobs so 30 rows produce a genuinely tiered
/// layout: several segments (one of them compacted), two manifest
/// generations, and a live WAL tail.
fn opts() -> StoreOptions {
    StoreOptions {
        freeze_rows: 8,
        compact_fanin: 2,
        retry_backoff: Duration::from_millis(1),
        ..StoreOptions::default()
    }
}

fn config() -> SwatConfig {
    SwatConfig::with_coefficients(16, 2).unwrap()
}

/// A scratch directory on tmpfs when available: each fault case runs a
/// full recovery (manifest commit + segment writes, fsync-heavy), and on
/// a disk-backed `/tmp` the ~40k cases would be fsync-bound.
fn scratch(name: &str) -> std::path::PathBuf {
    let base = Path::new("/dev/shm");
    let base = if base.is_dir() {
        base.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!("swat-fuzz-{name}-{}", std::process::id()))
}

fn row(i: u64) -> [f64; STREAMS] {
    [(i as f64 * 0.61).sin() * 8.0, (i % 11) as f64 - 5.0]
}

/// Build the reference directory — frozen segments up to t = 24 (with at
/// least one compaction behind them), committed manifests, and a live WAL
/// tail — and capture its files, so each fault case can reset the
/// directory with plain writes instead of re-running the (fsync-heavy)
/// store.
fn reference(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let _ = fs::remove_dir_all(dir);
    let mut store = DurableStore::create_with(dir, config(), STREAMS, opts()).unwrap();
    for i in 0..ROWS {
        store.push_row(&row(i)).unwrap();
        if i + 1 == 20 {
            store.checkpoint().unwrap();
        }
    }
    store.sync().unwrap();
    drop(store);
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

/// Restore the directory to exactly the reference file set.
fn reset(dir: &Path, files: &[(String, Vec<u8>)]) {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    for (name, bytes) in files {
        fs::write(dir.join(name), bytes).unwrap();
    }
}

/// `answers_digest` of every uncrashed prefix.
fn digests() -> Vec<u64> {
    let mut set = StreamSet::new(config(), STREAMS);
    let mut out = vec![set.answers_digest()];
    for i in 0..ROWS {
        set.push_row(&row(i));
        out.push(set.answers_digest());
    }
    out
}

/// Recover `dir` and check the contract against the prefix digests.
fn check(dir: &Path, digests: &[u64], what: &str) {
    match RecoveryManager::recover(dir.to_path_buf()) {
        Ok((store, report)) => {
            let p = report.recovered_arrivals as usize;
            assert!(
                p < digests.len(),
                "{what}: recovered past the ingested rows"
            );
            assert_eq!(
                store.answers_digest(),
                digests[p],
                "{what}: recovered state is not the uncrashed prefix at {p}"
            );
        }
        Err(e) => {
            // Typed degradation; exercise Display too, it must not panic.
            let _ = e.to_string();
        }
    }
}

#[test]
fn every_single_bit_flip_recovers_consistently() {
    let dir = scratch("flip");
    let digests = digests();
    let files = reference(&dir);
    assert!(files.iter().any(|(f, _)| f.starts_with("seg-")));
    assert!(files.iter().any(|(f, _)| f.starts_with("manifest-")));
    assert!(files.iter().any(|(f, _)| f.starts_with("wal-")));
    assert!(
        files.len() >= 5,
        "expected segments + manifests + live WAL, got {files:?}",
        files = files.iter().map(|(f, _)| f).collect::<Vec<_>>()
    );

    for (file, pristine) in &files {
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                reset(&dir, &files);
                let mut bad = pristine.clone();
                bad[byte] ^= 1 << bit;
                fs::write(dir.join(file), &bad).unwrap();
                check(&dir, &digests, &format!("{file} flip {byte}.{bit}"));
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_recovers_consistently() {
    let dir = scratch("cut");
    let digests = digests();
    let files = reference(&dir);

    for (file, pristine) in &files {
        for cut in 0..pristine.len() {
            reset(&dir, &files);
            fs::write(dir.join(file), &pristine[..cut]).unwrap();
            check(&dir, &digests, &format!("{file} cut {cut}"));
        }
    }

    // Deleting any single file must degrade gracefully too.
    for (file, _) in &files {
        reset(&dir, &files);
        fs::remove_file(dir.join(file)).unwrap();
        check(&dir, &digests, &format!("{file} deleted"));
    }
    let _ = fs::remove_dir_all(&dir);
}
