//! Regression test for unbounded recovery memory (ISSUE 10 satellite):
//! PR 4's recovery read each WAL generation wholesale with `fs::read`,
//! so a store that ran for a long time between checkpoints made recovery
//! allocate the entire log at once. Recovery now streams the body in
//! fixed-size chunks and re-segments every `freeze_rows` rows, so its
//! peak heap usage is bounded by the chunk/segment size, not the log.
//!
//! The test synthesizes a multi-megabyte single-generation WAL, recovers
//! it under a counting global allocator, and asserts the recovery-time
//! peak stays a small fraction of the log size (while still verifying
//! the recovered digest is bit-identical to the uncrashed twin).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use swat_store::wal::{encode_record, WalHeader};
use swat_store::{RecoveryManager, StoreOptions};
use swat_tree::{StreamSet, SwatConfig};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ROWS: u64 = 400_000;
const STREAMS: usize = 2;

fn row(i: u64) -> [f64; STREAMS] {
    [(i as f64 * 0.0173).sin() * 40.0, (i % 97) as f64]
}

fn scratch() -> PathBuf {
    let base = Path::new("/dev/shm");
    let base = if base.is_dir() {
        base.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!("swat-replay-mem-{}", std::process::id()))
}

#[test]
fn recovery_memory_is_bounded_by_chunks_not_log_size() {
    let config = SwatConfig::with_coefficients(16, 2).unwrap();
    let dir = scratch();
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // One giant generation, as a store that never froze would leave it —
    // written directly so building it doesn't inflate the measurement.
    let mut twin = StreamSet::new(config, STREAMS);
    let mut wal = WalHeader::describe(&config, STREAMS, 0).encode();
    wal.reserve(ROWS as usize * (4 + 8 * STREAMS));
    for i in 0..ROWS {
        let r = row(i);
        encode_record(&mut wal, &r);
        twin.push_row(&r);
    }
    let wal_len = wal.len();
    fs::write(dir.join("wal-00000000000000000000.wal"), &wal).unwrap();
    drop(wal);

    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let (recovered, report) = RecoveryManager::recover_with(
        &dir,
        StoreOptions {
            retry_backoff: Duration::from_millis(1),
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);

    assert_eq!(report.recovered_arrivals, ROWS);
    assert_eq!(report.wal_rows_replayed, ROWS);
    assert_eq!(recovered.answers_digest(), twin.answers_digest());
    drop(recovered);

    // The log is ~8 MB; bounded replay must stay well under it. The
    // budget leaves room for the recovered trees themselves plus one
    // freeze_rows segment buffer, but a whole-log read would blow it.
    assert!(
        peak < wal_len / 2,
        "recovery peak {peak} bytes vs log {wal_len} bytes — replay is not bounded"
    );
    let _ = fs::remove_dir_all(&dir);
}
