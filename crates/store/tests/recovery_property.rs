//! The durability layer's central property (ISSUE 4 acceptance):
//!
//! For arbitrary arrival streams, crash points, and storage fault plans,
//! recovery either returns a store whose `answers_digest` is
//! **bit-identical** to a never-crashed store over some verified prefix
//! of the acknowledged rows, or a typed [`StoreError`] — never a panic,
//! never a silently different answer. And a recovered store *continues*
//! identically: pushing the same subsequent rows yields the same digests
//! as the uncrashed twin.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use swat_store::{DurableStore, FaultInjector, RecoveryManager, StoreError};
use swat_tree::{StreamSet, SwatConfig};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "swat-recovery-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic, seed-dependent row for arrival `i`.
fn row(seed: u64, streams: usize, i: u64) -> Vec<f64> {
    (0..streams)
        .map(|s| {
            let x = (seed ^ (i << 8) ^ s as u64).wrapping_mul(0x9E3779B97F4A7C15);
            ((x >> 12) as f64 / (1u64 << 52) as f64) * 100.0 - 50.0
        })
        .collect()
}

/// `answers_digest` of an uncrashed set after each prefix 0..=rows, plus
/// the sets themselves at each prefix for continuation checks.
fn prefix_digests(config: SwatConfig, streams: usize, seed: u64, rows: u64) -> Vec<u64> {
    let mut set = StreamSet::new(config, streams);
    let mut digests = vec![set.answers_digest()];
    for i in 0..rows {
        set.push_row(&row(seed, streams, i));
        digests.push(set.answers_digest());
    }
    digests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn recovery_is_prefix_consistent_under_arbitrary_faults(
        window in prop::sample::select(vec![8usize, 16, 32]),
        k in 1usize..4,
        streams in 1usize..4,
        rows in 1u64..90,
        checkpoint_every in prop::sample::select(vec![7u64, 16, 40, 1000]),
        seed in 0u64..1_000_000,
        max_faults in 0usize..5,
    ) {
        let config = SwatConfig::with_coefficients(window, k).unwrap();
        let dir = fresh_dir();

        // Run the store to the crash point, checkpointing along the way.
        let mut store = DurableStore::create(&dir, config, streams).unwrap();
        for i in 0..rows {
            store.push_row(&row(seed, streams, i)).unwrap();
            if (i + 1) % checkpoint_every == 0 {
                store.checkpoint().unwrap();
            }
        }
        store.sync().unwrap();
        drop(store); // crash: the process is gone, only files remain

        // The adversary mutates the surviving files.
        let plan = FaultInjector::new(seed ^ 0xDEAD_BEEF)
            .plan(&dir, max_faults)
            .unwrap();
        plan.apply(&dir).unwrap();

        let digests = prefix_digests(config, streams, seed, rows);
        match RecoveryManager::recover(&dir) {
            Ok((recovered, report)) => {
                let p = report.recovered_arrivals;
                prop_assert!(p <= rows, "recovered {p} rows, only {rows} were ingested");
                prop_assert_eq!(
                    recovered.answers_digest(),
                    digests[p as usize],
                    "recovered state differs from the uncrashed prefix at {}", p
                );
                if plan.faults.is_empty() {
                    prop_assert_eq!(p, rows, "lossless crash must lose nothing");
                }

                // Bit-identical continuation: the recovered store and the
                // uncrashed twin ingest the same next rows in lockstep.
                let mut twin = StreamSet::new(config, streams);
                for i in 0..p {
                    twin.push_row(&row(seed, streams, i));
                }
                let mut recovered = recovered;
                for i in p..p + 16 {
                    let r = row(seed ^ 1, streams, i);
                    recovered.push_row(&r).unwrap();
                    twin.push_row(&r);
                }
                prop_assert_eq!(recovered.answers_digest(), twin.answers_digest());
            }
            // Typed failure is allowed (the plan may have destroyed every
            // generation); panics are not, and reaching this arm at all
            // proves recovery degraded into an error instead of one.
            Err(StoreError::NoState) => {}
            Err(_) => {}
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_crash_recovery_remains_consistent(
        rows in 1u64..60,
        seed in 0u64..1_000_000,
        max_faults in 1usize..4,
    ) {
        // Crash, corrupt, recover, ingest more, crash and corrupt again:
        // the second recovery must be prefix-consistent with the *actual*
        // combined history (first-recovery prefix + continuation).
        let config = SwatConfig::with_coefficients(16, 2).unwrap();
        let dir = fresh_dir();
        let mut store = DurableStore::create(&dir, config, 2).unwrap();
        for i in 0..rows {
            store.push_row(&row(seed, 2, i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        FaultInjector::new(seed).plan(&dir, max_faults).unwrap().apply(&dir).unwrap();

        if let Ok((mut recovered, first)) = RecoveryManager::recover(&dir) {
            let p = first.recovered_arrivals;
            let mut history: Vec<Vec<f64>> = (0..p).map(|i| row(seed, 2, i)).collect();
            for i in 0..20 {
                let r = row(seed ^ 2, 2, i);
                recovered.push_row(&r).unwrap();
                history.push(r);
            }
            recovered.sync().unwrap();
            drop(recovered);
            FaultInjector::new(seed ^ 3).plan(&dir, max_faults).unwrap().apply(&dir).unwrap();

            if let Ok((again, report)) = RecoveryManager::recover(&dir) {
                let q = report.recovered_arrivals as usize;
                prop_assert!(q <= history.len());
                let mut twin = StreamSet::new(config, 2);
                for r in &history[..q] {
                    twin.push_row(r);
                }
                prop_assert_eq!(again.answers_digest(), twin.answers_digest());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
