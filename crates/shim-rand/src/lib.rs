//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for test and
//! simulation workloads. Values differ from upstream `rand`; everything in
//! this repo treats seeds as opaque, so only determinism matters.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset used here).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from the "standard" distribution of `T` (uniform over the
    /// full domain for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain (or `[0, 1)` for
/// floats) — the shim's analogue of `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draw a uniform sample from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; keep the half-open
        // contract the callers (e.g. `Uniform`) assert on.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unrelated to upstream `rand`'s ChaCha-based `StdRng` except in name
    /// and role; this repo only relies on seeded determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a: usize = r.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = r.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&c));
            let d: f64 = r.gen_range(-2.5..=2.5);
            assert!((-2.5..=2.5).contains(&d));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..100.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
