//! Fuzz-style tests for [`Scheduler`]'s ordering guarantee: events with
//! equal timestamps are delivered in scheduling order (FIFO), even when
//! handlers reentrantly schedule more events — including at the tick
//! currently being delivered.
//!
//! The binary-heap scheduler is checked against a trivially-correct
//! reference model that picks the pending entry with the smallest
//! `(timestamp, schedule sequence)` by linear scan.

use proptest::prelude::*;
use swat_sim::Scheduler;

/// What a delivery spawns: `count` children scheduled `delta` ticks after
/// the delivered event's timestamp (`delta == 0` is same-tick reentrancy).
type SpawnSpec = (u8, u8);

/// Reference implementation: linear-scan stable selection over a `Vec`.
/// Mirrors `run_until` semantics (exclusive `end`, handlers may schedule)
/// with the same id-assignment discipline as the real run below.
fn model_run(initial: &[u64], spawns: &[SpawnSpec], end: u64) -> Vec<(u64, u32)> {
    let mut pending: Vec<(u64, u64, u32)> = Vec::new(); // (at, seq, id)
    let mut seq = 0u64;
    let mut next_id = 0u32;
    for &at in initial {
        pending.push((at, seq, next_id));
        seq += 1;
        next_id += 1;
    }
    let mut delivered = Vec::new();
    while let Some(min_idx) = pending
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| (e.0, e.1))
        .map(|(i, _)| i)
    {
        let (at, _, id) = pending[min_idx];
        if at >= end {
            break;
        }
        pending.remove(min_idx);
        // Each delivery consults the spawn plan once, by delivery index.
        if let Some(&(delta, count)) = spawns.get(delivered.len()) {
            for _ in 0..count {
                pending.push((at + u64::from(delta), seq, next_id));
                seq += 1;
                next_id += 1;
            }
        }
        delivered.push((at, id));
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The heap scheduler delivers exactly the reference order for
    /// arbitrary initial schedules and reentrant spawn plans.
    #[test]
    fn run_until_matches_linear_scan_model(
        initial in prop::collection::vec(0u64..24, 1..24),
        spawns in prop::collection::vec((0u8..4, 0u8..4), 0..32),
        end in 1u64..40,
    ) {
        let expected = model_run(&initial, &spawns, end);

        let mut sched: Scheduler<u32> = Scheduler::new();
        let mut next_id = 0u32;
        for &at in &initial {
            sched.schedule(at, next_id);
            next_id += 1;
        }
        let mut delivered: Vec<(u64, u32)> = Vec::new();
        sched.run_until(end, |s, t, id| {
            if let Some(&(delta, count)) = spawns.get(delivered.len()) {
                for _ in 0..count {
                    s.schedule(t + u64::from(delta), next_id);
                    next_id += 1;
                }
            }
            delivered.push((t, id));
        });

        prop_assert_eq!(&delivered, &expected);
        // Delivery never runs backwards and respects the horizon.
        prop_assert!(delivered.windows(2).all(|w| w[0].0 <= w[1].0));
        prop_assert!(delivered.iter().all(|&(t, _)| t < end));
        prop_assert_eq!(sched.delivered(), delivered.len() as u64);
    }

    /// Same-tick FIFO specifically: everything lands on one tick, every
    /// delivery spawns same-tick children for a while, and ids must come
    /// out in exactly the order they were scheduled.
    #[test]
    fn same_tick_reentrancy_is_fifo(
        seeds in 1usize..8,
        spawn_rounds in 0usize..16,
    ) {
        let mut sched: Scheduler<u32> = Scheduler::new();
        let mut next_id = 0u32;
        for _ in 0..seeds {
            sched.schedule(5, next_id);
            next_id += 1;
        }
        let mut order = Vec::new();
        sched.run_until(6, |s, t, id| {
            assert_eq!(t, 5, "everything lives on tick 5");
            if order.len() < spawn_rounds {
                s.schedule(5, next_id); // reentrant same-tick scheduling
                next_id += 1;
            }
            order.push(id);
        });
        // FIFO: scheduling order == delivery order.
        let expected: Vec<u32> = (0..next_id).collect();
        prop_assert_eq!(order, expected);
    }
}

/// Deterministic pinned case: a same-tick child scheduled *during* tick-5
/// delivery runs after the already-queued tick-5 events but before tick 6.
#[test]
fn reentrant_same_tick_child_runs_after_queued_peers() {
    let mut sched: Scheduler<&'static str> = Scheduler::new();
    sched.schedule(5, "a");
    sched.schedule(5, "b");
    sched.schedule(6, "d");
    let mut order = Vec::new();
    sched.run_until(10, |s, t, name| {
        if name == "a" {
            s.schedule(t, "c"); // same-tick, scheduled mid-delivery
        }
        order.push((t, name));
    });
    assert_eq!(order, vec![(5, "a"), (5, "b"), (5, "c"), (6, "d")]);
}
