//! Virtual clock and event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Typed error for attempts to schedule an event before the current
/// virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastTickError {
    /// The requested (past) tick.
    pub at: u64,
    /// The scheduler's current tick.
    pub now: u64,
}

impl fmt::Display for PastTickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot schedule at {}, now is {}", self.at, self.now)
    }
}

impl std::error::Error for PastTickError {}

/// A discrete-event scheduler over a virtual clock of integer ticks.
///
/// Events scheduled for the same tick are delivered in the order they
/// were scheduled (FIFO), making simulations fully deterministic.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: BinaryHeap<Entry<E>>,
    now: u64,
    seq: u64,
    delivered: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(u64, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at tick 0.
    pub fn new() -> Self {
        Scheduler {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current virtual time: the timestamp of the last delivered event.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute tick `at`, rejecting past ticks with
    /// a typed error. Same-tick scheduling is allowed and delivers after
    /// already-queued same-tick events.
    ///
    /// # Errors
    ///
    /// [`PastTickError`] if `at < now`; the event is not enqueued.
    pub fn try_schedule(&mut self, at: u64, event: E) -> Result<(), PastTickError> {
        if at < self.now {
            return Err(PastTickError { at, now: self.now });
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
        Ok(())
    }

    /// Schedule `event` at absolute tick `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`< now`); use [`Scheduler::try_schedule`]
    /// for the fallible form.
    pub fn schedule(&mut self, at: u64, event: E) {
        if let Err(e) = self.try_schedule(at, event) {
            panic!("{e}");
        }
    }

    /// Schedule `event` after `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next pending event, without consuming it.
    pub fn peek_time(&self) -> Option<u64> {
        self.queue.peek().map(|e| e.key.0 .0)
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    ///
    /// Named after the scheduler idiom rather than `Iterator::next`
    /// (delivery advances the clock, a side effect iterators must not
    /// have).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(u64, E)> {
        let entry = self.queue.pop()?;
        let (at, _) = entry.key.0;
        debug_assert!(at >= self.now);
        self.now = at;
        self.delivered += 1;
        Some((at, entry.event))
    }

    /// Deliver events while their timestamp is `< end`, calling `handler`
    /// for each; `handler` may schedule further events. Returns the number
    /// delivered. The clock ends at the last delivered timestamp (not
    /// `end`).
    pub fn run_until<F: FnMut(&mut Self, u64, E)>(&mut self, end: u64, mut handler: F) -> u64 {
        let start_count = self.delivered;
        while let Some(&Entry {
            key: Reverse((at, _)),
            ..
        }) = self.queue.peek()
        {
            if at >= end {
                break;
            }
            let (t, e) = self.next().expect("peeked entry exists");
            handler(self, t, e);
        }
        self.delivered - start_count
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-period task: tracks when it next fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodic {
    next_at: u64,
    period: u64,
}

impl Periodic {
    /// A task first firing at `start` and every `period` ticks after.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn starting_at(start: u64, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Periodic {
            next_at: start,
            period,
        }
    }

    /// When the task next fires.
    pub fn next_fire(&self) -> u64 {
        self.next_at
    }

    /// The period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Consume the pending firing and return the one after it. Call when
    /// handling the task's event to schedule its successor.
    pub fn advance(&mut self) -> u64 {
        self.next_at += self.period;
        self.next_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order_fifo_within_tick() {
        let mut s = Scheduler::new();
        s.schedule(5, "b");
        s.schedule(3, "a");
        s.schedule(5, "c");
        s.schedule(9, "d");
        let order: Vec<(u64, &str)> = std::iter::from_fn(|| s.next()).collect();
        assert_eq!(order, vec![(3, "a"), (5, "b"), (5, "c"), (9, "d")]);
        assert_eq!(s.delivered(), 4);
        assert_eq!(s.now(), 9);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s = Scheduler::new();
        s.schedule(10, ());
        s.next().unwrap();
        s.schedule_in(5, ());
        assert_eq!(s.next().unwrap().0, 15);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn rejects_past_scheduling() {
        let mut s = Scheduler::new();
        s.schedule(10, ());
        s.next().unwrap();
        s.schedule(9, ());
    }

    #[test]
    fn try_schedule_reports_past_ticks() {
        let mut s = Scheduler::new();
        s.schedule(10, 1u8);
        s.next().unwrap();
        let err = s.try_schedule(9, 2).unwrap_err();
        assert_eq!(err, PastTickError { at: 9, now: 10 });
        assert_eq!(err.to_string(), "cannot schedule at 9, now is 10");
        // The rejected event was not enqueued; same-tick is still fine.
        assert_eq!(s.pending(), 0);
        s.try_schedule(10, 3).unwrap();
        assert_eq!(s.next(), Some((10, 3)));
    }

    #[test]
    fn run_until_is_exclusive_and_reentrant() {
        let mut s = Scheduler::new();
        s.schedule(0, 0u32);
        // Each event n < 4 schedules event n+1 two ticks later.
        let delivered = s.run_until(7, |s, t, n| {
            if n < 4 {
                s.schedule(t + 2, n + 1);
            }
        });
        // Events at t = 0, 2, 4, 6 delivered; the one at t = 8 is pending.
        assert_eq!(delivered, 4);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.next().unwrap(), (8, 4));
    }

    #[test]
    fn periodic_progression() {
        let mut p = Periodic::starting_at(2, 3);
        assert_eq!(p.next_fire(), 2);
        assert_eq!(p.advance(), 5);
        assert_eq!(p.advance(), 8);
        assert_eq!(p.period(), 3);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let _ = Periodic::starting_at(0, 0);
    }
}
