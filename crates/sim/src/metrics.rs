//! Experiment measurement: named counters and running statistics.

use std::collections::BTreeMap;
use std::fmt;

/// A running univariate statistic: count, mean, min, max, variance —
/// Welford's algorithm, numerically stable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Named counters and statistics for an experiment run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    stats: BTreeMap<String, Accumulator>,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increment counter `name` by 1.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `by`.
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record observation `x` under statistic `name`.
    pub fn record(&mut self, name: &str, x: f64) {
        self.stats.entry(name.to_owned()).or_default().record(x);
    }

    /// The accumulator for statistic `name`, if any observation was made.
    pub fn stat(&self, name: &str) -> Option<&Accumulator> {
        self.stats.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All statistics, sorted by name.
    pub fn stats(&self) -> impl Iterator<Item = (&str, &Accumulator)> {
        self.stats.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another metrics bag into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, acc) in &other.stats {
            self.stats.entry(k.clone()).or_default().merge(acc);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        for (k, acc) in &self.stats {
            writeln!(f, "{k}: {acc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_statistics() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.variance() - 4.0).abs() < 1e-12);
        assert!((a.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
        assert!((a.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_sane() {
        let a = Accumulator::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..20] {
            left.record(x);
        }
        for &x in &xs[20..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn metrics_counters_and_stats() {
        let mut m = Metrics::new();
        m.incr("messages");
        m.add("messages", 4);
        m.record("latency", 1.0);
        m.record("latency", 3.0);
        assert_eq!(m.counter("messages"), 5);
        assert_eq!(m.counter("unseen"), 0);
        assert_eq!(m.stat("latency").unwrap().count(), 2);
        assert!((m.stat("latency").unwrap().mean() - 2.0).abs() < 1e-12);
        let rendered = m.to_string();
        assert!(rendered.contains("messages: 5"));

        let mut other = Metrics::new();
        other.add("messages", 10);
        other.record("latency", 5.0);
        m.merge(&other);
        assert_eq!(m.counter("messages"), 15);
        assert_eq!(m.stat("latency").unwrap().count(), 3);
    }
}
