//! Deterministic discrete-event simulation kernel.
//!
//! The SWAT paper evaluates both its centralized summarization ("we built
//! a discrete event simulator of an environment with a single data
//! stream") and its distributed replication schemes in simulation, with
//! periodic data arrivals (period `T_d`), periodic queries (period `T_q`),
//! and periodic replication phases. This crate provides the kernel those
//! experiments run on:
//!
//! * [`Scheduler`] — a virtual clock plus an event queue with
//!   deterministic FIFO tie-breaking at equal timestamps,
//! * [`Periodic`] — fixed-period task helper,
//! * [`Metrics`] — named counters and running statistics for measuring
//!   experiments,
//! * [`rng_stream`] — independent seeded RNG streams so workloads are
//!   reproducible and independently variable.
//!
//! Everything is single-threaded and deterministic by construction: the
//! same seed and schedule replay identically, which the integration tests
//! rely on.
//!
//! ```
//! use swat_sim::{Scheduler, Periodic};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event { Arrival, Query }
//!
//! let mut sched = Scheduler::new();
//! let mut arrivals = Periodic::starting_at(0, 2); // every 2 ticks
//! sched.schedule(arrivals.next_fire(), Event::Arrival);
//! sched.schedule(1, Event::Query);
//!
//! let (t, e) = sched.next().unwrap();
//! assert_eq!((t, e), (0, Event::Arrival));
//! sched.schedule(arrivals.advance(), Event::Arrival);
//! assert_eq!(sched.next().unwrap(), (1, Event::Query));
//! assert_eq!(sched.next().unwrap(), (2, Event::Arrival));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod metrics;
pub mod scheduler;

pub use metrics::{Accumulator, Metrics};
pub use scheduler::{PastTickError, Periodic, Scheduler};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// An independent RNG for stream `stream` under master seed `seed`.
///
/// Uses SplitMix64-style mixing so distinct `(seed, stream)` pairs yield
/// uncorrelated generators; the same pair always yields the same stream.
pub fn rng_stream(seed: u64, stream: u64) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let draw = |seed, stream| -> Vec<u32> {
            let mut r = rng_stream(seed, stream);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(draw(1, 0), draw(1, 0));
        assert_ne!(draw(1, 0), draw(1, 1));
        assert_ne!(draw(1, 0), draw(2, 0));
    }
}
