//! Versioned, repairable spanning trees.
//!
//! The paper's replication model (§3) assumes a fixed spanning tree; a
//! crashed interior node therefore silently partitions its subtree.
//! [`DynamicTopology`] wraps an immutable [`Topology`] with the repair
//! operations the self-healing layer needs:
//!
//! * **Re-parenting** ([`DynamicTopology::reparent`]): an orphaned child
//!   detaches from its suspect parent and adopts a new one. The adopter
//!   must not lie inside the child's own subtree, so the structure stays
//!   a tree rooted at the source — attempts to create a cycle are typed
//!   errors, and the healing protocol only ever adopts a *current
//!   ancestor* of the child ([`DynamicTopology::nearest_live_ancestor`]
//!   walks the live path toward the source), which cannot cycle by
//!   construction.
//! * **Rejoin** ([`DynamicTopology::note_rejoin`]): a recovered node
//!   re-enters the tree where it stands — typically as a leaf, since its
//!   orphans re-parented away during the outage — and the event is
//!   recorded so the driver can re-sync its segment directory.
//!
//! Every mutation bumps a version counter and emits a typed
//! [`RepairEvent`], so metrics and tests can audit exactly how the tree
//! evolved. All read accessors mirror [`Topology`]'s; a freshly wrapped
//! tree answers identically to its base.

use std::fmt;

use crate::topology::{NodeId, Topology};

/// What a [`RepairEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// `node` left `old_parent` for `new_parent` (failure repair).
    Reparent,
    /// `node` recovered and re-entered the tree under its current
    /// parent (`old_parent == new_parent`); `as_leaf` says whether all
    /// of its children had re-parented away by then.
    Rejoin {
        /// Whether the node came back with no remaining children.
        as_leaf: bool,
    },
    /// `node` changed its cluster role (`old_parent == new_parent`; the
    /// tree shape is untouched). The daemon's failover layer records
    /// leader elections and shard promotions/demotions here, so the one
    /// audited log covers role transitions as well as tree repairs.
    RoleChange {
        /// The role the node took on.
        role: NodeRole,
    },
}

/// A node's cluster role, as recorded by [`RepairKind::RoleChange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Elected cluster leader.
    Leader,
    /// Primary holder of a data shard.
    Primary,
    /// Warm standby for a data shard.
    Standby,
    /// Holds no role (demoted, or awaiting assignment after a rejoin).
    Follower,
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRole::Leader => write!(f, "leader"),
            NodeRole::Primary => write!(f, "primary"),
            NodeRole::Standby => write!(f, "standby"),
            NodeRole::Follower => write!(f, "follower"),
        }
    }
}

/// One audited mutation of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairEvent {
    /// Tree version after this mutation (the wrapped base is version 0).
    pub version: u64,
    /// Simulation tick the repair happened at.
    pub at: u64,
    /// The node that moved or rejoined.
    pub node: NodeId,
    /// Its parent before the mutation.
    pub old_parent: NodeId,
    /// Its parent after the mutation.
    pub new_parent: NodeId,
    /// Reparent or rejoin.
    pub kind: RepairKind,
}

/// Errors from [`DynamicTopology::reparent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// The source has no parent to repair.
    SourceChild,
    /// A node index is out of range.
    OutOfRange {
        /// The offending index.
        node: usize,
    },
    /// Adopting this parent would create a cycle (it lies inside the
    /// child's subtree, or is the child itself).
    WouldCycle,
    /// The proposed parent already is the current parent.
    Unchanged,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::SourceChild => write!(f, "the source cannot be re-parented"),
            RepairError::OutOfRange { node } => write!(f, "node {node} is out of range"),
            RepairError::WouldCycle => {
                write!(f, "adopting a node of the child's own subtree would cycle")
            }
            RepairError::Unchanged => write!(f, "already the current parent"),
        }
    }
}

impl std::error::Error for RepairError {}

/// A rooted spanning tree that can be repaired at runtime.
///
/// Wraps a base [`Topology`] (kept for reference) with mutable
/// parent/child tables, a version counter, and a typed event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicTopology {
    base: Topology,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    version: u64,
    events: Vec<RepairEvent>,
}

impl DynamicTopology {
    /// Wrap `base`; the dynamic tree starts identical to it (version 0).
    pub fn new(base: Topology) -> Self {
        let parent: Vec<Option<NodeId>> = base.nodes().map(|n| base.parent(n)).collect();
        let children: Vec<Vec<NodeId>> = base.nodes().map(|n| base.children(n).to_vec()).collect();
        DynamicTopology {
            base,
            parent,
            children,
            version: 0,
            events: Vec::new(),
        }
    }

    /// The immutable tree this started from.
    pub fn base(&self) -> &Topology {
        &self.base
    }

    /// Version counter: 0 for the pristine base, +1 per mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Every repair so far, in order.
    pub fn events(&self) -> &[RepairEvent] {
        &self.events
    }

    /// Total nodes including the source.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// A topology always contains at least the source.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of clients (everything but the source).
    pub fn client_count(&self) -> usize {
        self.len() - 1
    }

    /// Current parent of `node` (`None` for the source).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Current children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Whether `node` is the source.
    pub fn is_source(&self, node: NodeId) -> bool {
        node.index() == 0
    }

    /// Whether `node` currently has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// All node ids, source first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// All client ids (everything but the source).
    pub fn clients(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.len()).map(NodeId)
    }

    /// Hops from `node` up to the source on the current tree.
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// The current path from `node` to the source, excluding `node`,
    /// starting with its parent.
    pub fn path_to_source(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The first node on `node`'s current path to the source for which
    /// `is_down` is false. Falls back to the source, which is always
    /// live in the fault model. Ancestors of `node` can never be inside
    /// its subtree, so adopting the result cannot create a cycle.
    pub fn nearest_live_ancestor(
        &self,
        node: NodeId,
        mut is_down: impl FnMut(NodeId) -> bool,
    ) -> NodeId {
        for cand in self.path_to_source(node) {
            if !is_down(cand) {
                return cand;
            }
        }
        NodeId::SOURCE
    }

    /// Detach `child` from its current parent and attach it under
    /// `new_parent`, bumping the version and recording a
    /// [`RepairKind::Reparent`] event. The event is returned by value
    /// (it is `Copy`), built before it is appended to the log — there is
    /// no "read back what was just pushed" step that could panic.
    ///
    /// # Errors
    ///
    /// [`RepairError::SourceChild`] for the source,
    /// [`RepairError::OutOfRange`] for invalid ids,
    /// [`RepairError::WouldCycle`] if `new_parent` sits in `child`'s
    /// subtree (or is `child`), [`RepairError::Unchanged`] if nothing
    /// would change.
    pub fn reparent(
        &mut self,
        at: u64,
        child: NodeId,
        new_parent: NodeId,
    ) -> Result<RepairEvent, RepairError> {
        if child.index() >= self.len() {
            return Err(RepairError::OutOfRange {
                node: child.index(),
            });
        }
        if new_parent.index() >= self.len() {
            return Err(RepairError::OutOfRange {
                node: new_parent.index(),
            });
        }
        let Some(old_parent) = self.parent(child) else {
            return Err(RepairError::SourceChild);
        };
        if new_parent == old_parent {
            return Err(RepairError::Unchanged);
        }
        // Walk from the proposed parent to the source; passing through
        // the child means the proposal is inside the child's subtree.
        let mut cur = new_parent;
        loop {
            if cur == child {
                return Err(RepairError::WouldCycle);
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        self.children[old_parent.index()].retain(|&c| c != child);
        self.children[new_parent.index()].push(child);
        self.parent[child.index()] = Some(new_parent);
        Ok(self.record(RepairEvent {
            version: self.version + 1,
            at,
            node: child,
            old_parent,
            new_parent,
            kind: RepairKind::Reparent,
        }))
    }

    /// Record that `node` recovered and re-entered the tree in place
    /// (its structure is unchanged; orphans that left during the outage
    /// already produced their own reparent events). Bumps the version
    /// and returns the [`RepairKind::Rejoin`] event by value.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn note_rejoin(&mut self, at: u64, node: NodeId) -> RepairEvent {
        let parent = self.parent(node).unwrap_or(NodeId::SOURCE);
        self.record(RepairEvent {
            version: self.version + 1,
            at,
            node,
            old_parent: parent,
            new_parent: parent,
            kind: RepairKind::Rejoin {
                as_leaf: self.is_leaf(node),
            },
        })
    }

    /// Record a role transition for `node` (leader election, shard
    /// promotion/demotion). The tree shape is untouched — the event
    /// exists so one audited log tells the whole failover story.
    pub fn note_role_change(&mut self, at: u64, node: NodeId, role: NodeRole) -> RepairEvent {
        let parent = self.parent(node).unwrap_or(NodeId::SOURCE);
        self.record(RepairEvent {
            version: self.version + 1,
            at,
            node,
            old_parent: parent,
            new_parent: parent,
            kind: RepairKind::RoleChange { role },
        })
    }

    /// Commit one already-built event: bump the version to the event's
    /// and append it to the log. Returning the value that was pushed —
    /// rather than re-reading `events.last()` — keeps the repair layer
    /// free of reachable-panic paths.
    fn record(&mut self, ev: RepairEvent) -> RepairEvent {
        debug_assert_eq!(ev.version, self.version + 1);
        self.version = ev.version;
        self.events.push(ev);
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node must reach the source without revisiting anything.
    fn assert_is_tree(t: &DynamicTopology) {
        for node in t.nodes() {
            let mut seen = vec![false; t.len()];
            let mut cur = node;
            seen[cur.index()] = true;
            while let Some(p) = t.parent(cur) {
                assert!(!seen[p.index()], "cycle through {p}");
                seen[p.index()] = true;
                cur = p;
            }
            assert!(t.is_source(cur), "{node} is disconnected");
        }
        // Parent and child tables agree.
        for node in t.nodes() {
            for &c in t.children(node) {
                assert_eq!(t.parent(c), Some(node));
            }
        }
        let edges: usize = t.nodes().map(|n| t.children(n).len()).sum();
        assert_eq!(edges, t.client_count());
    }

    #[test]
    fn starts_identical_to_base() {
        let base = Topology::complete_binary(2);
        let dyn_t = DynamicTopology::new(base.clone());
        assert_eq!(dyn_t.version(), 0);
        assert!(dyn_t.events().is_empty());
        for n in base.nodes() {
            assert_eq!(dyn_t.parent(n), base.parent(n));
            assert_eq!(dyn_t.children(n), base.children(n));
            assert_eq!(dyn_t.depth(n), base.depth(n));
            assert_eq!(dyn_t.path_to_source(n), base.path_to_source(n));
        }
        assert_eq!(dyn_t.len(), base.len());
        assert!(!dyn_t.is_empty());
    }

    #[test]
    fn reparent_moves_subtree_and_logs_event() {
        // chain S - C1 - C2 - C3: orphan C2 adopts its grandparent S.
        let mut t = DynamicTopology::new(Topology::chain(3));
        let ev = t.reparent(42, NodeId(2), NodeId::SOURCE).unwrap();
        assert_eq!(ev.version, 1);
        assert_eq!(ev.at, 42);
        assert_eq!(ev.node, NodeId(2));
        assert_eq!(ev.old_parent, NodeId(1));
        assert_eq!(ev.new_parent, NodeId::SOURCE);
        assert_eq!(ev.kind, RepairKind::Reparent);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId::SOURCE));
        assert!(t.is_leaf(NodeId(1)));
        // C3 rode along under C2.
        assert_eq!(t.depth(NodeId(3)), 2);
        assert_is_tree(&t);
    }

    #[test]
    fn reparent_rejects_cycles_and_noops() {
        let mut t = DynamicTopology::new(Topology::chain(3));
        assert_eq!(
            t.reparent(0, NodeId(1), NodeId(2)),
            Err(RepairError::WouldCycle),
            "C2 is inside C1's subtree"
        );
        assert_eq!(
            t.reparent(0, NodeId(1), NodeId(1)),
            Err(RepairError::WouldCycle)
        );
        assert_eq!(
            t.reparent(0, NodeId(2), NodeId(1)),
            Err(RepairError::Unchanged)
        );
        assert_eq!(
            t.reparent(0, NodeId::SOURCE, NodeId(1)),
            Err(RepairError::SourceChild)
        );
        assert_eq!(
            t.reparent(0, NodeId(9), NodeId(1)),
            Err(RepairError::OutOfRange { node: 9 })
        );
        assert_eq!(
            t.reparent(0, NodeId(1), NodeId(9)),
            Err(RepairError::OutOfRange { node: 9 })
        );
        assert_eq!(t.version(), 0, "failed repairs must not mutate");
        assert_is_tree(&t);
        for e in [
            RepairError::SourceChild,
            RepairError::OutOfRange { node: 9 },
            RepairError::WouldCycle,
            RepairError::Unchanged,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn nearest_live_ancestor_walks_past_down_nodes() {
        // chain S - C1 - C2 - C3.
        let t = DynamicTopology::new(Topology::chain(3));
        let down = |dead: Vec<NodeId>| move |n: NodeId| dead.contains(&n);
        assert_eq!(
            t.nearest_live_ancestor(NodeId(3), down(vec![])),
            NodeId(2),
            "live parent is the nearest ancestor"
        );
        assert_eq!(
            t.nearest_live_ancestor(NodeId(3), down(vec![NodeId(2)])),
            NodeId(1),
            "grandparent fallback"
        );
        assert_eq!(
            t.nearest_live_ancestor(NodeId(3), down(vec![NodeId(1), NodeId(2)])),
            NodeId::SOURCE
        );
    }

    #[test]
    fn rejoin_notes_leaf_status() {
        let mut t = DynamicTopology::new(Topology::chain(3));
        t.reparent(10, NodeId(2), NodeId::SOURCE).unwrap();
        let ev = t.note_rejoin(20, NodeId(1));
        assert_eq!(ev.kind, RepairKind::Rejoin { as_leaf: true });
        assert_eq!(ev.old_parent, ev.new_parent);
        assert_eq!(t.version(), 2);
        let ev = t.note_rejoin(21, NodeId(2));
        assert_eq!(ev.kind, RepairKind::Rejoin { as_leaf: false });
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn role_changes_are_audited_without_moving_the_tree() {
        let mut t = DynamicTopology::new(Topology::star(3));
        let before_parent = t.parent(NodeId(2));
        let ev = t.note_role_change(30, NodeId(2), NodeRole::Leader);
        assert_eq!(
            ev.kind,
            RepairKind::RoleChange {
                role: NodeRole::Leader
            }
        );
        assert_eq!(ev.old_parent, ev.new_parent);
        assert_eq!(t.parent(NodeId(2)), before_parent, "shape untouched");
        assert_eq!(t.version(), 1);
        let ev = t.note_role_change(31, NodeId(2), NodeRole::Standby);
        assert_eq!(ev.version, 2);
        for role in [
            NodeRole::Leader,
            NodeRole::Primary,
            NodeRole::Standby,
            NodeRole::Follower,
        ] {
            assert!(!role.to_string().is_empty());
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary sequences of ancestor-adoptions keep the
            /// structure a tree: cycles are impossible by construction.
            #[test]
            fn ancestor_adoption_preserves_treeness(
                n in 2usize..20,
                seed in 0u64..1000,
                moves in prop::collection::vec((1usize..64, 0usize..64), 0..24),
            ) {
                let mut t = DynamicTopology::new(Topology::random_tree(n, seed));
                for (at, (child, skip)) in moves.into_iter().enumerate() {
                    let child = NodeId(1 + child % n);
                    let path = t.path_to_source(child);
                    let target = path[skip % path.len()];
                    match t.reparent(at as u64, child, target) {
                        Ok(_) | Err(RepairError::Unchanged) => {}
                        Err(e) => prop_assert!(false, "ancestor adoption failed: {e}"),
                    }
                    assert_is_tree(&t);
                }
                // Version counts exactly the successful mutations.
                prop_assert_eq!(t.version(), t.events().len() as u64);
            }
        }
    }
}
