//! Network substrate for the SWAT replication experiments.
//!
//! The paper's §3 model: "there is one central site S, the primary data
//! source … clients across the network issue queries"; requests travel up
//! a spanning tree toward the source and replicas/updates travel down.
//! The experiments measure "the cost of an algorithm as the number of
//! exchanged messages".
//!
//! This crate provides the two pieces every replication scheme shares:
//!
//! * [`Topology`] — a rooted spanning tree (the source is node 0) with
//!   parent/child navigation and the standard shapes the paper simulates
//!   (single client, chains, complete binary trees),
//! * [`MessageLedger`] — per-kind message accounting; every edge traversal
//!   is one message, with an optional weight for control messages (the
//!   Divergence Caching model charges control messages `w` and data
//!   messages 1),
//! * [`FaultPlan`] / [`Link`] — deterministic fault injection: before a
//!   charged message is considered sent, the link adjudicates it as
//!   delivered-at-tick, dropped, or endpoint-down,
//! * [`DynamicTopology`] — a versioned, repairable view of a
//!   [`Topology`] for the self-healing layer: orphaned children re-parent
//!   to live ancestors (cycles impossible by construction), recovered
//!   nodes rejoin, and every repair emits a typed [`RepairEvent`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dynamic;
pub mod fault;
pub mod ledger;
pub mod topology;

pub use dynamic::{DynamicTopology, NodeRole, RepairError, RepairEvent, RepairKind};
pub use fault::{CrashWindow, DelayDist, Delivery, FaultPlan, FaultPlanError, Link};
pub use ledger::{MessageLedger, MsgKind};
pub use topology::{NodeId, Topology, TopologyError};
