//! Message accounting.
//!
//! The replication experiments "measure the cost of an algorithm as the
//! number of exchanged messages" (§5.2.1). Every traversal of one tree
//! edge counts as one message, classified by kind. Divergence Caching
//! additionally distinguishes data messages (cost 1) from control
//! messages (cost `w`); the ledger tracks a weighted total for that
//! model alongside the raw counts.

use std::fmt;

/// Classification of a message crossing one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A query forwarded toward the source (cache miss).
    QueryForward,
    /// An answer or freshly computed approximation sent to a requester.
    Answer,
    /// A data-initiated update pushed down the tree.
    Update,
    /// A replica installation (joining a replication scheme).
    Insert,
    /// A pure control message (subscription bookkeeping, refresh-rate
    /// renegotiation, …).
    Control,
    /// Failure-detection traffic: heartbeat pings/acks and liveness
    /// probes from the self-healing layer. Tracked separately from
    /// [`MsgKind::Control`] so the robustness overhead is measurable.
    Heartbeat,
}

impl MsgKind {
    /// All kinds, for iteration.
    pub const ALL: [MsgKind; 6] = [
        MsgKind::QueryForward,
        MsgKind::Answer,
        MsgKind::Update,
        MsgKind::Insert,
        MsgKind::Control,
        MsgKind::Heartbeat,
    ];

    fn index(self) -> usize {
        match self {
            MsgKind::QueryForward => 0,
            MsgKind::Answer => 1,
            MsgKind::Update => 2,
            MsgKind::Insert => 3,
            MsgKind::Control => 4,
            MsgKind::Heartbeat => 5,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::QueryForward => "query-forward",
            MsgKind::Answer => "answer",
            MsgKind::Update => "update",
            MsgKind::Insert => "insert",
            MsgKind::Control => "control",
            MsgKind::Heartbeat => "heartbeat",
        }
    }
}

/// Per-kind message counts plus a weighted cost total.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MessageLedger {
    counts: [u64; 6],
    weighted: f64,
}

impl MessageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        MessageLedger::default()
    }

    /// Record one message of `kind` crossing one edge, at unit cost.
    pub fn charge(&mut self, kind: MsgKind) {
        self.charge_weighted(kind, 1.0);
    }

    /// Record `hops` messages of `kind` (a payload crossing `hops` edges).
    pub fn charge_hops(&mut self, kind: MsgKind, hops: usize) {
        self.counts[kind.index()] += hops as u64;
        self.weighted += hops as f64;
    }

    /// Record one message of `kind` at cost `weight` (Divergence Caching
    /// charges control messages `w < 1`).
    pub fn charge_weighted(&mut self, kind: MsgKind, weight: f64) {
        debug_assert!(weight >= 0.0);
        self.counts[kind.index()] += 1;
        self.weighted += weight;
    }

    /// Messages of `kind` recorded.
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total messages across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Weighted total cost.
    pub fn weighted_total(&self) -> f64 {
        self.weighted
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &MessageLedger) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
        self.weighted += other.weighted;
    }
}

impl fmt::Display for MessageLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total={} (", self.total())?;
        let mut first = true;
        for kind in MsgKind::ALL {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}={}", kind.name(), self.count(kind))?;
        }
        write!(f, "), weighted={:.2}", self.weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = MessageLedger::new();
        l.charge(MsgKind::QueryForward);
        l.charge(MsgKind::QueryForward);
        l.charge(MsgKind::Update);
        l.charge_hops(MsgKind::Answer, 3);
        assert_eq!(l.count(MsgKind::QueryForward), 2);
        assert_eq!(l.count(MsgKind::Answer), 3);
        assert_eq!(l.count(MsgKind::Update), 1);
        assert_eq!(l.count(MsgKind::Insert), 0);
        assert_eq!(l.total(), 6);
        assert_eq!(l.weighted_total(), 6.0);
    }

    #[test]
    fn weighted_control_messages() {
        let mut l = MessageLedger::new();
        l.charge(MsgKind::Answer);
        l.charge_weighted(MsgKind::Control, 0.1);
        assert_eq!(l.total(), 2);
        assert!((l.weighted_total() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MessageLedger::new();
        a.charge(MsgKind::Update);
        let mut b = MessageLedger::new();
        b.charge(MsgKind::Update);
        b.charge_weighted(MsgKind::Control, 0.5);
        a.merge(&b);
        assert_eq!(a.count(MsgKind::Update), 2);
        assert_eq!(a.count(MsgKind::Control), 1);
        assert!((a.weighted_total() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_lists_kinds() {
        let mut l = MessageLedger::new();
        l.charge(MsgKind::Insert);
        let s = l.to_string();
        assert!(s.contains("insert=1"));
        assert!(s.contains("total=1"));
    }

    #[test]
    fn kind_names_are_distinct_and_cover_all() {
        let names: Vec<&str> = MsgKind::ALL.iter().map(|k| k.name()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Indices are a bijection onto 0..ALL.len(): charging each kind
        // once puts exactly one message in every slot.
        let mut l = MessageLedger::new();
        for k in MsgKind::ALL {
            l.charge(k);
        }
        for k in MsgKind::ALL {
            assert_eq!(l.count(k), 1, "{}", k.name());
        }
        assert_eq!(l.total(), MsgKind::ALL.len() as u64);
    }

    #[test]
    fn heartbeat_round_trips_through_every_charge_path() {
        let mut l = MessageLedger::new();
        l.charge(MsgKind::Heartbeat);
        l.charge_hops(MsgKind::Heartbeat, 4);
        l.charge_weighted(MsgKind::Heartbeat, 0.25);
        assert_eq!(l.count(MsgKind::Heartbeat), 6);
        assert_eq!(l.total(), 6);
        assert!((l.weighted_total() - 5.25).abs() < 1e-12);
        // Heartbeats never leak into the control slot (or any other).
        for k in MsgKind::ALL {
            if k != MsgKind::Heartbeat {
                assert_eq!(l.count(k), 0, "{}", k.name());
            }
        }
        let s = l.to_string();
        assert!(s.contains("heartbeat=6"), "{s}");
    }

    #[test]
    fn merge_keeps_weighted_total_consistent_across_groupings() {
        // Sum the same charges in two different groupings; totals and
        // weighted totals must agree exactly (merge is plain addition).
        let charge_some = |l: &mut MessageLedger, salt: u64| {
            l.charge(MsgKind::Heartbeat);
            l.charge_hops(MsgKind::Answer, (salt % 3) as usize + 1);
            l.charge_weighted(MsgKind::Control, 0.5 + salt as f64);
        };
        let mut parts: Vec<MessageLedger> = Vec::new();
        for salt in 0..5 {
            let mut l = MessageLedger::new();
            charge_some(&mut l, salt);
            parts.push(l);
        }
        let mut left_fold = MessageLedger::new();
        for p in &parts {
            left_fold.merge(p);
        }
        let mut pairwise = MessageLedger::new();
        let mut tmp = MessageLedger::new();
        for (i, p) in parts.iter().enumerate() {
            if i % 2 == 0 {
                tmp.merge(p);
            } else {
                pairwise.merge(p);
            }
        }
        pairwise.merge(&tmp);
        assert_eq!(left_fold, pairwise);
        let mut flat = MessageLedger::new();
        for salt in 0..5 {
            charge_some(&mut flat, salt);
        }
        assert_eq!(left_fold.total(), flat.total());
        for k in MsgKind::ALL {
            assert_eq!(left_fold.count(k), flat.count(k), "{}", k.name());
        }
        assert!((left_fold.weighted_total() - flat.weighted_total()).abs() < 1e-9);
    }
}
