//! Deterministic fault injection for the network substrate.
//!
//! The paper's §5 experiments assume an ideal spanning tree: every message
//! crosses its edges instantly and losslessly. A production deployment
//! does not get that luxury, so this module models the three failure
//! modes that matter on a tree network — per-edge message loss, per-edge
//! delivery delay, and node crash/recovery windows — behind a single
//! *adjudication* API:
//!
//! * [`FaultPlan`] — a declarative, validated description of the faults
//!   (seeded, so every run replays identically),
//! * [`Link`] — the stateful adjudicator: every message that would cross
//!   an edge is first submitted to [`Link::adjudicate`], which rules it
//!   [`Delivery::Delivered`] at some tick, [`Delivery::Dropped`], or
//!   [`Delivery::EndpointDown`].
//!
//! [`FaultPlan::none`] is the ideal network: every adjudication returns
//! `Delivered { at: now }` without consuming randomness, so a fault-free
//! run through the adjudicated path is bit-identical to one that never
//! heard of faults.

use std::collections::BTreeMap;
use std::fmt;

use crate::topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay distribution of one edge, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DelayDist {
    /// Instant delivery (the ideal-network default).
    #[default]
    Instant,
    /// A fixed delay of the given number of ticks.
    Const(u64),
    /// Uniform over `lo..=hi` ticks.
    Uniform {
        /// Smallest possible delay.
        lo: u64,
        /// Largest possible delay (inclusive).
        hi: u64,
    },
}

impl DelayDist {
    /// Whether this distribution always yields zero delay.
    pub fn is_instant(&self) -> bool {
        matches!(self, DelayDist::Instant | DelayDist::Const(0))
            || matches!(self, DelayDist::Uniform { lo: 0, hi: 0 })
    }

    /// Draw one delay. Only `Uniform` consumes randomness.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayDist::Instant => 0,
            DelayDist::Const(d) => d,
            DelayDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        }
    }
}

impl fmt::Display for DelayDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayDist::Instant => write!(f, "instant"),
            DelayDist::Const(d) => write!(f, "{d} ticks"),
            DelayDist::Uniform { lo, hi } => write!(f, "uniform[{lo}, {hi}] ticks"),
        }
    }
}

/// A scheduled crash: the node is down for `from..until` (half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node (never the source).
    pub node: NodeId,
    /// First down tick.
    pub from: u64,
    /// First tick the node is back up (exclusive end).
    pub until: u64,
}

/// Errors from fault-plan construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A drop probability outside `[0, 1]`.
    BadProbability(f64),
    /// A uniform delay with `lo > hi`.
    BadDelay {
        /// Lower bound given.
        lo: u64,
        /// Upper bound given.
        hi: u64,
    },
    /// A crash window targeting the source (node 0 owns the stream; a
    /// crashed source has nothing to degrade to).
    SourceCrash,
    /// A crash window with `from >= until`.
    EmptyCrashWindow {
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadProbability(p) => {
                write!(f, "drop probability {p} outside [0, 1]")
            }
            FaultPlanError::BadDelay { lo, hi } => {
                write!(f, "uniform delay needs lo <= hi, got [{lo}, {hi}]")
            }
            FaultPlanError::SourceCrash => write!(f, "the source (node 0) cannot crash"),
            FaultPlanError::EmptyCrashWindow { from, until } => {
                write!(f, "crash window [{from}, {until}) is empty")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Normalize an edge to an order-independent key (tree edges are
/// physical links; faults apply to both directions).
fn edge_key(a: NodeId, b: NodeId) -> (usize, usize) {
    let (a, b) = (a.index(), b.index());
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A deterministic, seeded description of every fault a run injects.
///
/// Built fluently; every constructor validates its inputs with a typed
/// [`FaultPlanError`]:
///
/// ```
/// use swat_net::{DelayDist, FaultPlan, NodeId};
///
/// let plan = FaultPlan::new(7)
///     .with_drop(0.05).unwrap()
///     .with_delay(DelayDist::Uniform { lo: 0, hi: 3 }).unwrap()
///     .with_crash(NodeId(2), 100, 150).unwrap();
/// assert!(!plan.is_ideal());
/// assert!(plan.is_down(NodeId(2), 120));
/// assert!(!plan.is_down(NodeId(2), 150));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop: f64,
    edge_drop: BTreeMap<(usize, usize), f64>,
    delay: DelayDist,
    edge_delay: BTreeMap<(usize, usize), DelayDist>,
    crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// The ideal network: nothing drops, nothing delays, nobody crashes.
    pub fn none() -> Self {
        FaultPlan::new(0)
    }

    /// An ideal plan carrying `seed` (faults are added fluently).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            edge_drop: BTreeMap::new(),
            delay: DelayDist::Instant,
            edge_delay: BTreeMap::new(),
            crashes: Vec::new(),
        }
    }

    /// Set the default per-edge drop probability.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::BadProbability`] unless `0 <= p <= 1`.
    pub fn with_drop(mut self, p: f64) -> Result<Self, FaultPlanError> {
        validate_probability(p)?;
        self.drop = p;
        Ok(self)
    }

    /// Override the drop probability of the edge `{a, b}` (direction
    /// independent).
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::BadProbability`] unless `0 <= p <= 1`.
    pub fn with_edge_drop(mut self, a: NodeId, b: NodeId, p: f64) -> Result<Self, FaultPlanError> {
        validate_probability(p)?;
        self.edge_drop.insert(edge_key(a, b), p);
        Ok(self)
    }

    /// Set the default per-edge delay distribution.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::BadDelay`] for a uniform range with `lo > hi`.
    pub fn with_delay(mut self, d: DelayDist) -> Result<Self, FaultPlanError> {
        validate_delay(&d)?;
        self.delay = d;
        Ok(self)
    }

    /// Override the delay distribution of the edge `{a, b}`.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::BadDelay`] for a uniform range with `lo > hi`.
    pub fn with_edge_delay(
        mut self,
        a: NodeId,
        b: NodeId,
        d: DelayDist,
    ) -> Result<Self, FaultPlanError> {
        validate_delay(&d)?;
        self.edge_delay.insert(edge_key(a, b), d);
        Ok(self)
    }

    /// Schedule `node` to be down for ticks `from..until`.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::SourceCrash`] for node 0;
    /// [`FaultPlanError::EmptyCrashWindow`] if `from >= until`.
    pub fn with_crash(self, node: NodeId, from: u64, until: u64) -> Result<Self, FaultPlanError> {
        if node == NodeId::SOURCE {
            return Err(FaultPlanError::SourceCrash);
        }
        self.with_crash_any(node, from, until)
    }

    /// Schedule `node` to be down for ticks `from..until`, node 0
    /// included. The source-crash restriction of
    /// [`FaultPlan::with_crash`] exists for simulations driven *from*
    /// node 0; in a failover cluster node 0 is an ordinary member whose
    /// death the protocol must survive, so its crash windows are legal.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::EmptyCrashWindow`] if `from >= until`.
    pub fn with_crash_any(
        mut self,
        node: NodeId,
        from: u64,
        until: u64,
    ) -> Result<Self, FaultPlanError> {
        if from >= until {
            return Err(FaultPlanError::EmptyCrashWindow { from, until });
        }
        self.crashes.push(CrashWindow { node, from, until });
        Ok(self)
    }

    /// The seed the adjudicating RNG derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan injects no faults at all.
    pub fn is_ideal(&self) -> bool {
        self.drop == 0.0
            && self.edge_drop.values().all(|&p| p == 0.0)
            && self.delay.is_instant()
            && self.edge_delay.values().all(DelayDist::is_instant)
            && self.crashes.is_empty()
    }

    /// Whether messages can be lost outright (drops or crashes) — the
    /// condition under which a sender must run acknowledgements and
    /// retries. Pure delays never lose messages.
    pub fn can_lose(&self) -> bool {
        self.drop > 0.0 || self.edge_drop.values().any(|&p| p > 0.0) || !self.crashes.is_empty()
    }

    /// Whether `node` is down at `tick`.
    pub fn is_down(&self, node: NodeId, tick: u64) -> bool {
        self.crashes
            .iter()
            .any(|w| w.node == node && (w.from..w.until).contains(&tick))
    }

    /// The crash windows, in insertion order.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Drop probability of the edge `{a, b}`.
    pub fn drop_on(&self, a: NodeId, b: NodeId) -> f64 {
        self.edge_drop
            .get(&edge_key(a, b))
            .copied()
            .unwrap_or(self.drop)
    }

    /// Delay distribution of the edge `{a, b}`.
    pub fn delay_on(&self, a: NodeId, b: NodeId) -> DelayDist {
        self.edge_delay
            .get(&edge_key(a, b))
            .copied()
            .unwrap_or(self.delay)
    }

    /// Largest node index the plan references, if any (callers bound it
    /// against their topology).
    pub fn max_node(&self) -> Option<usize> {
        let edges = self
            .edge_drop
            .keys()
            .chain(self.edge_delay.keys())
            .map(|&(_, b)| b);
        let crashed = self.crashes.iter().map(|w| w.node.index());
        edges.chain(crashed).max()
    }
}

fn validate_probability(p: f64) -> Result<(), FaultPlanError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(FaultPlanError::BadProbability(p))
    }
}

fn validate_delay(d: &DelayDist) -> Result<(), FaultPlanError> {
    match *d {
        DelayDist::Uniform { lo, hi } if lo > hi => Err(FaultPlanError::BadDelay { lo, hi }),
        _ => Ok(()),
    }
}

/// The fate of one adjudicated message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives at tick `at` (`at == now` on an ideal edge).
    Delivered {
        /// Arrival tick.
        at: u64,
    },
    /// The edge lost the message.
    Dropped,
    /// The sender or receiver is inside a crash window; the message goes
    /// nowhere.
    EndpointDown,
}

/// The stateful fault adjudicator: one per simulation run.
///
/// Owns the plan plus a deterministic RNG, so the same plan over the same
/// message sequence always rules identically.
#[derive(Debug, Clone)]
pub struct Link {
    plan: FaultPlan,
    rng: StdRng,
    ideal: bool,
}

impl Link {
    /// A fresh adjudicator for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        // Decorrelate from other consumers of the same seed.
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xFA_17_CA_5E_00_D1_CE_00);
        let ideal = plan.is_ideal();
        Link { plan, rng, ideal }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rule on one message crossing the edge `from -> to` at tick `now`.
    ///
    /// Ideal plans short-circuit to `Delivered { at: now }` without
    /// consuming randomness.
    pub fn adjudicate(&mut self, now: u64, from: NodeId, to: NodeId) -> Delivery {
        if self.ideal {
            return Delivery::Delivered { at: now };
        }
        if self.plan.is_down(from, now) || self.plan.is_down(to, now) {
            return Delivery::EndpointDown;
        }
        let p = self.plan.drop_on(from, to);
        if p > 0.0 && self.rng.gen_bool(p) {
            return Delivery::Dropped;
        }
        let delay = self.plan.delay_on(from, to).sample(&mut self.rng);
        Delivery::Delivered { at: now + delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation() {
        assert_eq!(
            FaultPlan::new(1).with_drop(1.5),
            Err(FaultPlanError::BadProbability(1.5))
        );
        assert!(matches!(
            FaultPlan::new(1).with_drop(f64::NAN).unwrap_err(),
            FaultPlanError::BadProbability(p) if p.is_nan()
        ));
        assert_eq!(
            FaultPlan::new(1).with_delay(DelayDist::Uniform { lo: 4, hi: 2 }),
            Err(FaultPlanError::BadDelay { lo: 4, hi: 2 })
        );
        assert_eq!(
            FaultPlan::new(1).with_crash(NodeId::SOURCE, 0, 10),
            Err(FaultPlanError::SourceCrash)
        );
        assert_eq!(
            FaultPlan::new(1).with_crash(NodeId(1), 10, 10),
            Err(FaultPlanError::EmptyCrashWindow {
                from: 10,
                until: 10
            })
        );
        for e in [
            FaultPlanError::BadProbability(2.0),
            FaultPlanError::BadDelay { lo: 3, hi: 1 },
            FaultPlanError::SourceCrash,
            FaultPlanError::EmptyCrashWindow { from: 1, until: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn ideal_plan_delivers_instantly() {
        let mut link = Link::new(FaultPlan::none());
        for t in [0u64, 5, 99] {
            assert_eq!(
                link.adjudicate(t, NodeId(0), NodeId(1)),
                Delivery::Delivered { at: t }
            );
        }
        assert!(FaultPlan::none().is_ideal());
        assert!(!FaultPlan::none().can_lose());
    }

    #[test]
    fn classification_flags() {
        let delay_only = FaultPlan::new(3).with_delay(DelayDist::Const(2)).unwrap();
        assert!(!delay_only.is_ideal());
        assert!(!delay_only.can_lose());

        let drops = FaultPlan::new(3).with_drop(0.1).unwrap();
        assert!(drops.can_lose());

        let crashes = FaultPlan::new(3).with_crash(NodeId(1), 5, 9).unwrap();
        assert!(crashes.can_lose());
        assert_eq!(crashes.max_node(), Some(1));
        assert_eq!(FaultPlan::none().max_node(), None);
    }

    #[test]
    fn edge_overrides_take_precedence() {
        let plan = FaultPlan::new(1)
            .with_drop(0.5)
            .unwrap()
            .with_edge_drop(NodeId(2), NodeId(1), 0.0)
            .unwrap()
            .with_edge_delay(NodeId(1), NodeId(2), DelayDist::Const(7))
            .unwrap();
        // Direction independent.
        assert_eq!(plan.drop_on(NodeId(1), NodeId(2)), 0.0);
        assert_eq!(plan.drop_on(NodeId(2), NodeId(1)), 0.0);
        assert_eq!(plan.drop_on(NodeId(0), NodeId(1)), 0.5);
        assert_eq!(plan.delay_on(NodeId(2), NodeId(1)), DelayDist::Const(7));
        assert_eq!(plan.delay_on(NodeId(0), NodeId(1)), DelayDist::Instant);
    }

    #[test]
    fn crash_windows_are_half_open() {
        let plan = FaultPlan::new(1).with_crash(NodeId(3), 10, 20).unwrap();
        assert!(!plan.is_down(NodeId(3), 9));
        assert!(plan.is_down(NodeId(3), 10));
        assert!(plan.is_down(NodeId(3), 19));
        assert!(!plan.is_down(NodeId(3), 20));
        assert!(!plan.is_down(NodeId(2), 15));
        let mut link = Link::new(plan);
        assert_eq!(
            link.adjudicate(15, NodeId(0), NodeId(3)),
            Delivery::EndpointDown
        );
        assert_eq!(
            link.adjudicate(15, NodeId(3), NodeId(0)),
            Delivery::EndpointDown
        );
    }

    #[test]
    fn adjudication_is_deterministic_and_seed_sensitive() {
        let plan = |seed| {
            FaultPlan::new(seed)
                .with_drop(0.3)
                .unwrap()
                .with_delay(DelayDist::Uniform { lo: 0, hi: 4 })
                .unwrap()
        };
        let trace = |seed| {
            let mut link = Link::new(plan(seed));
            (0..200)
                .map(|t| link.adjudicate(t, NodeId(0), NodeId(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(1), trace(1));
        assert_ne!(trace(1), trace(2));
        // Both outcomes actually occur at drop = 0.3.
        let t = trace(1);
        assert!(t.iter().any(|d| matches!(d, Delivery::Dropped)));
        assert!(t.iter().any(|d| matches!(d, Delivery::Delivered { .. })));
    }

    #[test]
    fn delays_land_in_range() {
        let plan = FaultPlan::new(9)
            .with_delay(DelayDist::Uniform { lo: 1, hi: 3 })
            .unwrap();
        let mut link = Link::new(plan);
        for _ in 0..500 {
            match link.adjudicate(100, NodeId(0), NodeId(1)) {
                Delivery::Delivered { at } => assert!((101..=103).contains(&at)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
