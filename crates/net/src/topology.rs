//! Rooted spanning-tree topologies.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a network node. Node 0 is always the source `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The source node (the paper's `S`).
    pub const SOURCE: NodeId = NodeId(0);

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "S")
        } else {
            write!(f, "C{}", self.0)
        }
    }
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The parent vector was empty.
    Empty,
    /// Node 0 must be the root (no parent); others must have a parent.
    BadRoot,
    /// A parent reference points to a nonexistent or non-earlier node.
    BadParent {
        /// The child whose parent is invalid.
        child: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology needs at least the source"),
            TopologyError::BadRoot => write!(f, "node 0 must be the parentless source"),
            TopologyError::BadParent { child } => {
                write!(f, "node {child} has an invalid parent reference")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A rooted spanning tree; node 0 is the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Build from a parent vector: `parents[0]` must be `None`, every
    /// other entry `Some(p)` with `p < child` (nodes listed in BFS/DFS
    /// order — parents precede children, which also rules out cycles).
    ///
    /// # Errors
    ///
    /// See [`TopologyError`].
    pub fn from_parents(parents: Vec<Option<usize>>) -> Result<Self, TopologyError> {
        if parents.is_empty() {
            return Err(TopologyError::Empty);
        }
        if parents[0].is_some() {
            return Err(TopologyError::BadRoot);
        }
        let n = parents.len();
        let mut parent = Vec::with_capacity(n);
        let mut children = vec![Vec::new(); n];
        parent.push(None);
        for (child, p) in parents.iter().enumerate().skip(1) {
            let Some(p) = *p else {
                return Err(TopologyError::BadRoot);
            };
            if p >= child {
                return Err(TopologyError::BadParent { child });
            }
            parent.push(Some(NodeId(p)));
            children[p].push(NodeId(child));
        }
        Ok(Topology { parent, children })
    }

    /// The source alone (no clients).
    pub fn source_only() -> Self {
        Topology::from_parents(vec![None]).expect("valid")
    }

    /// Source plus a single client — the paper's single-client system
    /// (§5.2).
    pub fn single_client() -> Self {
        Topology::from_parents(vec![None, Some(0)]).expect("valid")
    }

    /// Source plus a chain of `n` clients hanging below it:
    /// `S — C1 — C2 — … — Cn`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn chain(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one client");
        let mut parents = vec![None];
        parents.extend((0..n).map(Some));
        Topology::from_parents(parents).expect("valid")
    }

    /// Source plus `n` clients all directly attached to it.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n > 0, "star needs at least one client");
        let mut parents = vec![None];
        parents.extend(std::iter::repeat_n(Some(0), n));
        Topology::from_parents(parents).expect("valid")
    }

    /// A complete binary tree of clients with the source at the root —
    /// the paper's multi-client simulation topology (§5.3). `depth` levels
    /// of clients below the source: `depth = 1` gives 2 clients, 2 gives
    /// 6, 3 gives 14, 4 gives 30.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn complete_binary(depth: usize) -> Self {
        assert!(depth > 0, "need at least one level of clients");
        let client_count = (1usize << (depth + 1)) - 2;
        let mut parents: Vec<Option<usize>> = vec![None];
        for i in 1..=client_count {
            if i <= 2 {
                // The two top clients attach to the source.
                parents.push(Some(0));
            } else {
                // Clients form a heap where client i has children 2i+1
                // and 2i+2, so parent(i) = (i-1)/2.
                parents.push(Some((i - 1) / 2));
            }
        }
        Topology::from_parents(parents).expect("valid")
    }

    /// A uniformly random recursive tree of `n` clients below the
    /// source, deterministic in `seed`: client `i` attaches to a node
    /// drawn uniformly from `0..i`. Connected, acyclic, and rooted at
    /// the source by construction (every parent precedes its child), so
    /// it passes [`Topology::from_parents`] validation for any seed —
    /// useful for diversifying property tests beyond chain/star/binary.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_tree(n: usize, seed: u64) -> Self {
        assert!(n > 0, "random tree needs at least one client");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7EE5_EED5_EED7_EE00);
        let mut parents: Vec<Option<usize>> = vec![None];
        for child in 1..=n {
            parents.push(Some(rng.gen_range(0..child)));
        }
        Topology::from_parents(parents).expect("parents precede children")
    }

    /// Total nodes including the source.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// A topology always contains at least the source.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of clients (everything but the source).
    pub fn client_count(&self) -> usize {
        self.len() - 1
    }

    /// Parent of `node` (`None` for the source).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.0]
    }

    /// Children of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.0]
    }

    /// Whether `node` is the source.
    pub fn is_source(&self, node: NodeId) -> bool {
        node.0 == 0
    }

    /// Whether `node` is a leaf (no children).
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.0].is_empty()
    }

    /// All node ids, source first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// All client ids (everything but the source).
    pub fn clients(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.len()).map(NodeId)
    }

    /// Hops from `node` up to the source.
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// The path from `node` to the source, excluding `node`, starting
    /// with its parent.
    pub fn path_to_source(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parents_validation() {
        assert_eq!(Topology::from_parents(vec![]), Err(TopologyError::Empty));
        assert_eq!(
            Topology::from_parents(vec![Some(0)]),
            Err(TopologyError::BadRoot)
        );
        assert_eq!(
            Topology::from_parents(vec![None, None]),
            Err(TopologyError::BadRoot)
        );
        assert_eq!(
            Topology::from_parents(vec![None, Some(1)]),
            Err(TopologyError::BadParent { child: 1 })
        );
        assert_eq!(
            Topology::from_parents(vec![None, Some(0), Some(5)]),
            Err(TopologyError::BadParent { child: 2 })
        );
    }

    #[test]
    fn single_client_shape() {
        let t = Topology::single_client();
        assert_eq!(t.len(), 2);
        assert_eq!(t.client_count(), 1);
        assert_eq!(t.parent(NodeId(1)), Some(NodeId::SOURCE));
        assert!(t.is_source(NodeId(0)));
        assert!(t.is_leaf(NodeId(1)));
        assert_eq!(t.depth(NodeId(1)), 1);
    }

    #[test]
    fn chain_shape() {
        let t = Topology::chain(3);
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.path_to_source(NodeId(3)),
            vec![NodeId(2), NodeId(1), NodeId(0)]
        );
        assert_eq!(t.depth(NodeId(3)), 3);
        assert_eq!(t.children(NodeId(1)), &[NodeId(2)]);
    }

    #[test]
    fn star_shape() {
        let t = Topology::star(4);
        assert_eq!(t.client_count(), 4);
        assert_eq!(t.children(NodeId::SOURCE).len(), 4);
        for c in t.clients() {
            assert_eq!(t.depth(c), 1);
            assert!(t.is_leaf(c));
        }
    }

    #[test]
    fn complete_binary_counts() {
        // depth 1 -> 2 clients, 2 -> 6, 3 -> 14, 4 -> 30 (the paper's
        // Figure 10(a) x-axis).
        for (depth, clients) in [(1, 2), (2, 6), (3, 14), (4, 30)] {
            let t = Topology::complete_binary(depth);
            assert_eq!(t.client_count(), clients, "depth {depth}");
            // Every internal client has exactly two children; leaves none.
            for c in t.clients() {
                let ch = t.children(c).len();
                assert!(ch == 0 || ch == 2, "client {c} has {ch} children");
                assert!(t.depth(c) <= depth);
            }
            // The source has the two top clients.
            assert_eq!(t.children(NodeId::SOURCE).len(), 2);
        }
    }

    #[test]
    fn complete_binary_is_balanced() {
        let t = Topology::complete_binary(3);
        let max_depth = t.clients().map(|c| t.depth(c)).max().unwrap();
        let leaf_count = t.clients().filter(|&c| t.is_leaf(c)).count();
        assert_eq!(max_depth, 3);
        assert_eq!(leaf_count, 8);
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeId(0).to_string(), "S");
        assert_eq!(NodeId(3).to_string(), "C3");
    }

    #[test]
    fn random_tree_is_deterministic_and_seed_sensitive() {
        let a = Topology::random_tree(12, 7);
        let b = Topology::random_tree(12, 7);
        assert_eq!(a, b);
        let distinct = (0..32).any(|s| Topology::random_tree(12, s) != a);
        assert!(distinct, "every seed yielded the same tree");
    }

    mod random_tree_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any size and seed: rooted at the source, connected
            /// (every node reaches the source), and acyclic (no walk to
            /// the source revisits a node).
            #[test]
            fn connected_acyclic_rooted(n in 1usize..40, seed in 0u64..5000) {
                let t = Topology::random_tree(n, seed);
                prop_assert_eq!(t.len(), n + 1);
                prop_assert!(t.parent(NodeId::SOURCE).is_none());
                let mut reached_children = 0usize;
                for node in t.nodes() {
                    let mut seen = vec![false; t.len()];
                    let mut cur = node;
                    seen[cur.index()] = true;
                    while let Some(p) = t.parent(cur) {
                        prop_assert!(!seen[p.index()], "cycle at {}", p);
                        seen[p.index()] = true;
                        cur = p;
                    }
                    prop_assert_eq!(cur, NodeId::SOURCE, "{} is disconnected", node);
                    reached_children += t.children(node).len();
                }
                // Parent and child views agree: n tree edges total.
                prop_assert_eq!(reached_children, n);
            }
        }
    }
}
