//! Property-based tests for the histogram baseline.

use proptest::prelude::*;
use swat_histogram::{
    approximate_voptimal, exact_voptimal, voptimal::optimal_sse, HistogramConfig, PrefixSums,
    SlidingHistogram,
};

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..100.0f64, 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The approximate construction honours its (1+eps) guarantee.
    #[test]
    fn approximation_guarantee(data in values(), b in 1usize..8, eps in 0.01..1.0f64) {
        let approx = approximate_voptimal(&data, b, eps).sse();
        let exact = optimal_sse(&data, b);
        prop_assert!(
            approx <= (1.0 + eps) * exact + 1e-6,
            "approx {} vs exact {} at b={} eps={}", approx, exact, b, eps
        );
    }

    /// Exact DP really is optimal: no brute-force 3-bucket split beats it.
    #[test]
    fn exact_beats_brute_force(data in prop::collection::vec(0.0..100.0f64, 3..20)) {
        let n = data.len();
        let p = PrefixSums::new(&data);
        let mut brute = p.sse(0, n - 1);
        for j in 0..n - 1 {
            brute = brute.min(p.sse(0, j) + p.sse(j + 1, n - 1));
            for m in j + 1..n - 1 {
                brute = brute.min(p.sse(0, j) + p.sse(j + 1, m) + p.sse(m + 1, n - 1));
            }
        }
        let dp = optimal_sse(&data, 3);
        prop_assert!((dp - brute).abs() < 1e-6, "dp {} vs brute {}", dp, brute);
    }

    /// Both constructions yield well-formed histograms whose buckets carry
    /// the true means of their spans.
    #[test]
    fn buckets_carry_true_means(data in values(), b in 1usize..10) {
        for h in [exact_voptimal(&data, b), approximate_voptimal(&data, b, 0.1)] {
            prop_assert!(h.buckets().len() <= b.min(data.len()));
            for bucket in h.buckets() {
                let span = &data[bucket.start..=bucket.end];
                let mean = span.iter().sum::<f64>() / span.len() as f64;
                prop_assert!((bucket.value - mean).abs() < 1e-9);
            }
            // Reconstruction agrees with value_at at every index.
            let rec = h.reconstruct_window();
            for (idx, &r) in rec.iter().enumerate() {
                prop_assert!((r - h.value_at(idx)).abs() < 1e-12);
            }
        }
    }

    /// The sliding window's running sums always match the retained values.
    #[test]
    fn running_sums_consistent(stream in prop::collection::vec(0.0..100.0f64, 1..200), n in 1usize..32) {
        let mut h = SlidingHistogram::new(HistogramConfig::new(n, 4, 0.1).unwrap());
        for &v in &stream {
            h.push(v);
        }
        let kept: Vec<f64> = (0..h.len()).map(|i| h.exact_at(i).unwrap()).collect();
        let sum: f64 = kept.iter().sum();
        let sq: f64 = kept.iter().map(|v| v * v).sum();
        prop_assert!((h.sum() - sum).abs() < 1e-6);
        prop_assert!((h.squared_sum() - sq).abs() < 1e-6);
    }

    /// Histogram error is monotone: more buckets never increase SSE.
    #[test]
    fn monotone_in_buckets(data in values()) {
        let mut prev = f64::INFINITY;
        for b in 1..=6 {
            let s = optimal_sse(&data, b);
            prop_assert!(s <= prev + 1e-9);
            prev = s;
        }
    }
}
