//! Exact V-optimal histogram construction (Jagadish et al., VLDB'98).
//!
//! The classical `O(B · n²)` dynamic program: `E[b][i]` is the minimal sum
//! of squared errors of partitioning positions `0..=i` into `b` buckets,
//! with
//!
//! ```text
//! E[1][i] = SSE(0, i)
//! E[b][i] = min_{j < i} E[b−1][j] + SSE(j+1, i)
//! ```
//!
//! Used as the ground-truth reference that the `(1+ε)`-approximate
//! construction in [`crate::approx`] is tested against, and directly for
//! small windows.

use crate::buckets::{Bucket, Histogram};
use crate::prefix::PrefixSums;

/// Run the DP over `values` for `b` rows. Returns the final error row
/// and, when `track_choices` is set, one choice row per bucket count
/// (`choice[row][i]` = best split `j`, `usize::MAX` = "didn't split") —
/// the single implementation behind both [`exact_voptimal`] (which
/// backtracks the choices) and [`optimal_sse`] (which only needs the
/// objective and skips recording them).
#[allow(clippy::needless_range_loop)] // index arithmetic mirrors the DP recurrences
fn dp_rows(p: &PrefixSums, n: usize, b: usize, track_choices: bool) -> (Vec<f64>, Vec<Vec<usize>>) {
    let mut err: Vec<f64> = (0..n).map(|i| p.sse(0, i)).collect();
    let mut choice: Vec<Vec<usize>> = Vec::new();
    if track_choices {
        choice.reserve(b);
        choice.push(vec![0; n]); // row 1 has no split
    }
    for _row in 2..=b {
        let mut next = vec![f64::INFINITY; n];
        let mut ch = if track_choices {
            vec![0; n]
        } else {
            Vec::new()
        };
        for i in 0..n {
            // At least one position per bucket: j ranges over the end of
            // the previous partition.
            let mut best = err[i]; // fewer buckets is always feasible
            let mut best_j = usize::MAX; // MAX = "didn't split"
            for j in 0..i {
                let cand = err[j] + p.sse(j + 1, i);
                if cand < best {
                    best = cand;
                    best_j = j;
                }
            }
            next[i] = best;
            if track_choices {
                ch[i] = best_j;
            }
        }
        err = next;
        if track_choices {
            choice.push(ch);
        }
    }
    (err, choice)
}

/// Build the exact V-optimal `b`-bucket histogram of `values`
/// (natural order). `O(b · n²)` time, `O(b · n)` space.
///
/// # Panics
///
/// Panics if `values` is empty or `b == 0`.
pub fn exact_voptimal(values: &[f64], b: usize) -> Histogram {
    let n = values.len();
    assert!(n > 0, "cannot build a histogram of nothing");
    assert!(b > 0, "need at least one bucket");
    let b = b.min(n);
    let p = PrefixSums::new(values);
    let (_, choice) = dp_rows(&p, n, b, true);

    // Backtrack from E[b][n-1]. `choice[row-1][i] == usize::MAX` encodes
    // "row used no new split here" (the optimum at this row equals the
    // previous row's), in which case we just drop a row.
    let mut boundaries = vec![n - 1]; // bucket end positions
    let mut i = n - 1;
    let mut row = b;
    while row > 1 {
        let j = choice[row - 1][i];
        row -= 1;
        if j == usize::MAX {
            continue;
        }
        boundaries.push(j);
        i = j;
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    let mut buckets = Vec::with_capacity(boundaries.len());
    let mut start = 0;
    for &end in &boundaries {
        buckets.push(Bucket {
            start,
            end,
            value: p.mean(start, end),
            sse: p.sse(start, end),
        });
        start = end + 1;
    }
    Histogram::new(buckets, n)
}

/// The minimal SSE of partitioning `values` into at most `b` buckets —
/// the objective value alone, sharing the DP core with
/// [`exact_voptimal`] but skipping the choice rows and the backtrack.
pub fn optimal_sse(values: &[f64], b: usize) -> f64 {
    let n = values.len();
    assert!(n > 0 && b > 0);
    let b = b.min(n);
    let p = PrefixSums::new(values);
    let (err, _) = dp_rows(&p, n, b, false);
    err[n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_is_global_mean() {
        let h = exact_voptimal(&[1.0, 3.0, 5.0], 1);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.buckets()[0].value, 3.0);
    }

    #[test]
    fn finds_obvious_plateaus() {
        let data = [2.0, 2.0, 2.0, 8.0, 8.0, 8.0];
        let h = exact_voptimal(&data, 2);
        assert!(h.sse() < 1e-12, "plateaus are exactly representable");
        assert_eq!(h.buckets()[0].end, 2);
        assert_eq!(h.buckets()[0].value, 2.0);
        assert_eq!(h.buckets()[1].value, 8.0);
    }

    #[test]
    fn b_geq_n_is_lossless() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0];
        let h = exact_voptimal(&data, 10);
        assert!(h.sse() < 1e-12);
        // value_at uses newest-first indexing; data is natural order.
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(h.value_at(data.len() - 1 - i), v);
        }
    }

    #[test]
    fn objective_matches_brute_force() {
        // Compare against brute-force enumeration of all 2-bucket splits.
        let data = [5.0, 1.0, 9.0, 9.0, 2.0, 7.0, 3.0];
        let p = PrefixSums::new(&data);
        let n = data.len();
        let mut brute = f64::INFINITY;
        for j in 0..n - 1 {
            brute = brute.min(p.sse(0, j) + p.sse(j + 1, n - 1));
        }
        brute = brute.min(p.sse(0, n - 1)); // 1 bucket allowed too
        let h = exact_voptimal(&data, 2);
        assert!((h.sse() - brute).abs() < 1e-9, "{} vs {brute}", h.sse());
        assert!((optimal_sse(&data, 2) - brute).abs() < 1e-9);
    }

    #[test]
    fn more_buckets_never_hurt() {
        let data: Vec<f64> = (0..24).map(|i| ((i * 7) % 10) as f64).collect();
        let mut prev = f64::INFINITY;
        for b in 1..=8 {
            let s = optimal_sse(&data, b);
            assert!(s <= prev + 1e-9, "b={b}: {s} > {prev}");
            prev = s;
        }
    }

    #[test]
    fn histogram_sse_equals_dp_objective() {
        let data: Vec<f64> = (0..30).map(|i| ((i * 13) % 17) as f64).collect();
        for b in [1, 2, 3, 5, 8] {
            let h = exact_voptimal(&data, b);
            let o = optimal_sse(&data, b);
            assert!(
                (h.sse() - o).abs() < 1e-9,
                "b={b}: backtracked {} vs objective {o}",
                h.sse()
            );
            assert!(h.buckets().len() <= b);
        }
    }
}
