//! Histogram buckets and the answering interface.
//!
//! A built histogram is a partition of the window positions into
//! contiguous buckets, each represented by its mean. Positions here are in
//! *natural order* (0 = oldest in the window), because that is how the
//! dynamic programs build them; the public [`Histogram::value_at`] speaks
//! the SWAT window-index convention (0 = newest) so the two summaries are
//! interchangeable in experiments.

/// One bucket: positions `start..=end` (natural order) with mean `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// First position covered (inclusive, natural order).
    pub start: usize,
    /// Last position covered (inclusive).
    pub end: usize,
    /// Mean of the covered values — the bucket's representative.
    pub value: f64,
    /// Sum of squared errors within the bucket.
    pub sse: f64,
}

impl Bucket {
    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Buckets always cover at least one position.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A built B-bucket histogram over one snapshot of the window.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    n: usize,
}

impl Histogram {
    /// Assemble from buckets that must tile `0..n` contiguously.
    ///
    /// # Panics
    ///
    /// Panics if the buckets do not tile the domain.
    pub fn new(buckets: Vec<Bucket>, n: usize) -> Self {
        assert!(!buckets.is_empty(), "histogram needs at least one bucket");
        let mut expect = 0;
        for b in &buckets {
            assert_eq!(b.start, expect, "buckets must tile contiguously");
            assert!(b.end >= b.start && b.end < n);
            expect = b.end + 1;
        }
        assert_eq!(expect, n, "buckets must cover the whole window");
        Histogram { buckets, n }
    }

    /// The buckets, in natural order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of window positions covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Histograms are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total sum of squared errors (the V-optimal objective).
    pub fn sse(&self) -> f64 {
        self.buckets.iter().map(|b| b.sse).sum()
    }

    /// Approximate value at *window index* `idx` (0 = newest), matching
    /// the SWAT tree's convention. Binary search over bucket boundaries:
    /// `O(log B)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn value_at(&self, idx: usize) -> f64 {
        assert!(idx < self.n, "index {idx} out of bounds for {}", self.n);
        let pos = self.n - 1 - idx; // newest-first -> natural order
        let i = self.buckets.partition_point(|b| b.end < pos);
        self.buckets[i].value
    }

    /// Reconstruct the whole approximate window, newest first.
    pub fn reconstruct_window(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n);
        for b in self.buckets.iter().rev() {
            for _ in b.start..=b.end {
                out.push(b.value);
            }
        }
        out
    }

    /// Weighted sum `Σ weights[j] · value_at(indices[j])` — how the
    /// baseline answers the paper's inner-product queries.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices or mismatched lengths.
    pub fn inner_product(&self, indices: &[usize], weights: &[f64]) -> f64 {
        assert_eq!(indices.len(), weights.len());
        indices
            .iter()
            .zip(weights)
            .map(|(&i, &w)| w * self.value_at(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram::new(
            vec![
                Bucket {
                    start: 0,
                    end: 2,
                    value: 1.0,
                    sse: 0.5,
                },
                Bucket {
                    start: 3,
                    end: 3,
                    value: 9.0,
                    sse: 0.0,
                },
                Bucket {
                    start: 4,
                    end: 7,
                    value: 4.0,
                    sse: 1.5,
                },
            ],
            8,
        )
    }

    #[test]
    fn indexing_converts_conventions() {
        let h = hist();
        // Window index 0 = natural position 7 -> last bucket.
        assert_eq!(h.value_at(0), 4.0);
        assert_eq!(h.value_at(3), 4.0);
        assert_eq!(h.value_at(4), 9.0);
        assert_eq!(h.value_at(5), 1.0);
        assert_eq!(h.value_at(7), 1.0);
    }

    #[test]
    fn reconstruct_window_is_newest_first() {
        let h = hist();
        assert_eq!(
            h.reconstruct_window(),
            vec![4.0, 4.0, 4.0, 4.0, 9.0, 1.0, 1.0, 1.0]
        );
    }

    #[test]
    fn sse_totals() {
        assert_eq!(hist().sse(), 2.0);
    }

    #[test]
    fn inner_product_answers() {
        let h = hist();
        let v = h.inner_product(&[0, 4], &[2.0, 1.0]);
        assert_eq!(v, 2.0 * 4.0 + 9.0);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn rejects_gappy_buckets() {
        let _ = Histogram::new(
            vec![
                Bucket {
                    start: 0,
                    end: 1,
                    value: 0.0,
                    sse: 0.0,
                },
                Bucket {
                    start: 3,
                    end: 3,
                    value: 0.0,
                    sse: 0.0,
                },
            ],
            4,
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_at_bounds() {
        let _ = hist().value_at(8);
    }
}
