//! Guha–Koudas sliding-window histogram — the baseline the SWAT paper
//! compares against ("the most recent sliding-window algorithm proposed in
//! the literature", referred to as *Histogram*).
//!
//! Reimplemented from the description in S. Guha & N. Koudas,
//! *Approximating a data stream for querying and estimation: Algorithms
//! and performance evaluation*, ICDE 2002, as characterized by the SWAT
//! paper:
//!
//! * **Maintenance** is `O(1)` per arrival: "the Histogram technique
//!   computes only the sum and the squared sum with every arrival; the
//!   rest of the summary is computed at every query." The window values
//!   are retained (space `O(N)`, as the SWAT paper notes when contrasting
//!   with its own `O(log N)`).
//! * **At query time** a `B`-bucket histogram minimizing the sum of
//!   squared errors (a V-optimal histogram) is constructed to within a
//!   `(1+ε)` factor of optimal, using the Guha–Koudas–Shim device of
//!   restricting the dynamic program to split points where the
//!   previous-row error grows by a `(1+δ)` factor. Smaller ε gives a
//!   better histogram at a higher construction cost — the knob the SWAT
//!   paper sweeps in its Figures 5 and 6.
//! * Queries are answered from the bucket averages.
//!
//! ```
//! use swat_histogram::{HistogramConfig, SlidingHistogram};
//!
//! let mut h = SlidingHistogram::new(HistogramConfig::new(64, 8, 0.1).unwrap());
//! for i in 0..200 {
//!     h.push((i % 10) as f64);
//! }
//! let hist = h.build();
//! let newest = hist.value_at(0); // window index 0 = newest
//! assert!((0.0..=9.0).contains(&newest));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod buckets;
pub mod prefix;
pub mod uniform;
pub mod voptimal;

pub use approx::approximate_voptimal;
pub use buckets::{Bucket, Histogram};
pub use prefix::PrefixSums;
pub use uniform::uniform_buckets;
pub use voptimal::exact_voptimal;

use std::collections::VecDeque;
use std::fmt;

/// Configuration of a [`SlidingHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramConfig {
    window: usize,
    buckets: usize,
    epsilon: f64,
}

impl HistogramConfig {
    /// Window size `N`, bucket budget `B`, approximation knob `ε`.
    ///
    /// # Errors
    ///
    /// [`HistogramError::BadConfig`] if `window == 0`, `buckets == 0`, or
    /// `epsilon <= 0`.
    pub fn new(window: usize, buckets: usize, epsilon: f64) -> Result<Self, HistogramError> {
        if window == 0 || buckets == 0 || epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(HistogramError::BadConfig);
        }
        Ok(HistogramConfig {
            window,
            buckets,
            epsilon,
        })
    }

    /// Window size `N`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Bucket budget `B`.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Approximation parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Errors from histogram operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// Invalid configuration parameters.
    BadConfig,
    /// No data has arrived yet.
    Empty,
    /// Queried index outside the current window contents.
    IndexOutOfWindow {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::BadConfig => {
                write!(f, "window and buckets must be positive, epsilon > 0")
            }
            HistogramError::Empty => write!(f, "no data in window"),
            HistogramError::IndexOutOfWindow { index } => {
                write!(f, "index {index} outside current window")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// The sliding-window histogram baseline.
///
/// Per-arrival maintenance is `O(1)`; [`SlidingHistogram::build`] performs
/// the expensive `(1+ε)`-approximate V-optimal construction.
#[derive(Debug, Clone)]
pub struct SlidingHistogram {
    config: HistogramConfig,
    /// Window values, oldest at the front (natural DP order).
    window: VecDeque<f64>,
    /// Running sum over the window (maintained per arrival, as in the
    /// paper's description of the baseline's maintenance work).
    running_sum: f64,
    /// Running squared sum over the window.
    running_sq_sum: f64,
}

impl SlidingHistogram {
    /// An empty sliding histogram.
    pub fn new(config: HistogramConfig) -> Self {
        SlidingHistogram {
            config,
            window: VecDeque::with_capacity(config.window),
            running_sum: 0.0,
            running_sq_sum: 0.0,
        }
    }

    /// Feed one value (O(1): ring update plus the running sums).
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "stream values must be finite");
        if self.window.len() == self.config.window {
            if let Some(old) = self.window.pop_front() {
                self.running_sum -= old;
                self.running_sq_sum -= old * old;
            }
        }
        self.window.push_back(value);
        self.running_sum += value;
        self.running_sq_sum += value * value;
    }

    /// The configuration.
    pub fn config(&self) -> &HistogramConfig {
        &self.config
    }

    /// Values currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no values have arrived.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Running sum over the window (maintained incrementally).
    pub fn sum(&self) -> f64 {
        self.running_sum
    }

    /// Running squared sum over the window.
    pub fn squared_sum(&self) -> f64 {
        self.running_sq_sum
    }

    /// Approximate memory footprint in bytes (`O(N)`, for the space
    /// comparison of the paper's §2.7 and §5.1).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.window.capacity() * std::mem::size_of::<f64>()
    }

    /// Build the `(1+ε)`-approximate `B`-bucket V-optimal histogram of the
    /// current window — the expensive query-time step.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty; gate on [`SlidingHistogram::len`].
    pub fn build(&self) -> Histogram {
        assert!(!self.window.is_empty(), "cannot build over an empty window");
        let values: Vec<f64> = self.window.iter().copied().collect();
        approx::approximate_voptimal(&values, self.config.buckets, self.config.epsilon)
    }

    /// Exact window value at window index `idx` (0 = newest) — ground
    /// truth for tests; real clients only see [`SlidingHistogram::build`].
    pub fn exact_at(&self, idx: usize) -> Option<f64> {
        let len = self.window.len();
        if idx >= len {
            return None;
        }
        Some(self.window[len - 1 - idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(HistogramConfig::new(0, 8, 0.1).is_err());
        assert!(HistogramConfig::new(8, 0, 0.1).is_err());
        assert!(HistogramConfig::new(8, 2, 0.0).is_err());
        assert!(HistogramConfig::new(8, 2, f64::NAN).is_err());
        let c = HistogramConfig::new(1024, 30, 0.1).unwrap();
        assert_eq!((c.window(), c.buckets()), (1024, 30));
    }

    #[test]
    fn running_sums_track_window() {
        let mut h = SlidingHistogram::new(HistogramConfig::new(4, 2, 0.1).unwrap());
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.push(v);
        }
        // Window now [2, 3, 4, 5].
        assert_eq!(h.sum(), 14.0);
        assert_eq!(h.squared_sum(), 4.0 + 9.0 + 16.0 + 25.0);
        assert_eq!(h.len(), 4);
        assert_eq!(h.exact_at(0), Some(5.0));
        assert_eq!(h.exact_at(3), Some(2.0));
        assert_eq!(h.exact_at(4), None);
    }

    #[test]
    fn build_on_piecewise_constant_data_is_exact() {
        // 2 plateaus, 2 buckets: V-optimal error is zero and the bucket
        // averages recover the data exactly.
        let mut h = SlidingHistogram::new(HistogramConfig::new(8, 2, 0.1).unwrap());
        for v in [5.0, 5.0, 5.0, 5.0, 9.0, 9.0, 9.0, 9.0] {
            h.push(v);
        }
        let hist = h.build();
        assert_eq!(hist.value_at(0), 9.0); // newest
        assert_eq!(hist.value_at(7), 5.0); // oldest
        assert!(hist.sse() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn build_on_empty_panics() {
        let h = SlidingHistogram::new(HistogramConfig::new(8, 2, 0.1).unwrap());
        let _ = h.build();
    }

    #[test]
    fn space_is_linear_in_window() {
        let mk = |n: usize| {
            let mut h = SlidingHistogram::new(HistogramConfig::new(n, 4, 0.1).unwrap());
            for i in 0..n {
                h.push(i as f64);
            }
            h.space_bytes()
        };
        assert!(mk(1024) > 4 * mk(128));
    }
}
