//! Equi-width (uniform-bucket) histograms — the trivial baseline.
//!
//! V-optimal construction is where the Guha–Koudas baseline spends its
//! time; the cheapest alternative simply splits the window into `B`
//! equal-length buckets in `O(n)`. Keeping it alongside the `(1+ε)`
//! construction lets experiments separate *how much of the baseline's
//! accuracy comes from optimizing the boundaries* from what any
//! bucketing gives you.

use crate::buckets::{Bucket, Histogram};
use crate::prefix::PrefixSums;

/// Split `values` (natural order) into `b` contiguous buckets of
/// (near-)equal length. `O(n)`.
///
/// # Panics
///
/// Panics if `values` is empty or `b == 0`.
pub fn uniform_buckets(values: &[f64], b: usize) -> Histogram {
    let n = values.len();
    assert!(n > 0, "cannot build a histogram of nothing");
    assert!(b > 0, "need at least one bucket");
    let b = b.min(n);
    let p = PrefixSums::new(values);
    let mut buckets = Vec::with_capacity(b);
    let mut start = 0;
    for i in 0..b {
        // Distribute the remainder so sizes differ by at most one.
        let end = ((i + 1) * n) / b - 1;
        buckets.push(Bucket {
            start,
            end,
            value: p.mean(start, end),
            sse: p.sse(start, end),
        });
        start = end + 1;
    }
    Histogram::new(buckets, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approximate_voptimal;

    #[test]
    fn tiles_evenly() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let h = uniform_buckets(&data, 3);
        let sizes: Vec<usize> = h.buckets().iter().map(Bucket::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
    }

    #[test]
    fn one_bucket_is_global_mean() {
        let h = uniform_buckets(&[2.0, 4.0, 9.0], 1);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.buckets()[0].value, 5.0);
    }

    #[test]
    fn b_geq_n_is_lossless() {
        let data = [3.0, 1.0, 4.0];
        let h = uniform_buckets(&data, 10);
        assert!(h.sse() < 1e-12);
    }

    #[test]
    fn voptimal_never_loses_to_uniform() {
        // The optimized construction must match or beat fixed boundaries
        // on any data, at any budget.
        let data: Vec<f64> = (0..96)
            .map(|i| if i < 30 { 5.0 } else { ((i * 17) % 40) as f64 })
            .collect();
        for b in [2usize, 5, 10, 24] {
            let uni = uniform_buckets(&data, b).sse();
            let opt = approximate_voptimal(&data, b, 0.1).sse();
            assert!(opt <= uni + 1e-9, "b={b}: voptimal {opt} > uniform {uni}");
        }
    }

    #[test]
    fn plateau_data_shows_the_gap() {
        // Two plateaus misaligned with uniform boundaries: V-optimal is
        // exact, uniform is not.
        let mut data = vec![0.0; 10];
        data.extend(vec![100.0; 22]); // boundary at 10, not a multiple of 32/2
        let uni = uniform_buckets(&data, 2).sse();
        let opt = approximate_voptimal(&data, 2, 0.1).sse();
        assert!(opt < 1e-9);
        assert!(uni > 1000.0, "uniform should pay dearly, got {uni}");
    }
}
