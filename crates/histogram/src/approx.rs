//! `(1+ε)`-approximate V-optimal construction (Guha–Koudas–Shim).
//!
//! The exact dynamic program evaluates, for every row `b` and every
//! position `i`, all `i` candidate split points `j`. The GKS device
//! exploits that the previous row's error `E[b−1][j]` is nondecreasing in
//! `j` while the tail cost `SSE(j+1, i)` is nonincreasing: it suffices to
//! probe one `j` inside every run of `j`s whose `E[b−1][j]` values agree
//! to within a `(1+δ)` factor — the largest such `j` dominates the run up
//! to that factor. Compounding over `B` rows, `δ = ε / (2B)` yields a
//! `(1+ε)`-approximation of the optimal error ([GKS, STOC'01];
//! [Guha–Koudas, ICDE'02] make it incremental).
//!
//! The number of probed split points per position is
//! `O(log_{1+δ} (E_max/E_min))`, so smaller `ε` probes more points and
//! costs more — exactly the accuracy/construction-time trade-off the SWAT
//! paper sweeps (`ε ∈ {0.1, 0.01, 0.001}`). For very small `ε` the probe
//! set degenerates to all positions and the cost approaches the exact
//! `O(B n²)` program; this matches the paper's observation that the
//! baseline's query cost blows up as `ε` shrinks.

use crate::buckets::{Bucket, Histogram};
use crate::prefix::PrefixSums;

/// Build a `(1+ε)`-approximate V-optimal `b`-bucket histogram of `values`
/// (natural order).
///
/// # Panics
///
/// Panics if `values` is empty, `b == 0`, or `epsilon <= 0`.
pub fn approximate_voptimal(values: &[f64], b: usize, epsilon: f64) -> Histogram {
    let n = values.len();
    assert!(n > 0, "cannot build a histogram of nothing");
    assert!(b > 0, "need at least one bucket");
    assert!(
        epsilon > 0.0 && epsilon.is_finite(),
        "epsilon must be positive"
    );
    let b = b.min(n);
    let p = PrefixSums::new(values);
    // Per-row multiplicative slack compounding to (1 + epsilon) over b rows.
    let delta = epsilon / (2.0 * b as f64);

    let mut err: Vec<f64> = (0..n).map(|i| p.sse(0, i)).collect();
    let mut choices: Vec<Vec<usize>> = vec![vec![0; n]]; // row 1 placeholder
    for _row in 2..=b {
        // Probe points: the largest j in each (1+delta)-run of err.
        let probes = probe_points(&err, delta);
        let mut next = vec![0.0; n];
        let mut ch = vec![usize::MAX; n];
        for i in 0..n {
            let mut best = err[i]; // reuse of the previous row (fewer buckets)
            let mut best_j = usize::MAX;
            // Binary search: probes are sorted; only j < i are eligible.
            let hi = probes.partition_point(|&j| j < i);
            for &j in &probes[..hi] {
                let cand = err[j] + p.sse(j + 1, i);
                if cand < best {
                    best = cand;
                    best_j = j;
                }
            }
            // Always consider the immediate predecessor: it caps the last
            // bucket at a single run and tightens constant tails.
            if i > 0 {
                let j = i - 1;
                let cand = err[j] + p.sse(j + 1, i);
                if cand < best {
                    best = cand;
                    best_j = j;
                }
            }
            next[i] = best;
            ch[i] = best_j;
        }
        err = next;
        choices.push(ch);
    }

    let mut boundaries = vec![n - 1];
    let mut i = n - 1;
    let mut row = b;
    while row > 1 {
        let j = choices[row - 1][i];
        row -= 1;
        if j == usize::MAX {
            continue;
        }
        boundaries.push(j);
        i = j;
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    let mut buckets = Vec::with_capacity(boundaries.len());
    let mut start = 0;
    for &end in &boundaries {
        buckets.push(Bucket {
            start,
            end,
            value: p.mean(start, end),
            sse: p.sse(start, end),
        });
        start = end + 1;
    }
    Histogram::new(buckets, n)
}

/// The largest index of every `(1+delta)`-run of the nondecreasing error
/// row: `j` is kept iff `err[j+1]` would exceed `(1+delta) * err[j]` (or
/// `j` is the last index). Zero-error prefixes collapse into their last
/// index.
fn probe_points(err: &[f64], delta: f64) -> Vec<usize> {
    let n = err.len();
    let mut probes = Vec::new();
    for j in 0..n {
        if j + 1 == n {
            probes.push(j);
            break;
        }
        let here = err[j];
        let next = err[j + 1];
        let threshold = if here == 0.0 {
            0.0
        } else {
            here * (1.0 + delta)
        };
        if next > threshold {
            probes.push(j);
        }
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voptimal::optimal_sse;

    #[test]
    fn probe_points_respect_runs() {
        // err = [0, 0, 1, 1.0005, 2, 2] with delta = 0.01:
        // keep j=1 (end of zero run), j=3 (end of the ~1 run), j=5 (last).
        let err = [0.0, 0.0, 1.0, 1.0005, 2.0, 2.0];
        let probes = probe_points(&err, 0.01);
        assert_eq!(probes, vec![1, 3, 5]);
    }

    #[test]
    fn matches_exact_on_plateaus() {
        let data = [2.0, 2.0, 2.0, 8.0, 8.0, 8.0, 5.0, 5.0];
        let h = approximate_voptimal(&data, 3, 0.1);
        assert!(h.sse() < 1e-12, "three plateaus, three buckets");
    }

    #[test]
    fn within_one_plus_epsilon_of_optimal() {
        // Random-ish data; check the approximation guarantee for several
        // (B, eps) combinations.
        let data: Vec<f64> = (0..64).map(|i| ((i * 37) % 29) as f64).collect();
        for b in [2usize, 4, 8] {
            for eps in [0.5, 0.1, 0.01] {
                let approx = approximate_voptimal(&data, b, eps).sse();
                let exact = optimal_sse(&data, b);
                assert!(
                    approx <= (1.0 + eps) * exact + 1e-9,
                    "b={b} eps={eps}: {approx} > (1+eps) * {exact}"
                );
            }
        }
    }

    #[test]
    fn smaller_epsilon_probes_more_points() {
        let err: Vec<f64> = (0..1000).map(|i| (i as f64 + 1.0).powf(1.5)).collect();
        let coarse = probe_points(&err, 0.5).len();
        let fine = probe_points(&err, 0.001).len();
        assert!(
            fine > 5 * coarse,
            "fine probing ({fine}) should dwarf coarse ({coarse})"
        );
    }

    #[test]
    fn single_value_and_single_bucket() {
        let h = approximate_voptimal(&[7.0], 5, 0.1);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.value_at(0), 7.0);
        let h = approximate_voptimal(&[1.0, 2.0, 3.0, 4.0], 1, 0.1);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.value_at(0), 2.5);
    }

    #[test]
    fn bucket_count_respects_budget() {
        let data: Vec<f64> = (0..128).map(|i| ((i * 91) % 53) as f64).collect();
        for b in [1usize, 3, 10, 30] {
            let h = approximate_voptimal(&data, b, 0.1);
            assert!(h.buckets().len() <= b, "b={b}: got {}", h.buckets().len());
        }
    }
}
