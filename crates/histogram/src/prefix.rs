//! Prefix sums of values and squares — the `O(1)` sufficient statistics
//! for bucket errors.
//!
//! For a bucket spanning positions `a..=b` the best constant
//! representative is the mean, and the resulting sum of squared errors is
//!
//! ```text
//! SSE(a, b) = Σ v_i² − (Σ v_i)² / (b − a + 1)
//! ```
//!
//! computable in `O(1)` from prefix sums. These power both the exact and
//! the `(1+ε)`-approximate V-optimal constructions.

/// Prefix sums over a slice of values (natural order: index 0 first).
#[derive(Debug, Clone)]
pub struct PrefixSums {
    /// `sum[i]` = sum of the first `i` values.
    sum: Vec<f64>,
    /// `sq[i]` = sum of squares of the first `i` values.
    sq: Vec<f64>,
}

impl PrefixSums {
    /// Build prefix sums over `values` in `O(n)`.
    pub fn new(values: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(values.len() + 1);
        let mut sq = Vec::with_capacity(values.len() + 1);
        sum.push(0.0);
        sq.push(0.0);
        let (mut s, mut q) = (0.0, 0.0);
        for &v in values {
            s += v;
            q += v * v;
            sum.push(s);
            sq.push(q);
        }
        PrefixSums { sum, sq }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// Whether the underlying slice was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum over positions `a..=b` (inclusive).
    #[inline]
    pub fn sum(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a <= b && b < self.len());
        self.sum[b + 1] - self.sum[a]
    }

    /// Sum of squares over positions `a..=b`.
    #[inline]
    pub fn sq_sum(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a <= b && b < self.len());
        self.sq[b + 1] - self.sq[a]
    }

    /// Mean over positions `a..=b`.
    #[inline]
    pub fn mean(&self, a: usize, b: usize) -> f64 {
        self.sum(a, b) / (b - a + 1) as f64
    }

    /// Sum of squared errors of representing `a..=b` by its mean;
    /// clamped at zero against floating-point cancellation.
    #[inline]
    pub fn sse(&self, a: usize, b: usize) -> f64 {
        let c = (b - a + 1) as f64;
        let s = self.sum(a, b);
        (self.sq_sum(a, b) - s * s / c).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let p = PrefixSums::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.sum(0, 3), 10.0);
        assert_eq!(p.sum(1, 2), 5.0);
        assert_eq!(p.sq_sum(0, 1), 5.0);
        assert_eq!(p.mean(0, 3), 2.5);
        assert_eq!(p.mean(2, 2), 3.0);
    }

    #[test]
    fn sse_matches_direct_computation() {
        let values = [3.0, 7.0, 1.0, 9.0, 4.0, 4.0];
        let p = PrefixSums::new(&values);
        for a in 0..values.len() {
            for b in a..values.len() {
                let mean = values[a..=b].iter().sum::<f64>() / (b - a + 1) as f64;
                let direct: f64 = values[a..=b].iter().map(|v| (v - mean) * (v - mean)).sum();
                assert!(
                    (p.sse(a, b) - direct).abs() < 1e-9,
                    "sse({a},{b}): {} vs {direct}",
                    p.sse(a, b)
                );
            }
        }
    }

    #[test]
    fn sse_of_singletons_and_constants_is_zero() {
        let p = PrefixSums::new(&[5.0, 5.0, 5.0, 2.0]);
        assert_eq!(p.sse(0, 0), 0.0);
        assert_eq!(p.sse(3, 3), 0.0);
        assert!(p.sse(0, 2) < 1e-12);
        assert!(p.sse(0, 3) > 0.0);
    }

    #[test]
    fn empty_prefix() {
        let p = PrefixSums::new(&[]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
