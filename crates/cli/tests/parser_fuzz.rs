//! The argument parser must never panic, whatever the shell throws at it.

use proptest::prelude::*;
use swat_cli::args::Args;

proptest! {
    #[test]
    fn parser_never_panics(args in prop::collection::vec(".{0,24}", 0..12)) {
        let _ = Args::parse(args);
    }

    #[test]
    fn parser_never_panics_flag_shaped(
        args in prop::collection::vec(
            prop_oneof![
                Just("--window".to_owned()),
                Just("--point".to_owned()),
                Just("--render".to_owned()),
                "[a-z0-9:.-]{0,12}",
                "--[a-z]{0,8}",
            ],
            0..16,
        )
    ) {
        let _ = Args::parse(args);
    }

    /// Parsed flag values are recoverable verbatim.
    #[test]
    fn values_roundtrip(value in "[a-z0-9:.]{1,20}") {
        let a = Args::parse(["cmd".to_owned(), "--flag".to_owned(), value.clone()]).unwrap();
        prop_assert_eq!(a.get("flag"), Some(value.as_str()));
    }
}
