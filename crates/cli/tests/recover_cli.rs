//! `swat recover` end-to-end: checkpoint, crash, recover, verify.

use std::sync::atomic::{AtomicU64, Ordering};

use swat_cli::args::Args;
use swat_cli::commands;
use swat_store::DurableStore;
use swat_tree::SwatConfig;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "swat-cli-recover-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn recover_args(dir: &std::path::Path) -> Args {
    Args::parse(vec![
        "recover".to_owned(),
        "--dir".to_owned(),
        dir.to_string_lossy().into_owned(),
    ])
    .unwrap()
}

#[test]
fn recover_command_restores_a_crashed_store() {
    let dir = scratch_dir();
    let config = SwatConfig::with_coefficients(16, 1).unwrap();
    let digest = {
        let mut store = DurableStore::create(&dir, config, 2).unwrap();
        for i in 0..30 {
            let v = (i as f64 * 0.7).sin() * 5.0;
            store.push_row(&[v, -v]).unwrap();
            if i == 19 {
                store.checkpoint().unwrap();
            }
        }
        store.sync().unwrap();
        store.answers_digest()
        // Dropped without a clean shutdown: the crash.
    };
    commands::recover(&recover_args(&dir)).unwrap();
    // The command re-anchored the store; a second recovery sees the
    // fresh checkpoint and the same state.
    let (store, report) = swat_store::RecoveryManager::recover(&dir).unwrap();
    assert_eq!(store.answers_digest(), digest);
    assert_eq!(report.recovered_arrivals, 30);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_command_reports_empty_directories_as_errors() {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let err = commands::recover(&recover_args(&dir)).unwrap_err();
    assert!(err.contains("no recoverable state"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
