//! `swat` — command-line interface to the SWAT stream summarizer.
//!
//! ```text
//! swat summarize --window 256 --file data.csv --point 0 --inner exp:32:10
//! swat simulate --scheme all --topology binary --depth 2 --window 64
//! swat generate --dataset weather --count 1000 --seed 7
//! swat ingest-bench --quick --out results/BENCH_ingest.json
//! swat query-bench --quick --out results/BENCH_query.json
//! swat chaos --drops 0,0.05,0.2 --delays 0,2 --depth 3
//! swat recover --dir /var/lib/swat/store
//! swat client --addr 127.0.0.1:7700 --ingest 1,2,3 --top-k 4 --status
//! swat recovery-bench --quick --out results/BENCH_recovery.json
//! swat store-bench --quick --out results/BENCH_store.json
//! swat repair-bench --quick --out results/BENCH_repair.json
//! swat scale-bench --quick --out results/BENCH_scale.json
//! swat daemon-bench --quick --out results/BENCH_daemon.json
//! swat failover-bench --quick --out results/BENCH_failover.json
//! swat help
//! ```

use std::process::ExitCode;
use swat_cli::{args, commands};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        commands::print_help();
        return ExitCode::SUCCESS;
    }
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.switch("help") || parsed.command() == "help" {
        commands::print_help();
        return ExitCode::SUCCESS;
    }
    let result = match parsed.command() {
        "summarize" => commands::summarize(&parsed),
        "simulate" => commands::simulate(&parsed),
        "generate" => commands::generate(&parsed),
        "ingest-bench" => commands::ingest_bench(&parsed),
        "query-bench" => commands::query_bench(&parsed),
        "chaos" => commands::chaos(&parsed),
        "recover" => commands::recover(&parsed),
        "recovery-bench" => commands::recovery_bench(&parsed),
        "store-bench" => commands::store_bench(&parsed),
        "repair-bench" => commands::repair_bench(&parsed),
        "scale-bench" => commands::scale_bench(&parsed),
        "client" => swat_cli::daemon_cmd::client(&parsed),
        "daemon-bench" => commands::daemon_bench(&parsed),
        "failover-bench" => commands::failover_bench(&parsed),
        other => Err(format!("unknown command {other:?} (try `swat help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
