//! The daemon-facing commands: `swatd` (serve) and `swat client`.
//!
//! `serve` brings one cluster node up and blocks until SIGTERM/SIGINT
//! or a wire-level `Shutdown` request, then drains gracefully and
//! reports what the drain accomplished. `client` is a thin scriptable
//! front end over [`swat_daemon::DaemonClient`] used by the smoke and
//! bench scripts.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::args::{split_spec, Args};
use crate::errors::PathError;
use swat_daemon::{spawn, DaemonConfig, FailoverClient, Request, Response, Role};
use swat_replication::RetryPolicy;
use swat_tree::SwatConfig;

/// Set by the signal handler; polled by the serve loop.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SIGTERM = 15, SIGINT = 2: both mean "drain and exit".
    unsafe {
        signal(15, on_term as *const () as usize);
        signal(2, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn parse_addr(flag: &str, raw: &str) -> Result<SocketAddr, String> {
    raw.parse()
        .map_err(|_| format!("--{flag} {raw:?}: expected HOST:PORT"))
}

/// `swatd` — bring one node up and serve until asked to stop.
pub fn serve(a: &Args) -> Result<(), String> {
    let shards = a
        .get_parsed("shards", 1usize, "a positive count")
        .map_err(|e| e.to_string())?;
    let streams = a
        .get_parsed("streams", shards, "a positive count")
        .map_err(|e| e.to_string())?;
    if shards == 0 || streams == 0 {
        return Err("--shards and --streams must be positive".into());
    }
    let window = a
        .get_parsed("window", 32usize, "a power of two")
        .map_err(|e| e.to_string())?;
    let coeffs = a
        .get_parsed("coeffs", 4usize, "a positive count")
        .map_err(|e| e.to_string())?;
    let config = SwatConfig::with_coefficients(window, coeffs).map_err(|e| e.to_string())?;
    // Cluster mode: `--peer` (repeated, indexed by node id) arms
    // elections and standby promotion. Legacy mode keeps the PR 7
    // static topology exactly.
    let peers = a
        .get_all("peer")
        .iter()
        .map(|raw| parse_addr("peer", raw))
        .collect::<Result<Vec<_>, _>>()?;
    if !peers.is_empty() && peers.len() != shards + 1 {
        return Err(format!(
            "a failover cluster over {shards} shard(s) has {} node(s); got {} --peer \
             address(es)",
            shards + 1,
            peers.len()
        ));
    }
    let role_raw = a.get("role").unwrap_or("replica");
    let role = match role_raw {
        "leader" => {
            let addrs = a.get_all("replica");
            if peers.is_empty() && addrs.len() != shards {
                return Err(format!(
                    "a leader over {shards} shards needs exactly {shards} --replica \
                     addresses (got {})",
                    addrs.len()
                ));
            }
            let replicas = addrs
                .iter()
                .map(|raw| parse_addr("replica", raw))
                .collect::<Result<Vec<_>, _>>()?;
            Role::Leader { replicas }
        }
        "replica" => {
            let shard = a
                .get_parsed("shard", 0usize, "a shard index")
                .map_err(|e| e.to_string())?;
            if shard >= shards {
                return Err(format!("--shard {shard} out of range (0..{shards})"));
            }
            Role::Replica { shard }
        }
        other => return Err(format!("unknown role {other:?} (leader|replica)")),
    };

    let mut cfg = DaemonConfig::localhost(role, config, streams, shards);
    cfg.listen = parse_addr("listen", a.get("listen").unwrap_or("127.0.0.1:0"))?;
    cfg.standbys = a.switch("standbys");
    cfg.election_timeout = Duration::from_millis(
        a.get_parsed("election-timeout-ms", 600u64, "milliseconds")
            .map_err(|e| e.to_string())?,
    );
    if cfg.standbys && peers.is_empty() {
        return Err("--standbys needs a full --peer list (cluster mode)".into());
    }
    cfg.peers = peers;
    if let Some(dir) = a.get("dir") {
        if matches!(cfg.role, Role::Leader { .. }) && cfg.peers.is_empty() {
            return Err(
                "--dir applies to replicas only (a legacy leader holds no streams); \
                 in cluster mode it persists the leader's term"
                    .into(),
            );
        }
        std::fs::create_dir_all(dir).map_err(|e| PathError::creating(dir, e))?;
        cfg.dir = Some(PathBuf::from(dir));
    }
    cfg.io_timeout = Duration::from_millis(
        a.get_parsed("io-timeout-ms", 500u64, "milliseconds")
            .map_err(|e| e.to_string())?,
    );
    cfg.hb_period = Duration::from_millis(
        a.get_parsed("hb-period-ms", 100u64, "milliseconds")
            .map_err(|e| e.to_string())?,
    );
    cfg.miss_threshold = a
        .get_parsed("miss-threshold", 3u32, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.max_inflight = a
        .get_parsed("max-inflight", 64usize, "a positive count")
        .map_err(|e| e.to_string())?;
    if cfg.miss_threshold == 0 || cfg.max_inflight == 0 {
        return Err("--miss-threshold and --max-inflight must be positive".into());
    }

    let handle = spawn(cfg).map_err(|e| format!("starting the daemon: {e}"))?;
    println!("swatd: {role_raw} listening on {}", handle.addr());
    if let Some(port_file) = a.get("port-file") {
        // Scripts wait for this file to learn the bound port.
        std::fs::write(port_file, format!("{}\n", handle.addr()))
            .map_err(|e| PathError::writing(port_file, e))?;
    }
    install_signal_handlers();
    while !TERM.load(Ordering::SeqCst) && !handle.stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = handle.stop();
    println!(
        "swatd: drained {} in-flight request(s); checkpointed: {}",
        report.drained, report.checkpointed
    );
    Ok(())
}

/// `swat client` — scriptable requests against a running daemon or
/// cluster. Repeat `--addr` to hand the client the whole peer list:
/// it follows `NotLeaderR` redirects and retries refused/timed-out
/// sockets with bounded backoff, so a request survives an election.
pub fn client(a: &Args) -> Result<(), String> {
    let addrs = a.get_all("addr");
    if addrs.is_empty() {
        return Err("--addr is required (HOST:PORT; repeat for a cluster)".into());
    }
    let addrs = addrs
        .iter()
        .map(|raw| parse_addr("addr", raw))
        .collect::<Result<Vec<_>, _>>()?;
    let timeout = Duration::from_millis(
        a.get_parsed("timeout-ms", 2000u64, "milliseconds")
            .map_err(|e| e.to_string())?,
    );
    let retries = a
        .get_parsed("retries", 4u32, "a retry budget")
        .map_err(|e| e.to_string())?;
    let retry_ms = a
        .get_parsed("retry-ms", 50u64, "milliseconds")
        .map_err(|e| e.to_string())?;
    let mut client = FailoverClient::new(
        addrs,
        RetryPolicy {
            max_retries: retries.max(1),
            timeout: retry_ms,
        },
        timeout,
    );
    let first_id = a
        .get_parsed("req-id", 0u64, "a write id")
        .map_err(|e| e.to_string())?;
    for (offset, raw) in a.get_all("ingest").iter().enumerate() {
        let req_id = first_id + offset as u64;
        let row = raw
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<Vec<f64>, _>>()
            .map_err(|_| format!("--ingest {raw:?}: expected comma-separated numbers"))?;
        let resp = client
            .ingest_acked(req_id, row, retries.max(1))
            .map_err(|e| e.to_string())?;
        println!("ingest[{req_id}]: {}", describe(&resp));
    }
    for raw in a.get_all("point") {
        let parts = split_spec(raw);
        let [stream, index] = parts.as_slice() else {
            return Err(format!("--point {raw:?}: expected STREAM:INDEX"));
        };
        let stream: u64 = stream
            .parse()
            .map_err(|_| format!("bad STREAM in {raw:?}"))?;
        let index: u32 = index.parse().map_err(|_| format!("bad INDEX in {raw:?}"))?;
        let resp = client
            .call(&Request::Point { stream, index })
            .map_err(|e| e.to_string())?;
        println!("point[{stream}:{index}]: {}", describe(&resp));
    }
    for raw in a.get_all("range") {
        let parts = split_spec(raw);
        let [stream, center, radius, newest, oldest] = parts.as_slice() else {
            return Err(format!(
                "--range {raw:?}: expected STREAM:CENTER:RADIUS:NEWEST:OLDEST"
            ));
        };
        let req = Request::Range {
            stream: stream
                .parse()
                .map_err(|_| format!("bad STREAM in {raw:?}"))?,
            center: center
                .parse()
                .map_err(|_| format!("bad CENTER in {raw:?}"))?,
            radius: radius
                .parse()
                .map_err(|_| format!("bad RADIUS in {raw:?}"))?,
            newest: newest
                .parse()
                .map_err(|_| format!("bad NEWEST in {raw:?}"))?,
            oldest: oldest
                .parse()
                .map_err(|_| format!("bad OLDEST in {raw:?}"))?,
        };
        let resp = client.call(&req).map_err(|e| e.to_string())?;
        println!("range[{raw}]: {}", describe(&resp));
    }
    if let Some(raw) = a.get("top-k") {
        let k: u32 = raw
            .parse()
            .map_err(|_| format!("--top-k {raw:?}: expected a count"))?;
        let resp = client
            .call(&Request::TopK { k })
            .map_err(|e| e.to_string())?;
        println!("top-k[{k}]: {}", describe(&resp));
    }
    if a.switch("status") {
        let resp = client.call(&Request::Status).map_err(|e| e.to_string())?;
        println!("status: {}", describe(&resp));
    }
    if a.switch("shutdown") {
        let resp = client.call(&Request::Shutdown).map_err(|e| e.to_string())?;
        println!("shutdown: {}", describe(&resp));
    }
    Ok(())
}

/// Render one response for humans and scripts (stable, greppable).
fn describe(resp: &Response) -> String {
    match resp {
        Response::HelloOk { node } => format!("hello from node {node}"),
        Response::Pong { nonce } => format!("pong {nonce}"),
        Response::IngestOk {
            req_id,
            duplicate,
            failed_shards,
        } => {
            if failed_shards.is_empty() {
                format!("applied req_id={req_id} duplicate={duplicate}")
            } else {
                format!("DEGRADED req_id={req_id} failed_shards={failed_shards:?}")
            }
        }
        Response::PointR { answer } => format!(
            "value={:.6} error_bound={:.6} level={}{}",
            answer.value,
            answer.error_bound,
            answer.level,
            if answer.extrapolated {
                " (extrapolated)"
            } else {
                ""
            }
        ),
        Response::RangeR { matches } => {
            let shown: Vec<String> = matches
                .iter()
                .map(|m| format!("{}={:.4}", m.index, m.value))
                .collect();
            format!("{} match(es) [{}]", matches.len(), shown.join(", "))
        }
        Response::TopKR { complete, entries } => {
            let shown: Vec<String> = entries
                .iter()
                .map(|e| format!("s{}#{}={:.4}", e.stream, e.index, e.weight()))
                .collect();
            format!(
                "{} [{}]",
                if *complete { "complete" } else { "INCOMPLETE" },
                shown.join(", ")
            )
        }
        Response::StatusR {
            node,
            term,
            leader,
            arrivals,
            replicas,
            store,
        } => {
            let health: Vec<String> = replicas
                .iter()
                .map(|(n, h)| format!("node{n}={h:?}"))
                .collect();
            format!(
                "node={node} term={term} leader={leader} arrivals={arrivals} store={store} replicas=[{}]",
                health.join(", ")
            )
        }
        Response::NotLeaderR { leader, term } => {
            format!("NOT LEADER (ask node {leader}, term {term})")
        }
        Response::ShutdownOk { drained } => format!("acknowledged (drained {drained})"),
        Response::Overloaded => "OVERLOADED (shed, nothing applied)".into(),
        Response::Unavailable { node } => format!("UNAVAILABLE (node {node} unreachable)"),
        Response::ErrorR { code } => format!("ERROR {code:?}"),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_rejects_bad_configurations() {
        let a = Args::parse(["serve", "--role", "router"]).unwrap();
        assert!(serve(&a).unwrap_err().contains("unknown role"));
        let a = Args::parse([
            "serve", "--role", "replica", "--shard", "5", "--shards", "2",
        ])
        .unwrap();
        assert!(serve(&a).unwrap_err().contains("out of range"));
        let a = Args::parse(["serve", "--role", "leader", "--shards", "2"]).unwrap();
        assert!(serve(&a).unwrap_err().contains("--replica"));
        let a = Args::parse(["serve", "--listen", "nowhere"]).unwrap();
        assert!(serve(&a).unwrap_err().contains("HOST:PORT"));
        let a = Args::parse([
            "serve",
            "--role",
            "leader",
            "--replica",
            "127.0.0.1:9",
            "--dir",
            "/tmp/x",
        ])
        .unwrap();
        assert!(serve(&a).unwrap_err().contains("--dir"));
        // Cluster mode needs one --peer address per node (shards + 1).
        let a = Args::parse(["serve", "--shards", "2", "--peer", "127.0.0.1:9"]).unwrap();
        assert!(serve(&a).unwrap_err().contains("--peer"));
        // Standbys without a peer list is a configuration error.
        let a = Args::parse(["serve", "--standbys"]).unwrap();
        assert!(serve(&a).unwrap_err().contains("--peer"));
    }

    #[test]
    fn client_requires_an_address() {
        let a = Args::parse(["client"]).unwrap();
        assert!(client(&a).unwrap_err().contains("--addr"));
        let a = Args::parse(["client", "--addr", "nope"]).unwrap();
        assert!(client(&a).unwrap_err().contains("HOST:PORT"));
    }

    #[test]
    fn responses_render_stably() {
        assert_eq!(
            describe(&Response::IngestOk {
                req_id: 3,
                duplicate: false,
                failed_shards: vec![1]
            }),
            "DEGRADED req_id=3 failed_shards=[1]"
        );
        assert!(describe(&Response::Overloaded).contains("OVERLOADED"));
        assert!(describe(&Response::Unavailable { node: 2 }).contains("node 2"));
        assert_eq!(
            describe(&Response::NotLeaderR { leader: 1, term: 3 }),
            "NOT LEADER (ask node 1, term 3)"
        );
        assert_eq!(
            describe(&Response::StatusR {
                node: 1,
                term: 4,
                leader: 1,
                arrivals: 7,
                replicas: vec![],
                store: swat_daemon::WireStoreHealth::Degraded { parked: 2 },
            }),
            "node=1 term=4 leader=1 arrivals=7 store=degraded(2 parked) replicas=[]"
        );
    }
}
