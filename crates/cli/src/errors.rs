//! One typed printer for file-system failures.
//!
//! Every CLI operation that touches a path — reading a CSV, writing a
//! bench artifact, recovering a store directory, writing a port file —
//! routes its error through [`PathError`], so the user always sees
//! *which* path failed and *what* the tool was doing to it, in one
//! consistent shape:
//!
//! ```text
//! error: writing results/BENCH_daemon.json: permission denied
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// A file-system failure tied to the offending path.
#[derive(Debug)]
pub struct PathError {
    op: &'static str,
    path: PathBuf,
    source: String,
}

impl PathError {
    /// A failure while performing `op` on `path`.
    pub fn new(op: &'static str, path: impl AsRef<Path>, source: impl fmt::Display) -> Self {
        PathError {
            op,
            path: path.as_ref().to_path_buf(),
            source: source.to_string(),
        }
    }

    /// A read failure.
    pub fn reading(path: impl AsRef<Path>, source: impl fmt::Display) -> Self {
        Self::new("reading", path, source)
    }

    /// A write failure.
    pub fn writing(path: impl AsRef<Path>, source: impl fmt::Display) -> Self {
        Self::new("writing", path, source)
    }

    /// A directory-creation failure.
    pub fn creating(path: impl AsRef<Path>, source: impl fmt::Display) -> Self {
        Self::new("creating", path, source)
    }

    /// A store-recovery failure.
    pub fn recovering(path: impl AsRef<Path>, source: impl fmt::Display) -> Self {
        Self::new("recovering", path, source)
    }

    /// The offending path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for PathError {}

impl From<PathError> for String {
    fn from(e: PathError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_names_the_operation_and_path() {
        let e = PathError::writing("results/out.json", "permission denied");
        assert_eq!(e.to_string(), "writing results/out.json: permission denied");
        assert_eq!(e.path(), Path::new("results/out.json"));
        let as_string: String = PathError::reading("data.csv", "no such file").into();
        assert_eq!(as_string, "reading data.csv: no such file");
    }
}
