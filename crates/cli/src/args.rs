//! Minimal flag parsing (no external dependencies).
//!
//! Grammar: `swat <command> [--flag value]... [--switch]...`. Flags may
//! appear in any order; unknown flags are errors; every flag has a typed
//! accessor with a default.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand plus its flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    command: String,
    flags: BTreeMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value and is not a known switch.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `swat help`)"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::UnexpectedPositional(arg) => {
                write!(
                    f,
                    "unexpected argument {arg:?} (flags look like --name value)"
                )
            }
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Switch flags (no value).
const SWITCHES: &[&str] = &[
    "render", "stdin", "help", "quick", "heal", "status", "shutdown", "standbys",
];

impl Args {
    /// Parse an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// See [`ArgError`].
    pub fn parse<I, S>(args: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = args.into_iter().map(Into::into).peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut switches = Vec::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(arg));
            };
            if SWITCHES.contains(&name) {
                switches.push(name.to_owned());
                continue;
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked");
                    flags.entry(name.to_owned()).or_default().push(v);
                }
                _ => return Err(ArgError::MissingValue(name.to_owned())),
            }
        }
        Ok(Args {
            command,
            flags,
            switches,
        })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Whether a switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Last value of a repeatable flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.flags.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Typed accessor with default.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] if the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: name.to_owned(),
                value: raw.to_owned(),
                expected,
            }),
        }
    }
}

/// Split a `a:b:c` style flag value into parts.
pub fn split_spec(raw: &str) -> Vec<&str> {
    raw.split(':').collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_switches() {
        let a = Args::parse([
            "summarize",
            "--window",
            "64",
            "--point",
            "0",
            "--point",
            "5",
            "--render",
        ])
        .unwrap();
        assert_eq!(a.command(), "summarize");
        assert_eq!(a.get("window"), Some("64"));
        assert_eq!(a.get_all("point"), &["0".to_owned(), "5".to_owned()]);
        assert!(a.switch("render"));
        assert!(!a.switch("stdin"));
    }

    #[test]
    fn typed_accessors() {
        let a = Args::parse(["x", "--n", "12"]).unwrap();
        assert_eq!(a.get_parsed("n", 0usize, "int").unwrap(), 12);
        assert_eq!(a.get_parsed("missing", 7usize, "int").unwrap(), 7);
        let a = Args::parse(["x", "--n", "nope"]).unwrap();
        assert!(matches!(
            a.get_parsed("n", 0usize, "an integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            Args::parse(Vec::<String>::new()),
            Err(ArgError::MissingCommand)
        );
        assert_eq!(
            Args::parse(["--window", "x"]),
            Err(ArgError::MissingCommand)
        );
        assert_eq!(
            Args::parse(["cmd", "--flag"]),
            Err(ArgError::MissingValue("flag".into()))
        );
        assert_eq!(
            Args::parse(["cmd", "stray"]),
            Err(ArgError::UnexpectedPositional("stray".into()))
        );
        // A flag followed by another flag has no value.
        assert_eq!(
            Args::parse(["cmd", "--a", "--b", "1"]),
            Err(ArgError::MissingValue("a".into()))
        );
    }

    #[test]
    fn negative_numbers_are_values() {
        // "-5" does not start with "--", so it is a value.
        let a = Args::parse(["cmd", "--center", "-5"]).unwrap();
        assert_eq!(a.get("center"), Some("-5"));
    }

    #[test]
    fn split_spec_works() {
        assert_eq!(split_spec("exp:32:10"), vec!["exp", "32", "10"]);
        assert_eq!(split_spec("plain"), vec!["plain"]);
    }

    #[test]
    fn errors_display() {
        for e in [
            ArgError::MissingCommand,
            ArgError::MissingValue("x".into()),
            ArgError::UnexpectedPositional("y".into()),
            ArgError::BadValue {
                flag: "f".into(),
                value: "v".into(),
                expected: "int",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
