//! The CLI commands: `summarize`, `simulate`, `generate`, `ingest-bench`,
//! `query-bench`, `chaos`, `recover`, `recovery-bench`, `store-bench`,
//! `repair-bench`, `scale-bench`, `daemon-bench`, `failover-bench`.

use std::io::Read;

use crate::args::{split_spec, Args};
use crate::errors::PathError;
use swat_data::Dataset;
use swat_net::Topology;
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::SchemeKind;
use swat_tree::{InnerProductQuery, RangeQuery, SwatConfig, SwatTree};

/// Print top-level usage.
pub fn print_help() {
    println!(
        "swat — hierarchical stream summarization (Bulut & Singh, ICDE 2003)

USAGE
  swat summarize    [input] [summary options] [queries...]
  swat simulate     [workload options]
  swat generate     --dataset weather|synthetic --count N [--seed S]
  swat ingest-bench [grid options] [--out PATH] [--quick]
  swat query-bench  [grid options] [--out PATH] [--quick]
  swat chaos        [sweep options] [--out PATH] [--quick]
  swat recover      --dir PATH
  swat client       --addr HOST:PORT [requests...]
  swat recovery-bench [options] [--out PATH] [--quick]
  swat store-bench  [options] [--out PATH] [--quick]
  swat repair-bench [options] [--out PATH] [--quick]
  swat scale-bench  [sweep options] [--out PATH] [--quick]
  swat daemon-bench [options] [--out PATH] [--quick]
  swat failover-bench [options] [--out PATH] [--quick]
  swat help

SUMMARIZE — build a SWAT over a stream and answer queries
  input:     --file PATH | --stdin | --dataset weather|synthetic --count N [--seed S]
  summary:   --window N (power of two, default 256)   --coeffs K (default 1)
  queries:   --point IDX                    (repeatable)
             --inner exp:M[:DELTA] | lin:M[:DELTA]    (repeatable)
             --range CENTER:RADIUS[:FROM:TO]          (repeatable)
             --aggregate FROM:TO                      (repeatable)
             --render            print the tree's node layout

SIMULATE — compare replication schemes on one workload
  --scheme asr|dc|aps|all (default all)   --topology single|chain|star|binary
  --clients N | --depth D                 --window N (default 32)
  --td TICKS --tq TICKS --delta D         --horizon T --warmup T --seed S

GENERATE — emit a dataset as CSV on stdout
  --dataset weather|synthetic --count N [--seed S]

INGEST-BENCH — measure push vs frozen-reference vs blocked batch vs sharded
  grid:      --windows N,N,..   --coeffs K,K,..   --values N
             --streams N,N,..   --threads T,T,..  --chunks C,C,.. (0 = default)
             --seed S
  output:    --out PATH (default results/BENCH_ingest.json)
  --quick    shrunk grid for smoke runs
  the JSON summary's batch_ge_reference records whether the blocked
  path beat the frozen scalar reference at every grid point

QUERY-BENCH — measure query serving: reference vs engine vs kernel
  grid:      --windows N,N,..   --coeffs K,K,..   --points N
             --inners N         --ranges N        --streams N
             --threads T,T,..   --seed S
  output:    --out PATH (default results/BENCH_query.json)
  --quick    shrunk grid for smoke runs
  errors if any fast path disagrees with the reference answers

CHAOS — sweep SWAT-ASR under deterministic fault injection
  sweep:     --drops P,P,..     per-edge drop probabilities
             --delays D,D,..    max per-edge delays in ticks (uniform 0..=D)
             --depth D          complete binary client tree depth
             --window N --horizon T --warmup T --delta D --seed S
             --heal             run every cell with self-healing on
  output:    --out PATH (default results/BENCH_chaos.json)
  --quick    shrunk grid for smoke runs (no crash variant)

RECOVER — recover a crashed durable store directory
  --dir PATH   the store directory (checkpoints + write-ahead logs);
               prints what was recovered and re-anchors the store

CLIENT — send requests to a running swatd node or cluster
  --addr HOST:PORT      a node; repeat for the whole cluster — the
                        client then follows NotLeaderR redirects and
                        retries refused/timed-out sockets with backoff
  --ingest V,V,..       apply one global row          (repeatable)
  --point STREAM:IDX    point query                   (repeatable)
  --range STREAM:CENTER:RADIUS:NEWEST:OLDEST          (repeatable)
  --top-k K             exact distributed top-k
  --status              health snapshot   --shutdown  graceful drain
  --req-id N            first write id (default 0)
  --timeout-ms MS       connect/read deadline (default 2000)
  --retries N           retry rounds over the peer list (default 4)
  --retry-ms MS         backoff base between rounds (default 50)

RECOVERY-BENCH — measure crash recovery and the durable-restart win
  store:     --window N --coeffs K --streams N --rows N
             --checkpoint-every N
  faults:    --trials N --max-faults N   seeded corruption trials
  output:    --out PATH (default results/BENCH_recovery.json) --seed S
  --quick    shrunk run for smoke tests

STORE-BENCH — non-blocking flush latency and disk-fault survival
  store:     --window N --coeffs K --streams N --rows N
             --freeze-rows N       rows per frozen generation
  grid:      --grid-rows N         rows per injected-fault cell
             --grid-points N       crash points sampled per fault kind
  output:    --out PATH (default results/BENCH_store.json) --seed S
  --quick    shrunk run for smoke tests
  errors unless push_row never blocks on background flushing (zero
  voluntary-wait stalls ≥ 1 ms, p99 under 1 ms; involuntary scheduler
  preemption is classified and reported separately), and unless the
  ENOSPC/EIO/torn-write grid recovers every cell with zero acked-row
  loss, zero digest mismatches, and zero panics

REPAIR-BENCH — self-healing vs static tree under interior crashes
  sweep:     --crash-fracs F,F,..  outage lengths as fractions of the
                                   measured span (default 0.34,0.67,1.0)
             --window N --horizon T --warmup T --delta D --seed S
  healing:   --hb-period TICKS     heartbeat period (default 5)
             --miss-threshold N    misses before repair (default 3)
  output:    --out PATH (default results/BENCH_repair.json)
  --quick    shrunk grid for smoke runs
  errors unless every cell's healed run answers strictly more queries
  than its static run, at zero correctness violations

SCALE-BENCH — sharded many-stream ingest and distributed top-k merge
  sweep:     --streams N,N,..   stream counts (default 1000,10000,100000)
             --shards N         hash shards (default 16)
             --threads T,T,..   worker threads (default 1,4,8)
             --window N --coeffs K --rows N --top-k K --seed S
             --verify-limit N   oracle-check cases up to N streams
  output:    --out PATH (default results/BENCH_scale.json)
  --quick    shrunk sweep for smoke runs, oracle-verified throughout
  errors if any oracle-checked case disagrees with the unsharded set

DAEMON-BENCH — real-TCP cluster latency/throughput, clean vs killed
  cluster:   --streams N --shards N (>= 2) --window N --coeffs K
  workload:  --rows N --points N --topks N --seed S
  output:    --out PATH (default results/BENCH_daemon.json)
  --quick    shrunk run for smoke tests
  kills one replica mid-run; errors on any wrong answer (explicit
  degradation — failed_shards, Unavailable, incomplete — is expected)

FAILOVER-BENCH — kill the LEADER of a full failover cluster mid-run
  cluster:   --streams N --shards N (>= 2) --window N --coeffs K
  workload:  --rows-before N --rows-after N --seed S
  timing:    --election-timeout-ms MS (default 250 quick / 300 full)
             --deadline-ms MS   recovery deadline before the run fails
  output:    --out PATH (default results/BENCH_failover.json)
  --quick    shrunk run for smoke tests
  measures election latency, the unavailability window, and the
  answered fraction before/during/after; errors unless the cluster
  re-elects, re-acks, and answers with zero wrong answers"
    );
}

fn load_values(a: &Args) -> Result<Vec<f64>, String> {
    if let Some(path) = a.get("file") {
        return swat_data::csv::load_values(path).map_err(|e| PathError::reading(path, e).into());
    }
    if a.switch("stdin") {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading stdin: {e}"))?;
        return swat_data::csv::parse_values(&text).map_err(|e| e.to_string());
    }
    if let Some(name) = a.get("dataset") {
        let dataset = parse_dataset(name)?;
        let count = a
            .get_parsed("count", 1024usize, "a positive integer")
            .map_err(|e| e.to_string())?;
        let seed = a
            .get_parsed("seed", 42u64, "an integer")
            .map_err(|e| e.to_string())?;
        return Ok(dataset.series(seed, count));
    }
    Err("no input: use --file, --stdin, or --dataset (see `swat help`)".into())
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    match name {
        "weather" | "real" => Ok(Dataset::Weather),
        "synthetic" | "uniform" => Ok(Dataset::Synthetic),
        other => Err(format!("unknown dataset {other:?} (weather|synthetic)")),
    }
}

/// `swat summarize`.
pub fn summarize(a: &Args) -> Result<(), String> {
    let values = load_values(a)?;
    let window = a
        .get_parsed("window", 256usize, "a power of two")
        .map_err(|e| e.to_string())?;
    let coeffs = a
        .get_parsed("coeffs", 1usize, "a positive integer")
        .map_err(|e| e.to_string())?;
    let config = SwatConfig::with_coefficients(window, coeffs).map_err(|e| e.to_string())?;
    let mut tree = SwatTree::new(config);
    // Fallible batched ingestion: malformed input (e.g. a NaN that survived
    // parsing) is a user-facing error, not a panic.
    tree.try_push_batch(&values).map_err(|e| e.to_string())?;
    println!(
        "ingested {} values; window {}, {} coefficients/node; {} summaries, {} bytes",
        values.len(),
        window,
        coeffs,
        tree.summary_count(),
        tree.space_bytes()
    );
    if !tree.is_warm() {
        println!("note: tree not fully warm (need ~2N arrivals); old indices may be uncovered");
    }
    if a.switch("render") {
        print!("{}", tree.render());
    }
    for raw in a.get_all("point") {
        let idx: usize = raw
            .parse()
            .map_err(|_| format!("--point {raw:?}: expected an index"))?;
        let p = tree.point(idx).map_err(|e| e.to_string())?;
        println!(
            "point[{idx}] = {:.4} (±{:.4}, level {})",
            p.value, p.error_bound, p.level
        );
    }
    for raw in a.get_all("inner") {
        let q = parse_inner(raw)?;
        let ans = tree.inner_product(&q).map_err(|e| e.to_string())?;
        println!(
            "inner {raw} = {:.4} (error bound {:.4}, {} nodes, precision {})",
            ans.value,
            ans.error_bound,
            ans.nodes_used,
            if ans.meets_precision {
                "met"
            } else {
                "NOT met"
            }
        );
    }
    for raw in a.get_all("range") {
        let q = parse_range(raw, window)?;
        let matches = tree.range_query(&q).map_err(|e| e.to_string())?;
        println!(
            "range {raw}: {} matches{}",
            matches.len(),
            if matches.is_empty() {
                String::new()
            } else {
                format!(
                    " (first at index {}, value {:.4})",
                    matches[0].index, matches[0].value
                )
            }
        );
    }
    for raw in a.get_all("aggregate") {
        let parts = split_spec(raw);
        let [from, to] = parts.as_slice() else {
            return Err(format!("--aggregate {raw:?}: expected FROM:TO"));
        };
        let from: usize = from.parse().map_err(|_| format!("bad FROM in {raw:?}"))?;
        let to: usize = to.parse().map_err(|_| format!("bad TO in {raw:?}"))?;
        let agg = tree.aggregate(from, to).map_err(|e| e.to_string())?;
        println!(
            "aggregate [{from}..{to}]: sum {:.4} (±{:.4}), mean {:.4}, bounds {}",
            agg.sum, agg.sum_error_bound, agg.mean, agg.bounds
        );
    }
    Ok(())
}

fn parse_inner(raw: &str) -> Result<InnerProductQuery, String> {
    let parts = split_spec(raw);
    let (shape, rest) = parts
        .split_first()
        .ok_or_else(|| format!("--inner {raw:?}: expected exp:M or lin:M"))?;
    let m: usize = rest
        .first()
        .ok_or_else(|| format!("--inner {raw:?}: missing length M"))?
        .parse()
        .map_err(|_| format!("--inner {raw:?}: bad length"))?;
    if m == 0 {
        return Err(format!("--inner {raw:?}: length must be positive"));
    }
    let delta: f64 = match rest.get(1) {
        Some(d) => d
            .parse()
            .map_err(|_| format!("--inner {raw:?}: bad delta"))?,
        None => f64::INFINITY,
    };
    match *shape {
        "exp" | "exponential" => Ok(InnerProductQuery::exponential(m, delta)),
        "lin" | "linear" => Ok(InnerProductQuery::linear(m, delta)),
        other => Err(format!("--inner {raw:?}: unknown shape {other:?}")),
    }
}

fn parse_range(raw: &str, window: usize) -> Result<RangeQuery, String> {
    let parts = split_spec(raw);
    match parts.as_slice() {
        [center, radius] | [center, radius, ..] => {
            let center: f64 = center
                .parse()
                .map_err(|_| format!("bad CENTER in {raw:?}"))?;
            let radius: f64 = radius
                .parse()
                .map_err(|_| format!("bad RADIUS in {raw:?}"))?;
            if radius < 0.0 {
                return Err(format!("--range {raw:?}: radius must be >= 0"));
            }
            let from: usize = match parts.get(2) {
                Some(s) => s.parse().map_err(|_| format!("bad FROM in {raw:?}"))?,
                None => 0,
            };
            let to: usize = match parts.get(3) {
                Some(s) => s.parse().map_err(|_| format!("bad TO in {raw:?}"))?,
                None => window - 1,
            };
            if from > to {
                return Err(format!("--range {raw:?}: FROM must be <= TO"));
            }
            Ok(RangeQuery::new(center, radius, from, to))
        }
        _ => Err(format!("--range {raw:?}: expected CENTER:RADIUS[:FROM:TO]")),
    }
}

/// `swat simulate`.
pub fn simulate(a: &Args) -> Result<(), String> {
    let window = a
        .get_parsed("window", 32usize, "a power of two")
        .map_err(|e| e.to_string())?;
    let cfg = WorkloadConfig {
        window,
        t_data: a
            .get_parsed("td", 2u64, "ticks")
            .map_err(|e| e.to_string())?,
        t_query: a
            .get_parsed("tq", 1u64, "ticks")
            .map_err(|e| e.to_string())?,
        delta: a
            .get_parsed("delta", 20.0f64, "a number")
            .map_err(|e| e.to_string())?,
        horizon: a
            .get_parsed("horizon", 5000u64, "ticks")
            .map_err(|e| e.to_string())?,
        warmup: a
            .get_parsed("warmup", 1000u64, "ticks")
            .map_err(|e| e.to_string())?,
        seed: a
            .get_parsed("seed", 42u64, "an integer")
            .map_err(|e| e.to_string())?,
        ..WorkloadConfig::default()
    };
    cfg.validate().map_err(|e| e.to_string())?;
    let topo = parse_topology(a)?;
    let dataset = parse_dataset(a.get("dataset").unwrap_or("weather"))?;
    let data = dataset.series(cfg.seed, (cfg.horizon / cfg.t_data + 2) as usize);
    let schemes: Vec<SchemeKind> = match a.get("scheme").unwrap_or("all") {
        "asr" | "swat" | "swat-asr" => vec![SchemeKind::SwatAsr],
        "dc" | "divergence" => vec![SchemeKind::DivergenceCaching],
        "aps" | "precision" => vec![SchemeKind::AdaptivePrecision],
        "all" => SchemeKind::ALL.to_vec(),
        other => return Err(format!("unknown scheme {other:?} (asr|dc|aps|all)")),
    };
    println!(
        "topology: source + {} clients; N={}, T_d={}, T_q={}, delta={}, horizon={}, warmup={}",
        topo.client_count(),
        cfg.window,
        cfg.t_data,
        cfg.t_query,
        cfg.delta,
        cfg.horizon,
        cfg.warmup
    );
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>15}",
        "scheme", "messages", "weighted", "hit rate", "approximations"
    );
    for kind in schemes {
        let out = run(kind, &topo, &data, &cfg);
        let hits = out.metrics.counter("local_hits") as f64;
        let queries = out.metrics.counter("queries").max(1) as f64;
        println!(
            "{:<10} {:>10} {:>10.1} {:>8.1}% {:>15}",
            out.scheme,
            out.ledger.total(),
            out.ledger.weighted_total(),
            100.0 * hits / queries,
            out.approximations
        );
    }
    Ok(())
}

fn parse_topology(a: &Args) -> Result<Topology, String> {
    let clients = a
        .get_parsed("clients", 1usize, "a count")
        .map_err(|e| e.to_string())?;
    let depth = a
        .get_parsed("depth", 2usize, "a depth")
        .map_err(|e| e.to_string())?;
    match a.get("topology").unwrap_or("single") {
        "single" => Ok(Topology::single_client()),
        "chain" => {
            if clients == 0 {
                return Err("--clients must be positive".into());
            }
            Ok(Topology::chain(clients))
        }
        "star" => {
            if clients == 0 {
                return Err("--clients must be positive".into());
            }
            Ok(Topology::star(clients))
        }
        "binary" => {
            if depth == 0 {
                return Err("--depth must be positive".into());
            }
            Ok(Topology::complete_binary(depth))
        }
        other => Err(format!(
            "unknown topology {other:?} (single|chain|star|binary)"
        )),
    }
}

/// `swat ingest-bench`: the perf-regression harness, outside criterion.
pub fn ingest_bench(a: &Args) -> Result<(), String> {
    use swat_bench::ingest::{run, IngestConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        IngestConfig::quick(seed)
    } else {
        IngestConfig::full(seed)
    };
    if let Some(raw) = a.get("windows") {
        cfg.windows = parse_usize_list("windows", raw)?;
    }
    if let Some(raw) = a.get("coeffs") {
        cfg.coefficients = parse_usize_list("coeffs", raw)?;
    }
    if let Some(raw) = a.get("threads") {
        cfg.threads = parse_usize_list("threads", raw)?;
    }
    if let Some(raw) = a.get("streams") {
        cfg.streams = parse_usize_list("streams", raw)?;
    }
    if let Some(raw) = a.get("chunks") {
        cfg.chunks = parse_usize_list("chunks", raw)?;
    }
    cfg.values = a
        .get_parsed("values", cfg.values, "a count")
        .map_err(|e| e.to_string())?;
    for &s in &cfg.streams {
        if s == 0 {
            return Err("--streams entries must be positive".into());
        }
        if cfg.values < s {
            return Err("--values must be at least every --streams entry".into());
        }
    }
    for (&w, &k) in cfg
        .windows
        .iter()
        .flat_map(|w| cfg.coefficients.iter().map(move |k| (w, k)))
    {
        SwatConfig::with_coefficients(w, k).map_err(|e| e.to_string())?;
    }
    for &t in &cfg.threads {
        if t == 0 {
            return Err("--threads entries must be positive".into());
        }
    }
    let report = run(&cfg);
    report.print();
    let out = a.get("out").unwrap_or("results/BENCH_ingest.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat query-bench`: query-serving throughput — reference vs the
/// zero-allocation engine vs the wavelet-domain kernel, plus parallel
/// multi-stream fan-out — writing the `BENCH_query.json` artifact.
pub fn query_bench(a: &Args) -> Result<(), String> {
    use swat_bench::query::{run, QueryConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        QueryConfig::quick(seed)
    } else {
        QueryConfig::full(seed)
    };
    if let Some(raw) = a.get("windows") {
        cfg.windows = parse_usize_list("windows", raw)?;
    }
    if let Some(raw) = a.get("coeffs") {
        cfg.coefficients = parse_usize_list("coeffs", raw)?;
    }
    if let Some(raw) = a.get("threads") {
        cfg.threads = parse_usize_list("threads", raw)?;
    }
    cfg.points = a
        .get_parsed("points", cfg.points, "a count")
        .map_err(|e| e.to_string())?;
    cfg.inners = a
        .get_parsed("inners", cfg.inners, "a count")
        .map_err(|e| e.to_string())?;
    cfg.ranges = a
        .get_parsed("ranges", cfg.ranges, "a count")
        .map_err(|e| e.to_string())?;
    cfg.streams = a
        .get_parsed("streams", cfg.streams, "a count")
        .map_err(|e| e.to_string())?;
    if cfg.streams == 0 {
        return Err("--streams must be positive".into());
    }
    for (&w, &k) in cfg
        .windows
        .iter()
        .flat_map(|w| cfg.coefficients.iter().map(move |k| (w, k)))
    {
        SwatConfig::with_coefficients(w, k).map_err(|e| e.to_string())?;
        if w < 4 {
            return Err("--windows entries must be at least 4".into());
        }
    }
    for &t in &cfg.threads {
        if t == 0 {
            return Err("--threads entries must be positive".into());
        }
    }
    let report = run(&cfg);
    report.print();
    if !report.agreement {
        return Err(
            "fast query paths disagreed with the reference implementation — this is a bug".into(),
        );
    }
    let out = a.get("out").unwrap_or("results/BENCH_query.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat chaos`: sweep SWAT-ASR under fault injection and write the
/// `BENCH_chaos.json` artifact.
pub fn chaos(a: &Args) -> Result<(), String> {
    use swat_bench::chaos::{run, ChaosConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        ChaosConfig::quick(seed)
    } else {
        ChaosConfig::full(seed)
    };
    if let Some(raw) = a.get("drops") {
        cfg.drops = parse_f64_list("drops", raw)?;
        if cfg.drops.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("--drops entries must be probabilities in [0, 1]".into());
        }
    }
    if let Some(raw) = a.get("delays") {
        cfg.delays = parse_u64_list("delays", raw)?;
    }
    cfg.depth = a
        .get_parsed("depth", cfg.depth, "a tree depth")
        .map_err(|e| e.to_string())?;
    if cfg.depth == 0 {
        return Err("--depth must be positive".into());
    }
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.horizon = a
        .get_parsed("horizon", cfg.horizon, "ticks")
        .map_err(|e| e.to_string())?;
    cfg.warmup = a
        .get_parsed("warmup", cfg.warmup, "ticks")
        .map_err(|e| e.to_string())?;
    cfg.delta = a
        .get_parsed("delta", cfg.delta, "a number")
        .map_err(|e| e.to_string())?;
    cfg.heal = a.switch("heal");
    // Fail early with the workload's own diagnostics (window shape,
    // warmup vs horizon, delta) before paying for the sweep.
    WorkloadConfig {
        window: cfg.window,
        delta: cfg.delta,
        horizon: cfg.horizon,
        warmup: cfg.warmup,
        seed,
        ..WorkloadConfig::default()
    }
    .validate()
    .map_err(|e| e.to_string())?;
    let report = run(&cfg);
    report.print();
    let violations: usize = report.cases.iter().map(|c| c.violations).sum();
    if violations > 0 {
        return Err(format!(
            "{violations} correctness violations under faults — this is a bug"
        ));
    }
    let out = a.get("out").unwrap_or("results/BENCH_chaos.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat recover`.
pub fn recover(a: &Args) -> Result<(), String> {
    use swat_store::RecoveryManager;
    let dir = a
        .get("dir")
        .ok_or("--dir is required (the store directory)")?;
    let (store, report) =
        RecoveryManager::recover(dir).map_err(|e| PathError::recovering(dir, e))?;
    match report.checkpoint_t {
        Some(t) => println!("base checkpoint:      t = {t}"),
        None => println!("base checkpoint:      none (bootstrapped from wal-0 header)"),
    }
    if report.checkpoints_skipped > 0 {
        println!(
            "checkpoints skipped:  {} (failed verification)",
            report.checkpoints_skipped
        );
    }
    println!("wal rows replayed:    {}", report.wal_rows_replayed);
    if report.wal_bytes_dropped > 0 {
        println!(
            "wal bytes dropped:    {} (torn or corrupt)",
            report.wal_bytes_dropped
        );
    }
    println!("recovered arrivals:   {}", report.recovered_arrivals);
    println!(
        "streams × window:     {} × {}",
        store.set().streams(),
        store.set().config().window()
    );
    println!("answers digest:       {:016x}", store.answers_digest());
    println!("store re-anchored: fresh checkpoint + WAL written in {dir}");
    Ok(())
}

/// `swat recovery-bench`.
pub fn recovery_bench(a: &Args) -> Result<(), String> {
    use swat_bench::recovery::{run, RecoveryConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        RecoveryConfig::quick(seed)
    } else {
        RecoveryConfig::full(seed)
    };
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.coeffs = a
        .get_parsed("coeffs", cfg.coeffs, "a positive integer")
        .map_err(|e| e.to_string())?;
    cfg.streams = a
        .get_parsed("streams", cfg.streams, "a positive integer")
        .map_err(|e| e.to_string())?;
    cfg.rows = a
        .get_parsed("rows", cfg.rows, "a row count")
        .map_err(|e| e.to_string())?;
    cfg.checkpoint_every = a
        .get_parsed("checkpoint-every", cfg.checkpoint_every, "a row cadence")
        .map_err(|e| e.to_string())?;
    cfg.fault_trials = a
        .get_parsed("trials", cfg.fault_trials, "a trial count")
        .map_err(|e| e.to_string())?;
    cfg.max_faults = a
        .get_parsed("max-faults", cfg.max_faults, "a fault count")
        .map_err(|e| e.to_string())?;
    if cfg.streams == 0 || cfg.rows == 0 || cfg.checkpoint_every == 0 {
        return Err("--streams, --rows, and --checkpoint-every must be positive".into());
    }
    if !cfg.window.is_power_of_two() || cfg.window < 2 {
        return Err("--window must be a power of two ≥ 2".into());
    }
    if cfg.coeffs == 0 {
        return Err("--coeffs must be positive".into());
    }
    let report = run(&cfg);
    report.print();
    if !report.clean.digest_match {
        return Err("clean-crash recovery digest mismatch — this is a bug".into());
    }
    if report.chaos.violations > 0 {
        return Err(format!(
            "{} soundness violations in the durability comparison — this is a bug",
            report.chaos.violations
        ));
    }
    let out = a.get("out").unwrap_or("results/BENCH_recovery.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat store-bench`.
pub fn store_bench(a: &Args) -> Result<(), String> {
    use swat_bench::store::{run, StoreBenchConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        StoreBenchConfig::quick(seed)
    } else {
        StoreBenchConfig::full(seed)
    };
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.coeffs = a
        .get_parsed("coeffs", cfg.coeffs, "a positive integer")
        .map_err(|e| e.to_string())?;
    cfg.streams = a
        .get_parsed("streams", cfg.streams, "a positive integer")
        .map_err(|e| e.to_string())?;
    cfg.rows = a
        .get_parsed("rows", cfg.rows, "a row count")
        .map_err(|e| e.to_string())?;
    cfg.freeze_rows = a
        .get_parsed("freeze-rows", cfg.freeze_rows, "a row cadence")
        .map_err(|e| e.to_string())?;
    cfg.grid_rows = a
        .get_parsed("grid-rows", cfg.grid_rows, "a row count")
        .map_err(|e| e.to_string())?;
    cfg.grid_points = a
        .get_parsed("grid-points", cfg.grid_points, "a sample count")
        .map_err(|e| e.to_string())?;
    if cfg.streams == 0 || cfg.rows == 0 || cfg.freeze_rows == 0 || cfg.grid_rows == 0 {
        return Err("--streams, --rows, --freeze-rows, and --grid-rows must be positive".into());
    }
    if !cfg.window.is_power_of_two() || cfg.window < 2 {
        return Err("--window must be a power of two ≥ 2".into());
    }
    if cfg.coeffs == 0 {
        return Err("--coeffs must be positive".into());
    }
    let report = run(&cfg);
    report.print();
    if !report.latency.flush_nonblocking {
        return Err(format!(
            "push_row blocked on background flushing ({} blocking stalls, p99 {} µs, \
             max {} µs) — this is a bug",
            report.latency.blocking_stalls, report.latency.p99_micros, report.latency.max_micros
        ));
    }
    if report.grid.acked_rows_lost > 0 {
        return Err(format!(
            "{} acknowledged rows lost across the injected-fault grid — this is a bug",
            report.grid.acked_rows_lost
        ));
    }
    if report.grid.digest_mismatches > 0 || report.grid.panics > 0 {
        return Err(format!(
            "{} digest mismatches and {} panics in the injected-fault grid — this is a bug",
            report.grid.digest_mismatches, report.grid.panics
        ));
    }
    let out = a.get("out").unwrap_or("results/BENCH_store.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat repair-bench`: compare the self-healing driver against a static
/// tree under interior crashes and write the `BENCH_repair.json`
/// artifact. Fails unless healing strictly dominates in every cell.
pub fn repair_bench(a: &Args) -> Result<(), String> {
    use swat_bench::repair::{run, RepairConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        RepairConfig::quick(seed)
    } else {
        RepairConfig::full(seed)
    };
    if let Some(raw) = a.get("crash-fracs") {
        cfg.crash_fracs = parse_f64_list("crash-fracs", raw)?;
        if cfg.crash_fracs.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return Err("--crash-fracs entries must be fractions in [0, 1]".into());
        }
    }
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.horizon = a
        .get_parsed("horizon", cfg.horizon, "ticks")
        .map_err(|e| e.to_string())?;
    cfg.warmup = a
        .get_parsed("warmup", cfg.warmup, "ticks")
        .map_err(|e| e.to_string())?;
    cfg.delta = a
        .get_parsed("delta", cfg.delta, "a number")
        .map_err(|e| e.to_string())?;
    cfg.heal.period = a
        .get_parsed("hb-period", cfg.heal.period, "ticks")
        .map_err(|e| e.to_string())?;
    cfg.heal.miss_threshold = a
        .get_parsed("miss-threshold", cfg.heal.miss_threshold, "a miss count")
        .map_err(|e| e.to_string())?;
    if cfg.heal.period == 0 || cfg.heal.miss_threshold == 0 {
        return Err("--hb-period and --miss-threshold must be positive".into());
    }
    WorkloadConfig {
        window: cfg.window,
        delta: cfg.delta,
        horizon: cfg.horizon,
        warmup: cfg.warmup,
        seed,
        ..WorkloadConfig::default()
    }
    .validate()
    .map_err(|e| e.to_string())?;
    let report = run(&cfg);
    report.print();
    let violations: usize = report.cases.iter().map(|c| c.violations).sum();
    if violations > 0 {
        return Err(format!(
            "{violations} correctness violations under healing — this is a bug"
        ));
    }
    if !report.all_dominate() {
        return Err("a healed cell failed to beat its static run — this is a bug".into());
    }
    let out = a.get("out").unwrap_or("results/BENCH_repair.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat scale-bench`: sweep the sharded stream tier over stream
/// counts, measure ingest throughput, bytes/stream, and distributed
/// top-k merge latency, and write the `BENCH_scale.json` artifact.
/// Fails if any oracle-checked case disagrees with the unsharded set.
pub fn scale_bench(a: &Args) -> Result<(), String> {
    use swat_bench::scale::{run, ScaleConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        ScaleConfig::quick(seed)
    } else {
        ScaleConfig::full(seed)
    };
    if let Some(raw) = a.get("streams") {
        cfg.stream_counts = parse_usize_list("streams", raw)?;
    }
    if let Some(raw) = a.get("threads") {
        cfg.threads = parse_usize_list("threads", raw)?;
        if cfg.threads.contains(&0) {
            return Err("--threads entries must be positive".into());
        }
    }
    cfg.shards = a
        .get_parsed("shards", cfg.shards, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.k = a
        .get_parsed("coeffs", cfg.k, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.rows = a
        .get_parsed("rows", cfg.rows, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.top_k = a
        .get_parsed("top-k", cfg.top_k, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.verify_limit = a
        .get_parsed("verify-limit", cfg.verify_limit, "a stream count")
        .map_err(|e| e.to_string())?;
    if cfg.shards == 0 || cfg.rows == 0 || cfg.top_k == 0 {
        return Err("--shards, --rows, and --top-k must be positive".into());
    }
    if SwatConfig::with_coefficients(cfg.window, cfg.k).is_err() {
        return Err(format!(
            "--window {} / --coeffs {}: window must be a power of two >= 2 \
             and coeffs in 1..=window",
            cfg.window, cfg.k
        ));
    }
    let report = run(&cfg);
    report.print();
    if !report.all_agree() {
        return Err("a sharded case disagreed with the unsharded oracle — this is a bug".into());
    }
    let out = a.get("out").unwrap_or("results/BENCH_scale.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat daemon-bench`: spawn a real-TCP localhost cluster, measure
/// request latency/throughput clean vs one-replica-killed, and write
/// the `BENCH_daemon.json` artifact. Fails on any wrong answer — the
/// cluster may degrade explicitly, never silently.
pub fn daemon_bench(a: &Args) -> Result<(), String> {
    use swat_bench::daemon::{run, DaemonBenchConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        DaemonBenchConfig::quick(seed)
    } else {
        DaemonBenchConfig::full(seed)
    };
    cfg.streams = a
        .get_parsed("streams", cfg.streams, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.shards = a
        .get_parsed("shards", cfg.shards, "a count of at least 2")
        .map_err(|e| e.to_string())?;
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.coeffs = a
        .get_parsed("coeffs", cfg.coeffs, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.rows = a
        .get_parsed("rows", cfg.rows, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.points = a
        .get_parsed("points", cfg.points, "a count")
        .map_err(|e| e.to_string())?;
    cfg.topks = a
        .get_parsed("topks", cfg.topks, "a count")
        .map_err(|e| e.to_string())?;
    if cfg.shards < 2 {
        return Err("--shards must be at least 2 (the bench kills one replica)".into());
    }
    if cfg.streams == 0 || cfg.rows == 0 {
        return Err("--streams and --rows must be positive".into());
    }
    SwatConfig::with_coefficients(cfg.window, cfg.coeffs).map_err(|e| e.to_string())?;
    let report = run(&cfg);
    report.print();
    if !report.zero_wrong_answers() {
        return Err("the daemon answered a query wrongly under faults — this is a bug".into());
    }
    let out = a.get("out").unwrap_or("results/BENCH_daemon.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

/// `swat failover-bench`: spawn a full failover cluster over real TCP,
/// kill the leader mid-run, and measure election latency, the
/// unavailability window, and the answered fraction — writing the
/// `BENCH_failover.json` artifact. Fails unless the cluster recovers
/// inside the deadline with zero wrong answers.
pub fn failover_bench(a: &Args) -> Result<(), String> {
    use swat_bench::failover::{run, FailoverBenchConfig};
    let seed = a
        .get_parsed("seed", swat_bench::DEFAULT_SEED, "an integer")
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.switch("quick") {
        FailoverBenchConfig::quick(seed)
    } else {
        FailoverBenchConfig::full(seed)
    };
    cfg.streams = a
        .get_parsed("streams", cfg.streams, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.shards = a
        .get_parsed("shards", cfg.shards, "a count of at least 2")
        .map_err(|e| e.to_string())?;
    cfg.window = a
        .get_parsed("window", cfg.window, "a power of two")
        .map_err(|e| e.to_string())?;
    cfg.coeffs = a
        .get_parsed("coeffs", cfg.coeffs, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.rows_before = a
        .get_parsed("rows-before", cfg.rows_before, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.rows_after = a
        .get_parsed("rows-after", cfg.rows_after, "a positive count")
        .map_err(|e| e.to_string())?;
    cfg.election_timeout_ms = a
        .get_parsed(
            "election-timeout-ms",
            cfg.election_timeout_ms,
            "milliseconds",
        )
        .map_err(|e| e.to_string())?;
    cfg.deadline_ms = a
        .get_parsed("deadline-ms", cfg.deadline_ms, "milliseconds")
        .map_err(|e| e.to_string())?;
    if cfg.shards < 2 {
        return Err("--shards must be at least 2 (the bench kills the leader)".into());
    }
    if cfg.streams == 0 || cfg.rows_before == 0 || cfg.rows_after == 0 {
        return Err("--streams, --rows-before, and --rows-after must be positive".into());
    }
    if cfg.election_timeout_ms == 0 || cfg.deadline_ms == 0 {
        return Err("--election-timeout-ms and --deadline-ms must be positive".into());
    }
    SwatConfig::with_coefficients(cfg.window, cfg.coeffs).map_err(|e| e.to_string())?;
    let report = run(&cfg);
    report.print();
    if !report.recovered {
        return Err("the cluster did not recover inside the deadline — this is a bug".into());
    }
    if !report.zero_wrong_answers() {
        return Err("the cluster answered wrongly around a failover — this is a bug".into());
    }
    let out = a.get("out").unwrap_or("results/BENCH_failover.json");
    report
        .write_json(std::path::Path::new(out))
        .map_err(|e| PathError::writing(out, e))?;
    println!("\nwrote {out}");
    Ok(())
}

fn parse_f64_list(flag: &str, raw: &str) -> Result<Vec<f64>, String> {
    let list: Result<Vec<f64>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    match list {
        Ok(v) if !v.is_empty() && v.iter().all(|x| x.is_finite()) => Ok(v),
        _ => Err(format!(
            "--{flag} {raw:?}: expected comma-separated numbers"
        )),
    }
}

fn parse_u64_list(flag: &str, raw: &str) -> Result<Vec<u64>, String> {
    let list: Result<Vec<u64>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    match list {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("--{flag} {raw:?}: expected comma-separated counts")),
    }
}

fn parse_usize_list(flag: &str, raw: &str) -> Result<Vec<usize>, String> {
    let list: Result<Vec<usize>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    match list {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("--{flag} {raw:?}: expected comma-separated counts")),
    }
}

/// `swat generate`.
pub fn generate(a: &Args) -> Result<(), String> {
    let dataset = parse_dataset(
        a.get("dataset")
            .ok_or("--dataset is required (weather|synthetic)")?,
    )?;
    let count = a
        .get_parsed("count", 1024usize, "a count")
        .map_err(|e| e.to_string())?;
    let seed = a
        .get_parsed("seed", 42u64, "an integer")
        .map_err(|e| e.to_string())?;
    let mut out = String::with_capacity(count * 8);
    for v in dataset.series(seed, count) {
        out.push_str(&format!("{v}\n"));
    }
    print!("{out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_spec_parsing() {
        let q = parse_inner("exp:8:5").unwrap();
        assert_eq!(q.len(), 8);
        assert_eq!(q.delta(), 5.0);
        let q = parse_inner("lin:4").unwrap();
        assert_eq!(q.weights()[0], 1.0);
        assert!(q.delta().is_infinite());
        assert!(parse_inner("exp").is_err());
        assert!(parse_inner("exp:0").is_err());
        assert!(parse_inner("wavy:4").is_err());
        assert!(parse_inner("exp:x").is_err());
    }

    #[test]
    fn range_spec_parsing() {
        let q = parse_range("80:2.5", 128).unwrap();
        assert_eq!(
            (q.center, q.radius, q.newest, q.oldest),
            (80.0, 2.5, 0, 127)
        );
        let q = parse_range("10:1:5:20", 128).unwrap();
        assert_eq!((q.newest, q.oldest), (5, 20));
        assert!(parse_range("80", 128).is_err());
        assert!(parse_range("80:-1", 128).is_err());
        assert!(parse_range("80:1:9:3", 128).is_err());
    }

    #[test]
    fn dataset_parsing() {
        assert_eq!(parse_dataset("weather").unwrap(), Dataset::Weather);
        assert_eq!(parse_dataset("synthetic").unwrap(), Dataset::Synthetic);
        assert!(parse_dataset("csv").is_err());
    }

    #[test]
    fn topology_parsing() {
        let a = Args::parse(["simulate", "--topology", "binary", "--depth", "3"]).unwrap();
        assert_eq!(parse_topology(&a).unwrap().client_count(), 14);
        let a = Args::parse(["simulate", "--topology", "chain", "--clients", "4"]).unwrap();
        assert_eq!(parse_topology(&a).unwrap().client_count(), 4);
        let a = Args::parse(["simulate"]).unwrap();
        assert_eq!(parse_topology(&a).unwrap().client_count(), 1);
        let a = Args::parse(["simulate", "--topology", "mesh"]).unwrap();
        assert!(parse_topology(&a).is_err());
    }

    #[test]
    fn summarize_end_to_end_with_dataset() {
        let a = Args::parse([
            "summarize",
            "--dataset",
            "weather",
            "--count",
            "600",
            "--window",
            "128",
            "--point",
            "0",
            "--inner",
            "exp:16:50",
            "--aggregate",
            "0:31",
        ])
        .unwrap();
        summarize(&a).unwrap();
    }

    #[test]
    fn simulate_end_to_end() {
        let a = Args::parse([
            "simulate",
            "--horizon",
            "600",
            "--warmup",
            "200",
            "--window",
            "16",
        ])
        .unwrap();
        simulate(&a).unwrap();
        let a = Args::parse(["simulate", "--horizon", "100", "--warmup", "200"]).unwrap();
        assert!(simulate(&a).is_err(), "warmup beyond horizon must fail");
    }

    #[test]
    fn summarize_requires_input() {
        let a = Args::parse(["summarize"]).unwrap();
        assert!(summarize(&a).is_err());
    }
}
