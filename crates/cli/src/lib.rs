//! Library backing the `swat` command-line tool (see `main.rs`).
//!
//! Split from the binary so the parser and command plumbing are unit- and
//! fuzz-testable like any other crate.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
pub mod daemon_cmd;
pub mod errors;
