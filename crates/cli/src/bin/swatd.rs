//! `swatd` — one SWAT cluster node as a long-running daemon.
//!
//! ```text
//! swatd --role replica --shard 0 --shards 3 --streams 10 --window 32 \
//!       --listen 127.0.0.1:0 --port-file /tmp/r0.port --dir /var/lib/swat/r0
//! swatd --role leader --shards 3 --streams 10 --window 32 \
//!       --replica HOST:PORT --replica HOST:PORT --replica HOST:PORT
//! ```
//!
//! The process serves until SIGTERM/SIGINT or a wire-level `Shutdown`
//! request, then drains in-flight requests, checkpoints durable state,
//! and exits 0. Flags are shared with `swat`'s parser; errors go to
//! stderr with the offending path or flag named.

use std::process::ExitCode;
use swat_cli::{args, daemon_cmd};

fn print_help() {
    println!(
        "swatd — one SWAT cluster node (leader or shard replica)

USAGE
  swatd [--role leader|replica] [options]

COMMON
  --listen HOST:PORT    bind address (default 127.0.0.1:0 = free port)
  --port-file PATH      write the bound address here (for scripts)
  --shards N            total shards in the cluster (default 1)
  --streams N           total global streams (default = shards)
  --window N            tree window, power of two (default 32)
  --coeffs K            coefficients per node (default 4)
  --io-timeout-ms MS    per-socket-op deadline (default 500)

REPLICA (--role replica, the default)
  --shard I             which shard this node owns (default 0)
  --dir PATH            durable store directory (created if missing;
                        omit for in-memory)

LEADER (--role leader)
  --replica HOST:PORT   one per shard, shard order (repeatable)
  --hb-period-ms MS     heartbeat period (default 100)
  --miss-threshold N    misses before a replica is Dead (default 3)
  --max-inflight N      per-replica in-flight budget before load
                        shedding (default 64)

Stop with SIGTERM (drains and checkpoints) or `swat client --addr ...
--shutdown`."
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "help") {
        print_help();
        return ExitCode::SUCCESS;
    }
    // Reuse the `swat` flag grammar: swatd has exactly one implicit
    // subcommand.
    let parsed = match args::Args::parse(std::iter::once("serve".to_owned()).chain(argv)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match daemon_cmd::serve(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
