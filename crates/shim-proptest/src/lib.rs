//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of proptest's API that the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*`, range/vec/tuple/select/oneof
//! strategies, `prop_map`/`prop_flat_map`, [`any`], and simple
//! regex-shaped string strategies (char classes and `{m,n}` repetition).
//!
//! Semantics differ from upstream in two deliberate ways: case generation
//! is deterministic (seeded from the test name, so failures reproduce
//! without a regressions file), and there is no shrinking — a failing case
//! panics with the standard assertion message. Each test runs
//! `ProptestConfig::cases` generated inputs (default 256).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator (xoshiro256++ seeded from the test
/// name via FNV-1a, so every test draws an independent, stable stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test inputs. Unlike upstream there is no shrinking, so a
/// strategy is just "a way to draw a value from the RNG".
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build the strategy that produces
    /// the final value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "arbitrary" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy for the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` — the shim's `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One arm of a [`prop_oneof!`] union.
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A uniform choice between strategies with a common value type (built by
/// [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms (at least one).
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// String strategies from a simple regex subset: literal characters,
/// `.` (printable ASCII), `[...]` classes with ranges, and the
/// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the latter two capped at 8
/// repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    const PRINTABLE: (u8, u8) = (0x20, 0x7e);

    enum Atom {
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn emit(&self, rng: &mut TestRng, out: &mut String) {
            match self {
                Atom::Literal(c) => out.push(*c),
                Atom::AnyChar => {
                    let span = (PRINTABLE.1 - PRINTABLE.0 + 1) as u64;
                    out.push((PRINTABLE.0 + rng.below(span) as u8) as char);
                }
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(a, b) in ranges {
                        let span = (b as u64) - (a as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(a as u32 + pick as u32).expect("ascii"));
                            return;
                        }
                        pick -= span;
                    }
                    unreachable!("pick < total");
                }
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::AnyChar,
                '[' => {
                    let mut raw = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        raw.push(d);
                    }
                    Atom::Class(class_ranges(&raw))
                }
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                c => Atom::Literal(c),
            };
            let (lo, hi) = quantifier(&mut chars);
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                atom.emit(rng, &mut out);
            }
        }
        out
    }

    /// Turn the raw contents of a `[...]` class into ranges: "x-y" triples
    /// become ranges (a `-` first or last is a literal).
    fn class_ranges(chars: &[char]) -> Vec<(char, char)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() {
                let (a, b) = (chars[i], chars[i + 2]);
                assert!(a <= b, "inverted class range {a}-{b}");
                out.push((a, b));
                i += 3;
            } else {
                out.push((chars[i], chars[i]));
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    fn quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("bad {m,n} quantifier");
                        let hi = hi.trim().parse().expect("bad {m,n} quantifier");
                        assert!(lo <= hi, "inverted quantifier {{{spec}}}");
                        (lo, hi)
                    }
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

/// Namespaced strategy constructors mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Admissible length specifications for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec length range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for vectors of `element` values (see [`vec`]).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list (see [`select`]).
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Uniform choice from `options` (at least one).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (no shrinking here, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut arms: Vec<$crate::UnionArm<_>> = Vec::new();
        $({
            let s = $strategy;
            arms.push(Box::new(move |rng: &mut $crate::TestRng| {
                $crate::Strategy::generate(&s, rng)
            }));
        })+
        $crate::Union::new(arms)
    }};
}

/// Define property tests: each `fn` runs its body for `cases` generated
/// inputs (default 256, or `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=6), x in -1.0..1.0f64) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..4, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn flat_map_dependent((n, v) in (1u32..4).prop_flat_map(|n| {
            let len = 1usize << n;
            prop::collection::vec(0.0..1.0f64, len..=len).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.len(), 1usize << n);
        }

        #[test]
        fn oneof_and_select(
            s in prop_oneof![Just("fixed".to_owned()), "[a-c]{2}"],
            pick in prop::sample::select(vec![8usize, 16, 32]),
        ) {
            prop_assert!(s == "fixed" || (s.len() == 2 && s.chars().all(|c| ('a'..='c').contains(&c))));
            prop_assert!([8usize, 16, 32].contains(&pick));
        }

        #[test]
        fn string_patterns(s in "--[a-z0-9:.-]{0,12}") {
            prop_assert!(s.starts_with("--"));
            prop_assert!(s.len() <= 14);
            for c in s[2..].chars() {
                prop_assert!(c.is_ascii_lowercase() || c.is_ascii_digit() || ":.-".contains(c));
            }
        }

        #[test]
        fn any_values(x in any::<u64>(), y in any::<u8>()) {
            let _ = (x, y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::TestRng::for_test("stable");
            crate::Strategy::generate(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn dot_pattern_is_printable() {
        let mut rng = crate::TestRng::for_test("dot");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&".{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
