//! The leader core: sans-io request planning and result merging.
//!
//! The leader owns no stream data it is not also hosting as a regular
//! holding. It routes: ingest rows split into per-shard sub-rows (one
//! fenced leg to the shard's primary, one `Replicate` leg to its
//! standby), point/range queries route to the owning shard's primary,
//! and the distributed top-k runs the exact two-round Jestes–Yi–Li
//! merge — the *same* decision sequence `ShardedStreamSet::global_top_k`
//! executes in-process, so a daemon cluster and the in-process oracle
//! produce bit-identical answers.
//!
//! Everything leaving the leader is stamped with its term (and, for
//! shard traffic, the shard's configuration epoch) via
//! [`Request::Fenced`]. A holder that has moved on answers
//! `StaleTermR` / `StaleEpochR`; the merge functions treat both as
//! failures *and* record what they imply (step down; refresh the
//! holder's epoch; drop the faulty standby), so the repair loop can act
//! without the merge path doing I/O.
//!
//! Like [`crate::replica::ReplicaNode`], everything here is pure state
//! and planning: the TCP server and the deterministic simulator both
//! drive the [`LeaderCore`] and only differ in how planned peer
//! requests cross to the holders. A peer exchange either yields the
//! holder's [`Response`] or `None` (unreachable after bounded retries /
//! shed / dead) — the merge functions turn `None` into *explicit*
//! degradation: `failed_shards`, `Unavailable`, or `complete: false`,
//! never a silent gap.

use std::collections::BTreeSet;

use swat_tree::{shard_members, shard_of};
use swat_wavelet::TopKSummary;

use crate::failover::Assignment;
use crate::proto::{ErrorCode, Request, Response, NO_SHARD};
use crate::registry::ReplicaRegistry;

/// The deterministic global↔shard routing table every node agrees on.
#[derive(Debug, Clone)]
pub struct ShardMap {
    streams: usize,
    shards: usize,
    members: Vec<Vec<usize>>,
}

impl ShardMap {
    /// The routing table for `streams` streams over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(streams: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let members = (0..shards)
            .map(|s| shard_members(streams, shards, s))
            .collect();
        ShardMap {
            streams,
            shards,
            members,
        }
    }

    /// Total global streams.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning global stream `g`, if in range.
    pub fn owner_of(&self, g: u64) -> Option<usize> {
        (g < self.streams as u64).then(|| shard_of(g, self.shards))
    }

    /// Global stream ids shard `s` owns, ascending.
    pub fn members(&self, s: usize) -> &[usize] {
        &self.members[s]
    }

    /// Shard `s`'s sub-row of a full global row.
    pub fn subrow(&self, row: &[f64], s: usize) -> Vec<f64> {
        self.members[s].iter().map(|&g| row[g]).collect()
    }
}

/// What the leader wants delivered to one node.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerCall {
    /// Destination node id (possibly the leader itself, served locally).
    pub node: u64,
    /// The shard the call concerns (for merge bookkeeping).
    pub shard: usize,
    /// Whether this is the standby (`Replicate`) leg of an ingest.
    pub standby_leg: bool,
    /// The request to deliver.
    pub request: Request,
}

/// Either a locally-served response or a fan-out plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Answer immediately, no peer traffic.
    Done(Response),
    /// Deliver these calls (in order), then merge with the matching
    /// `finish_*`.
    Fan(Vec<PeerCall>),
}

/// The leader's routing/merge state machine.
#[derive(Debug)]
pub struct LeaderCore {
    node: u64,
    term: u64,
    map: ShardMap,
    registry: ReplicaRegistry,
    assignment: Assignment,
    /// Rows fully applied on every required holder (no failed shards,
    /// first try or absorbed retry).
    complete_rows: u64,
    /// Shards whose primary answered shard traffic with a typed error
    /// or a stale epoch — the repair loop re-issues their configuration
    /// (or promotes around them) on its next pass.
    primary_faults: BTreeSet<usize>,
    /// Shards whose standby answered `Replicate` with a typed error —
    /// the repair loop drops them from the assignment.
    standby_faults: BTreeSet<usize>,
}

impl LeaderCore {
    /// The bootstrap leader (node 0, term 0) over `shards` replicas.
    /// `standbys` picks the ring layout (each replica primary of one
    /// shard, standby of another) over the PR 7 solo layout.
    pub fn bootstrap(
        streams: usize,
        shards: usize,
        miss_threshold: u32,
        standbys: bool,
    ) -> LeaderCore {
        LeaderCore {
            node: 0,
            term: 0,
            map: ShardMap::new(streams, shards),
            registry: ReplicaRegistry::new(shards, miss_threshold),
            assignment: if standbys {
                Assignment::ring(shards)
            } else {
                Assignment::solo(shards)
            },
            complete_rows: 0,
            primary_faults: BTreeSet::new(),
            standby_faults: BTreeSet::new(),
        }
    }

    /// A core rebuilt on promotion: `node` leads `term` with an
    /// assignment reconstructed from the peers' sync reports.
    pub fn rebuilt(
        node: u64,
        term: u64,
        streams: usize,
        shards: usize,
        registry: ReplicaRegistry,
        assignment: Assignment,
        complete_rows: u64,
    ) -> LeaderCore {
        LeaderCore {
            node,
            term,
            map: ShardMap::new(streams, shards),
            registry,
            assignment,
            complete_rows,
            primary_faults: BTreeSet::new(),
            standby_faults: BTreeSet::new(),
        }
    }

    /// The leading node's id.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The term this core leads.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The routing table.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The health registry (heartbeats feed this).
    pub fn registry(&self) -> &ReplicaRegistry {
        &self.registry
    }

    /// Mutable registry access for the heartbeat driver.
    pub fn registry_mut(&mut self) -> &mut ReplicaRegistry {
        &mut self.registry
    }

    /// The authoritative shard assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Mutable assignment access for the repair loop.
    pub fn assignment_mut(&mut self) -> &mut Assignment {
        &mut self.assignment
    }

    /// Drain the shards flagged for primary reconfiguration.
    pub fn take_primary_faults(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.primary_faults)
            .into_iter()
            .collect()
    }

    /// Drain the shards whose standby must be dropped.
    pub fn take_standby_faults(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.standby_faults)
            .into_iter()
            .collect()
    }

    /// Wrap `inner` in this term's fence for `shard`.
    fn fence(&self, shard: usize, inner: Request) -> Request {
        Request::Fenced {
            term: self.term,
            leader: self.node,
            shard: shard as u32,
            epoch: self.assignment.slot(shard).epoch,
            inner: Box::new(inner),
        }
    }

    /// The term-fenced heartbeat ping sent to every peer each period.
    pub fn heartbeat(&self, nonce: u64) -> Request {
        Request::Fenced {
            term: self.term,
            leader: self.node,
            shard: NO_SHARD,
            epoch: 0,
            inner: Box::new(Request::Ping { nonce }),
        }
    }

    /// Plan one client request. Fan plans must be completed with the
    /// matching `finish_*` call.
    pub fn plan(&self, req: &Request) -> Plan {
        match req {
            Request::Hello { .. } => Plan::Done(Response::HelloOk { node: self.node }),
            Request::Ping { nonce } => Plan::Done(Response::Pong { nonce: *nonce }),
            Request::Status => Plan::Done(Response::StatusR {
                node: self.node,
                term: self.term,
                leader: self.node,
                arrivals: self.complete_rows,
                replicas: self.registry.statuses(),
                // The leader core holds no shard backing of its own; the
                // holdings' store health is reported by `ClusterNode`.
                store: crate::proto::WireStoreHealth::Healthy,
            }),
            Request::Ingest { req_id, row } => self.plan_ingest(*req_id, row),
            Request::Point { stream, .. } | Request::Range { stream, .. } => {
                match self.map.owner_of(*stream) {
                    Some(shard) => match self.assignment.slot(shard).primary {
                        Some(node) => Plan::Fan(vec![PeerCall {
                            node,
                            shard,
                            standby_leg: false,
                            request: self.fence(shard, req.clone()),
                        }]),
                        // No serving holder at all (primary died with no
                        // standby): explicit unavailability, named after
                        // the shard's home node.
                        None => Plan::Done(Response::Unavailable {
                            node: shard as u64 + 1,
                        }),
                    },
                    None => Plan::Done(Response::ErrorR {
                        code: ErrorCode::BadRequest,
                    }),
                }
            }
            Request::TopK { k } => {
                if *k == 0 {
                    return Plan::Done(Response::ErrorR {
                        code: ErrorCode::BadRequest,
                    });
                }
                Plan::Fan(
                    self.assignment
                        .iter()
                        .filter_map(|(shard, slot)| {
                            slot.primary.map(|node| PeerCall {
                                node,
                                shard,
                                standby_leg: false,
                                request: self.fence(shard, Request::LocalTopK { k: *k }),
                            })
                        })
                        .collect(),
                )
            }
            // Replica-internal and cluster-internal requests addressed
            // to the leader's client surface.
            Request::LocalTopK { .. }
            | Request::TopKScan { .. }
            | Request::Fenced { .. }
            | Request::NewTerm { .. }
            | Request::Replicate { .. }
            | Request::FetchShard { .. }
            | Request::InstallShard { .. }
            | Request::Promote { .. } => Plan::Done(Response::ErrorR {
                code: ErrorCode::WrongRole,
            }),
            // The server handles Shutdown itself (it must drain).
            Request::Shutdown => Plan::Done(Response::ShutdownOk { drained: 0 }),
        }
    }

    fn plan_ingest(&self, req_id: u64, row: &[f64]) -> Plan {
        if row.len() != self.map.streams() || row.iter().any(|v| !v.is_finite()) {
            return Plan::Done(Response::ErrorR {
                code: ErrorCode::BadRequest,
            });
        }
        let mut calls = Vec::new();
        for (shard, slot) in self.assignment.iter() {
            let sub = self.map.subrow(row, shard);
            if let Some(node) = slot.primary {
                calls.push(PeerCall {
                    node,
                    shard,
                    standby_leg: false,
                    request: self.fence(
                        shard,
                        Request::Ingest {
                            req_id,
                            row: sub.clone(),
                        },
                    ),
                });
            }
            if let Some(node) = slot.standby {
                calls.push(PeerCall {
                    node,
                    shard,
                    standby_leg: true,
                    request: Request::Replicate {
                        term: self.term,
                        shard: shard as u32,
                        epoch: slot.epoch,
                        req_id,
                        row: sub,
                    },
                });
            }
        }
        Plan::Fan(calls)
    }

    /// Merge per-leg ingest outcomes. `results[i]` answers `calls[i]`;
    /// `None` means the holder was unreachable after the bounded retries
    /// (or shed the request). A shard is acked only when its primary
    /// applied the sub-row **and** every standby the assignment
    /// currently requires acked its replicated copy — that invariant is
    /// what makes promoting the standby lossless for acked rows. Every
    /// other shard lands in `failed_shards`, the explicit no-silent-loss
    /// contract.
    pub fn finish_ingest(
        &mut self,
        req_id: u64,
        calls: &[PeerCall],
        results: &[Option<Response>],
    ) -> Response {
        debug_assert_eq!(calls.len(), results.len());
        let mut failed_shards = Vec::new();
        let mut all_duplicate = true;
        for shard in 0..self.map.shards() {
            let mut primary_ok = false;
            let mut primary_dup = false;
            let standby_required = self.assignment.slot(shard).standby.is_some();
            let mut standby_ok = !standby_required;
            for (call, result) in calls.iter().zip(results) {
                if call.shard != shard {
                    continue;
                }
                match (call.standby_leg, result) {
                    (false, Some(Response::IngestOk { duplicate, .. })) => {
                        primary_ok = true;
                        primary_dup = *duplicate;
                    }
                    (false, Some(other)) => self.note_primary_fault(shard, other),
                    (false, None) => {}
                    (true, Some(Response::IngestOk { .. })) => standby_ok = true,
                    (true, Some(_)) => {
                        // A live standby refused its copy: drop it from
                        // the assignment (repair loop) rather than wait
                        // out heartbeat misses that will never come.
                        // This row still does NOT ack — as long as the
                        // assignment lists that standby, an election
                        // could promote it, and promoting a copy that
                        // is missing an acked row would be wrongness.
                        self.standby_faults.insert(shard);
                    }
                    (true, None) => {}
                }
            }
            if primary_ok && standby_ok {
                all_duplicate &= primary_dup;
            } else {
                failed_shards.push(shard as u32);
                all_duplicate = false;
            }
        }
        if self.map.shards() == 0 {
            all_duplicate = false;
        }
        if failed_shards.is_empty() && !all_duplicate {
            self.complete_rows += 1;
        }
        Response::IngestOk {
            req_id,
            duplicate: all_duplicate,
            failed_shards,
        }
    }

    /// Record what a primary's non-`IngestOk` answer implies for repair.
    fn note_primary_fault(&mut self, shard: usize, resp: &Response) {
        if let Response::StaleEpochR { epoch, .. } = resp {
            // The holder is *ahead* (a prior leader bumped it): adopt.
            // Behind: it missed a Promote — re-issue it.
            self.assignment.adopt_epoch(shard, *epoch);
        }
        self.primary_faults.insert(shard);
    }

    /// Merge a single-shard point/range result: the holder's response
    /// passes through; unreachable (or mid-reconfiguration) becomes a
    /// typed `Unavailable` naming the node.
    pub fn finish_routed(&mut self, call: &PeerCall, result: Option<Response>) -> Response {
        match result {
            Some(Response::StaleTermR { .. }) => {
                self.primary_faults.insert(call.shard);
                Response::Unavailable { node: call.node }
            }
            Some(Response::StaleEpochR { epoch, .. }) => {
                self.assignment.adopt_epoch(call.shard, epoch);
                self.primary_faults.insert(call.shard);
                Response::Unavailable { node: call.node }
            }
            Some(r) => r,
            None => Response::Unavailable { node: call.node },
        }
    }

    /// Round one → round two: given every planned round-one call and its
    /// result (`None` for unreachable shards), compute the pruning
    /// threshold τ and the refinement calls, exactly as
    /// `ShardedStreamSet::global_top_k` would. Returns `(tau,
    /// refine_calls)`; shards not refined are either pruned (their
    /// round-one entries suffice) or missing.
    pub fn plan_topk_round2(
        &self,
        _k: u32,
        calls: &[PeerCall],
        locals: &[Option<Response>],
    ) -> (f64, Vec<PeerCall>) {
        let k = match calls.first().map(|c| &c.request) {
            Some(Request::Fenced { inner, .. }) => match **inner {
                Request::LocalTopK { k } => k,
                _ => 0,
            },
            _ => 0,
        };
        let mut merged = TopKSummary::new(k as usize);
        for local in locals.iter().flatten() {
            if let Response::LocalTopKR { entries, .. } = local {
                for &e in entries {
                    merged.offer(e);
                }
            }
        }
        let tau = merged.threshold();
        let mut refines = Vec::new();
        for (call, local) in calls.iter().zip(locals) {
            if let Some(Response::LocalTopKR {
                threshold,
                truncated,
                ..
            }) = local
            {
                if *truncated && *threshold >= tau {
                    refines.push(PeerCall {
                        node: call.node,
                        shard: call.shard,
                        standby_leg: false,
                        request: self.fence(call.shard, Request::TopKScan { tau }),
                    });
                }
            }
        }
        (tau, refines)
    }

    /// Final top-k merge: refined shards contribute their scan results,
    /// pruned shards their round-one entries, in shard order — the
    /// offer sequence `ShardedStreamSet::global_top_k` uses, so the
    /// result is bit-identical to the in-process oracle whenever every
    /// shard answered. Any shard that is unreachable, mid-
    /// reconfiguration, or missing a primary (either round) flips
    /// `complete` to `false`; the entries remain exact over the shards
    /// that answered.
    pub fn finish_topk(
        &self,
        k: u32,
        calls: &[PeerCall],
        locals: &[Option<Response>],
        scans: &[(usize, Option<Response>)],
    ) -> Response {
        let mut complete = true;
        let mut result = TopKSummary::new(k as usize);
        for shard in 0..self.map.shards() {
            let local = calls
                .iter()
                .zip(locals)
                .find(|(c, _)| c.shard == shard)
                .and_then(|(_, l)| l.as_ref());
            match local {
                Some(Response::LocalTopKR { entries, .. }) => {
                    match scans.iter().find(|(s, _)| *s == shard) {
                        Some((_, Some(Response::ScanR { entries: scanned }))) => {
                            for &e in scanned {
                                result.offer(e);
                            }
                        }
                        Some((_, _)) => {
                            // Refinement was needed but unreachable: its
                            // round-one entries are still valid
                            // candidates, the deeper ones are missing.
                            complete = false;
                            for &e in entries {
                                result.offer(e);
                            }
                        }
                        None => {
                            // Pruned: round-one entries are everything
                            // this shard can contribute.
                            for &e in entries {
                                result.offer(e);
                            }
                        }
                    }
                }
                // Unreachable, typed error, or the shard had no primary
                // to ask (no round-one call at all).
                _ => complete = false,
            }
        }
        Response::TopKR {
            complete,
            entries: result.entries().to_vec(),
        }
    }
}

/// Scan fan-out results for a `StaleTermR`: the newest term observed
/// and its leader, if any peer fenced us out. The driver feeds this to
/// [`crate::node::ClusterNode::observe_stale_term`] to step down.
pub fn stale_term_in(results: &[Option<Response>]) -> Option<(u64, u64)> {
    results
        .iter()
        .flatten()
        .filter_map(|r| match r {
            Response::StaleTermR { term, leader } => Some((*term, *leader)),
            _ => None,
        })
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan(plan: Plan) -> Vec<PeerCall> {
        match plan {
            Plan::Fan(calls) => calls,
            Plan::Done(r) => panic!("expected a fan plan, got {r:?}"),
        }
    }

    fn ingest_ok(req_id: u64, duplicate: bool) -> Option<Response> {
        Some(Response::IngestOk {
            req_id,
            duplicate,
            failed_shards: vec![],
        })
    }

    #[test]
    fn solo_plans_fence_every_leg_with_term_and_epoch() {
        let leader = LeaderCore::bootstrap(8, 2, 3, false);
        let calls = fan(leader.plan(&Request::Ingest {
            req_id: 7,
            row: vec![1.0; 8],
        }));
        assert_eq!(calls.len(), 2, "solo layout: one leg per shard");
        for (shard, call) in calls.iter().enumerate() {
            assert_eq!(call.node, shard as u64 + 1);
            assert!(!call.standby_leg);
            match &call.request {
                Request::Fenced {
                    term,
                    leader: l,
                    shard: s,
                    epoch,
                    inner,
                } => {
                    assert_eq!((*term, *l, *s as usize, *epoch), (0, 0, shard, 0));
                    assert!(matches!(**inner, Request::Ingest { req_id: 7, .. }));
                }
                other => panic!("unfenced leg {other:?}"),
            }
        }
    }

    #[test]
    fn ring_ingest_requires_both_legs_to_ack() {
        let mut leader = LeaderCore::bootstrap(8, 2, 3, true);
        let calls = fan(leader.plan(&Request::Ingest {
            req_id: 3,
            row: vec![1.0; 8],
        }));
        assert_eq!(calls.len(), 4, "two shards × (primary + standby)");
        assert!(calls.iter().any(|c| c.standby_leg
            && matches!(c.request, Request::Replicate { shard: 0, .. })
            && c.node == 2));
        // All four legs ack: the row is acked.
        let results: Vec<Option<Response>> = calls.iter().map(|_| ingest_ok(3, false)).collect();
        assert_eq!(
            leader.finish_ingest(3, &calls, &results),
            Response::IngestOk {
                req_id: 3,
                duplicate: false,
                failed_shards: vec![]
            }
        );
        // Standby leg of shard 0 unreachable: shard 0 must NOT ack —
        // the promoted standby could otherwise miss an acked row.
        let results: Vec<Option<Response>> = calls
            .iter()
            .map(|c| {
                if c.shard == 0 && c.standby_leg {
                    None
                } else {
                    ingest_ok(4, false)
                }
            })
            .collect();
        match leader.finish_ingest(4, &calls, &results) {
            Response::IngestOk { failed_shards, .. } => assert_eq!(failed_shards, vec![0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn faulty_legs_are_flagged_for_repair() {
        let mut leader = LeaderCore::bootstrap(8, 2, 3, true);
        let calls = fan(leader.plan(&Request::Ingest {
            req_id: 9,
            row: vec![2.0; 8],
        }));
        // Shard 1's standby answers a typed error; shard 0's primary
        // reports a *newer* epoch.
        let results: Vec<Option<Response>> = calls
            .iter()
            .map(|c| match (c.shard, c.standby_leg) {
                (1, true) => Some(Response::ErrorR {
                    code: ErrorCode::WrongRole,
                }),
                (0, false) => Some(Response::StaleEpochR { shard: 0, epoch: 5 }),
                _ => ingest_ok(9, false),
            })
            .collect();
        match leader.finish_ingest(9, &calls, &results) {
            Response::IngestOk { failed_shards, .. } => {
                assert_eq!(failed_shards, vec![0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(leader.take_primary_faults(), vec![0]);
        assert_eq!(leader.take_standby_faults(), vec![1]);
        assert_eq!(leader.assignment().slot(0).epoch, 5, "adopted ahead epoch");
        // Draining clears the flags.
        assert!(leader.take_primary_faults().is_empty());
    }

    #[test]
    fn unreachable_shards_degrade_explicitly() {
        let (streams, shards) = (8, 2);
        let mut leader = LeaderCore::bootstrap(streams, shards, 3, false);
        let row = vec![1.0; streams];
        let calls = fan(leader.plan(&Request::Ingest { req_id: 7, row }));
        assert_eq!(calls.len(), shards);
        // Shard 1 unreachable: named in failed_shards, never silent.
        let results = vec![ingest_ok(7, false), None];
        assert_eq!(
            leader.finish_ingest(7, &calls, &results),
            Response::IngestOk {
                req_id: 7,
                duplicate: false,
                failed_shards: vec![1]
            }
        );
        // Point at a stream owned by the unreachable shard.
        let dead_stream = (0..streams)
            .find(|&g| shard_of(g as u64, shards) == 1)
            .unwrap();
        let calls = fan(leader.plan(&Request::Point {
            stream: dead_stream as u64,
            index: 0,
        }));
        assert_eq!(
            leader.finish_routed(&calls[0], None),
            Response::Unavailable { node: 2 }
        );
        // A stale-epoch answer is also unavailability, plus a repair flag.
        assert_eq!(
            leader.finish_routed(
                &calls[0],
                Some(Response::StaleEpochR { shard: 1, epoch: 0 })
            ),
            Response::Unavailable { node: 2 }
        );
        assert_eq!(leader.take_primary_faults(), vec![1]);
        // Top-k with a missing shard: complete = false.
        let calls = fan(leader.plan(&Request::TopK { k: 3 }));
        let locals = vec![
            Some(Response::LocalTopKR {
                threshold: 0.0,
                truncated: false,
                entries: vec![],
            }),
            None,
        ];
        match leader.finish_topk(3, &calls, &locals, &[]) {
            Response::TopKR { complete, .. } => assert!(!complete),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn primaryless_shards_are_planned_around() {
        let mut leader = LeaderCore::bootstrap(8, 2, 3, false);
        // Kill shard 1's primary with no standby: slot goes primary-less.
        assert_eq!(leader.assignment_mut().promote_standby(1), None);
        let calls = fan(leader.plan(&Request::Ingest {
            req_id: 0,
            row: vec![0.0; 8],
        }));
        assert_eq!(calls.len(), 1, "only shard 0 has a holder to call");
        let results = vec![ingest_ok(0, false)];
        match leader.finish_ingest(0, &calls, &results) {
            Response::IngestOk { failed_shards, .. } => assert_eq!(failed_shards, vec![1]),
            other => panic!("unexpected {other:?}"),
        }
        // Queries at the primary-less shard fail fast and typed.
        let dead_stream = (0..8).find(|&g| shard_of(g as u64, 2) == 1).unwrap();
        assert_eq!(
            leader.plan(&Request::Point {
                stream: dead_stream as u64,
                index: 0
            }),
            Plan::Done(Response::Unavailable { node: 2 })
        );
        // Top-k round one simply has no call for the dead shard, and the
        // merge marks the result incomplete.
        let calls = fan(leader.plan(&Request::TopK { k: 2 }));
        assert_eq!(calls.len(), 1);
        let locals = vec![Some(Response::LocalTopKR {
            threshold: 0.0,
            truncated: false,
            entries: vec![],
        })];
        match leader.finish_topk(2, &calls, &locals, &[]) {
            Response::TopKR { complete, .. } => assert!(!complete),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_range_stream_is_a_typed_error() {
        let leader = LeaderCore::bootstrap(4, 2, 3, false);
        assert_eq!(
            leader.plan(&Request::Point {
                stream: 99,
                index: 0
            }),
            Plan::Done(Response::ErrorR {
                code: ErrorCode::BadRequest
            })
        );
        assert_eq!(
            leader.plan(&Request::TopK { k: 0 }),
            Plan::Done(Response::ErrorR {
                code: ErrorCode::BadRequest
            })
        );
    }

    #[test]
    fn stale_term_scan_finds_the_newest_fence() {
        assert_eq!(stale_term_in(&[None, ingest_ok(0, false)]), None);
        let results = vec![
            Some(Response::StaleTermR { term: 5, leader: 1 }),
            None,
            Some(Response::StaleTermR { term: 9, leader: 2 }),
        ];
        assert_eq!(stale_term_in(&results), Some((9, 2)));
    }
}
