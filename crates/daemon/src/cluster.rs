//! The leader core: sans-io request planning and result merging.
//!
//! The leader owns no stream data. It routes: ingest rows split into
//! per-shard sub-rows, point/range queries route to the owning shard,
//! and the distributed top-k runs the exact two-round Jestes–Yi–Li
//! merge — the *same* decision sequence `ShardedStreamSet::global_top_k`
//! executes in-process, so a daemon cluster and the in-process oracle
//! produce bit-identical answers.
//!
//! Like [`crate::replica::ReplicaNode`], everything here is pure state
//! and planning: the TCP server and the deterministic simulator both
//! drive the [`LeaderCore`] and only differ in how planned peer
//! requests cross to the replicas. A peer exchange either yields the
//! replica's [`Response`] or `None` (unreachable after bounded
//! retries / shed / dead) — the merge functions turn `None` into
//! *explicit* degradation: `failed_shards`, `Unavailable`, or
//! `complete: false`, never a silent gap.

use swat_tree::{shard_members, shard_of, SwatConfig};
use swat_wavelet::TopKSummary;

use crate::proto::{ErrorCode, Request, Response};
use crate::registry::ReplicaRegistry;

/// The deterministic global↔shard routing table every node agrees on.
#[derive(Debug, Clone)]
pub struct ShardMap {
    streams: usize,
    shards: usize,
    members: Vec<Vec<usize>>,
}

impl ShardMap {
    /// The routing table for `streams` streams over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(streams: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let members = (0..shards)
            .map(|s| shard_members(streams, shards, s))
            .collect();
        ShardMap {
            streams,
            shards,
            members,
        }
    }

    /// Total global streams.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning global stream `g`, if in range.
    pub fn owner_of(&self, g: u64) -> Option<usize> {
        (g < self.streams as u64).then(|| shard_of(g, self.shards))
    }

    /// Global stream ids shard `s` owns, ascending.
    pub fn members(&self, s: usize) -> &[usize] {
        &self.members[s]
    }

    /// Shard `s`'s sub-row of a full global row.
    pub fn subrow(&self, row: &[f64], s: usize) -> Vec<f64> {
        self.members[s].iter().map(|&g| row[g]).collect()
    }
}

/// What the leader wants sent to one shard's replica.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerCall {
    /// Destination shard (replica node id is `shard + 1`).
    pub shard: usize,
    /// The request to deliver.
    pub request: Request,
}

/// Either a locally-served response or a fan-out plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Answer immediately, no peer traffic.
    Done(Response),
    /// Deliver these calls (in order), then merge with the matching
    /// `finish_*`.
    Fan(Vec<PeerCall>),
}

/// The leader's routing/merge state machine.
#[derive(Debug)]
pub struct LeaderCore {
    node: u64,
    map: ShardMap,
    registry: ReplicaRegistry,
    /// Rows fully applied on every shard (no failed shards, first try
    /// or absorbed retry).
    complete_rows: u64,
}

impl LeaderCore {
    /// A leader (node 0) over `shards` replicas, one shard each.
    pub fn new(_config: SwatConfig, streams: usize, shards: usize, miss_threshold: u32) -> Self {
        LeaderCore {
            node: 0,
            map: ShardMap::new(streams, shards),
            registry: ReplicaRegistry::new(shards, miss_threshold),
            complete_rows: 0,
        }
    }

    /// The routing table.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The health registry (heartbeats feed this).
    pub fn registry(&self) -> &ReplicaRegistry {
        &self.registry
    }

    /// Mutable registry access for the heartbeat driver.
    pub fn registry_mut(&mut self) -> &mut ReplicaRegistry {
        &mut self.registry
    }

    /// Plan one client request. Fan plans must be completed with the
    /// matching `finish_*` call.
    pub fn plan(&self, req: &Request) -> Plan {
        match req {
            Request::Hello { .. } => Plan::Done(Response::HelloOk { node: self.node }),
            Request::Ping { nonce } => Plan::Done(Response::Pong { nonce: *nonce }),
            Request::Status => Plan::Done(Response::StatusR {
                node: self.node,
                arrivals: self.complete_rows,
                replicas: self.registry.statuses(),
            }),
            Request::Ingest { req_id, row } => self.plan_ingest(*req_id, row),
            Request::Point { stream, .. } | Request::Range { stream, .. } => {
                match self.map.owner_of(*stream) {
                    Some(shard) => Plan::Fan(vec![PeerCall {
                        shard,
                        request: req.clone(),
                    }]),
                    None => Plan::Done(Response::ErrorR {
                        code: ErrorCode::BadRequest,
                    }),
                }
            }
            Request::TopK { k } => {
                if *k == 0 {
                    return Plan::Done(Response::ErrorR {
                        code: ErrorCode::BadRequest,
                    });
                }
                Plan::Fan(
                    (0..self.map.shards())
                        .map(|shard| PeerCall {
                            shard,
                            request: Request::LocalTopK { k: *k },
                        })
                        .collect(),
                )
            }
            // Replica-internal requests addressed to the leader.
            Request::LocalTopK { .. } | Request::TopKScan { .. } => Plan::Done(Response::ErrorR {
                code: ErrorCode::WrongRole,
            }),
            // The server handles Shutdown itself (it must drain).
            Request::Shutdown => Plan::Done(Response::ShutdownOk { drained: 0 }),
        }
    }

    fn plan_ingest(&self, req_id: u64, row: &[f64]) -> Plan {
        if row.len() != self.map.streams() || row.iter().any(|v| !v.is_finite()) {
            return Plan::Done(Response::ErrorR {
                code: ErrorCode::BadRequest,
            });
        }
        Plan::Fan(
            (0..self.map.shards())
                .map(|shard| PeerCall {
                    shard,
                    request: Request::Ingest {
                        req_id,
                        row: self.map.subrow(row, shard),
                    },
                })
                .collect(),
        )
    }

    /// Merge per-shard ingest outcomes. `results[i]` answers the `i`-th
    /// planned call; `None` means the replica was unreachable after the
    /// bounded retries (or shed the request) — its shard lands in
    /// `failed_shards`, the explicit no-silent-loss contract.
    pub fn finish_ingest(&mut self, req_id: u64, results: &[Option<Response>]) -> Response {
        let mut failed_shards = Vec::new();
        let mut all_duplicate = !results.is_empty();
        for (shard, r) in results.iter().enumerate() {
            match r {
                Some(Response::IngestOk { duplicate, .. }) => {
                    all_duplicate &= duplicate;
                }
                _ => {
                    failed_shards.push(shard as u32);
                    all_duplicate = false;
                }
            }
        }
        if failed_shards.is_empty() && !all_duplicate {
            self.complete_rows += 1;
        }
        Response::IngestOk {
            req_id,
            duplicate: all_duplicate,
            failed_shards,
        }
    }

    /// Merge a single-shard point/range result: the replica's response
    /// passes through; unreachable becomes a typed `Unavailable` naming
    /// the node.
    pub fn finish_routed(&self, shard: usize, result: Option<Response>) -> Response {
        match result {
            Some(r) => r,
            None => Response::Unavailable {
                node: (shard + 1) as u64,
            },
        }
    }

    /// Round one → round two: given every shard's `LocalTopKR` (or
    /// `None` for unreachable shards), compute the pruning threshold τ
    /// and the refinement calls, exactly as
    /// `ShardedStreamSet::global_top_k` would. Returns `(tau,
    /// refine_calls)`; shards not refined are either pruned (their
    /// round-one entries suffice) or missing.
    pub fn plan_topk_round2(&self, k: u32, locals: &[Option<Response>]) -> (f64, Vec<PeerCall>) {
        let mut merged = TopKSummary::new(k as usize);
        for local in locals.iter().flatten() {
            if let Response::LocalTopKR { entries, .. } = local {
                for &e in entries {
                    merged.offer(e);
                }
            }
        }
        let tau = merged.threshold();
        let mut refines = Vec::new();
        for (shard, local) in locals.iter().enumerate() {
            if let Some(Response::LocalTopKR {
                threshold,
                truncated,
                ..
            }) = local
            {
                if *truncated && *threshold >= tau {
                    refines.push(PeerCall {
                        shard,
                        request: Request::TopKScan { tau },
                    });
                }
            }
        }
        (tau, refines)
    }

    /// Final top-k merge: refined shards contribute their scan results,
    /// pruned shards their round-one entries, in shard order — the
    /// offer sequence `ShardedStreamSet::global_top_k` uses, so the
    /// result is bit-identical to the in-process oracle whenever every
    /// shard answered. Any unreachable shard (either round) flips
    /// `complete` to `false`; the entries remain exact over the shards
    /// that answered.
    pub fn finish_topk(
        &self,
        k: u32,
        locals: &[Option<Response>],
        scans: &[(usize, Option<Response>)],
    ) -> Response {
        let mut complete = true;
        let mut result = TopKSummary::new(k as usize);
        for (shard, local) in locals.iter().enumerate() {
            match local {
                Some(Response::LocalTopKR { entries, .. }) => {
                    match scans.iter().find(|(s, _)| *s == shard) {
                        Some((_, Some(Response::ScanR { entries: scanned }))) => {
                            for &e in scanned {
                                result.offer(e);
                            }
                        }
                        Some((_, _)) => {
                            // Refinement was needed but unreachable: its
                            // round-one entries are still valid
                            // candidates, the deeper ones are missing.
                            complete = false;
                            for &e in entries {
                                result.offer(e);
                            }
                        }
                        None => {
                            // Pruned: round-one entries are everything
                            // this shard can contribute.
                            for &e in entries {
                                result.offer(e);
                            }
                        }
                    }
                }
                _ => complete = false,
            }
        }
        Response::TopKR {
            complete,
            entries: result.entries().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::{ShardedStreamSet, StreamSet};

    use crate::replica::ReplicaNode;

    fn cfg() -> SwatConfig {
        SwatConfig::with_coefficients(16, 4).unwrap()
    }

    /// Drive a full leader+replicas exchange entirely in-process (no
    /// transport at all) and compare against the sharded oracle.
    #[test]
    fn fanned_out_cluster_matches_sharded_oracle() {
        let (streams, shards) = (13, 3);
        let mut leader = LeaderCore::new(cfg(), streams, shards, 3);
        let mut replicas: Vec<ReplicaNode> = (0..shards)
            .map(|s| ReplicaNode::new((s + 1) as u64, cfg(), streams, shards, s))
            .collect();
        let mut oracle = ShardedStreamSet::new(cfg(), streams, shards);
        let mut flat = StreamSet::new(cfg(), streams);

        for r in 0..48u64 {
            let row: Vec<f64> = (0..streams)
                .map(|i| (((r as usize * 5 + i * 11) % 19) as f64) - 9.0)
                .collect();
            let plan = leader.plan(&Request::Ingest {
                req_id: r,
                row: row.clone(),
            });
            let Plan::Fan(calls) = plan else {
                panic!("ingest must fan out")
            };
            let results: Vec<Option<Response>> = calls
                .iter()
                .map(|c| Some(replicas[c.shard].handle(&c.request)))
                .collect();
            let resp = leader.finish_ingest(r, &results);
            assert_eq!(
                resp,
                Response::IngestOk {
                    req_id: r,
                    duplicate: false,
                    failed_shards: vec![]
                }
            );
            oracle.push_row(&row);
            flat.push_row(&row);
        }

        // Point queries through the routed path match the oracle tree.
        for g in 0..streams {
            let plan = leader.plan(&Request::Point {
                stream: g as u64,
                index: 5,
            });
            let Plan::Fan(calls) = plan else {
                panic!("point must route")
            };
            let r = replicas[calls[0].shard].handle(&calls[0].request);
            let want = oracle
                .tree(g)
                .point_with(5, swat_tree::QueryOptions::default())
                .unwrap();
            match r {
                Response::PointR { answer } => {
                    assert_eq!(answer.value.to_bits(), want.value.to_bits(), "stream {g}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        // The two-round distributed top-k is bit-identical to the
        // in-process merge.
        for k in [1u32, 3, 8] {
            let Plan::Fan(calls) = leader.plan(&Request::TopK { k }) else {
                panic!("topk must fan out")
            };
            let locals: Vec<Option<Response>> = calls
                .iter()
                .map(|c| Some(replicas[c.shard].handle(&c.request)))
                .collect();
            let (_tau, refines) = leader.plan_topk_round2(k, &locals);
            let scans: Vec<(usize, Option<Response>)> = refines
                .iter()
                .map(|c| (c.shard, Some(replicas[c.shard].handle(&c.request))))
                .collect();
            let got = leader.finish_topk(k, &locals, &scans);
            let (want, _) = oracle.global_top_k(k as usize, 1);
            assert_eq!(
                got,
                Response::TopKR {
                    complete: true,
                    entries: want.entries().to_vec()
                },
                "k={k}"
            );
        }

        // Replica digests jointly equal the oracle's sharded state.
        for (s, rep) in replicas.iter().enumerate() {
            let members = leader.map().members(s);
            let mut direct = StreamSet::new(cfg(), members.len());
            for r in 0..48usize {
                let row: Vec<f64> = members
                    .iter()
                    .map(|&g| (((r * 5 + g * 11) % 19) as f64) - 9.0)
                    .collect();
                direct.push_row(&row);
            }
            assert_eq!(rep.answers_digest(), direct.answers_digest(), "shard {s}");
        }
        assert_eq!(oracle.answers_digest(), flat.answers_digest());
    }

    #[test]
    fn unreachable_shards_degrade_explicitly() {
        let (streams, shards) = (8, 2);
        let mut leader = LeaderCore::new(cfg(), streams, shards, 3);
        let row = vec![1.0; streams];
        let Plan::Fan(calls) = leader.plan(&Request::Ingest { req_id: 7, row }) else {
            panic!()
        };
        assert_eq!(calls.len(), shards);
        // Shard 1 unreachable: named in failed_shards, never silent.
        let results = vec![
            Some(Response::IngestOk {
                req_id: 7,
                duplicate: false,
                failed_shards: vec![],
            }),
            None,
        ];
        assert_eq!(
            leader.finish_ingest(7, &results),
            Response::IngestOk {
                req_id: 7,
                duplicate: false,
                failed_shards: vec![1]
            }
        );
        // Point at a stream owned by the unreachable shard.
        let dead_stream = (0..streams)
            .find(|&g| shard_of(g as u64, shards) == 1)
            .unwrap();
        let Plan::Fan(calls) = leader.plan(&Request::Point {
            stream: dead_stream as u64,
            index: 0,
        }) else {
            panic!()
        };
        assert_eq!(
            leader.finish_routed(calls[0].shard, None),
            Response::Unavailable { node: 2 }
        );
        // Top-k with a missing shard: complete = false.
        let locals = vec![
            Some(Response::LocalTopKR {
                threshold: 0.0,
                truncated: false,
                entries: vec![],
            }),
            None,
        ];
        match leader.finish_topk(3, &locals, &[]) {
            Response::TopKR { complete, .. } => assert!(!complete),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_range_stream_is_a_typed_error() {
        let leader = LeaderCore::new(cfg(), 4, 2, 3);
        assert_eq!(
            leader.plan(&Request::Point {
                stream: 99,
                index: 0
            }),
            Plan::Done(Response::ErrorR {
                code: ErrorCode::BadRequest
            })
        );
        assert_eq!(
            leader.plan(&Request::TopK { k: 0 }),
            Plan::Done(Response::ErrorR {
                code: ErrorCode::BadRequest
            })
        );
    }
}
