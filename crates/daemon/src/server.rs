//! The threaded TCP daemon: accept loop, per-connection workers, and
//! the monitor thread (heartbeats, failure repair, standby re-seeding,
//! and — in cluster mode — elections).
//!
//! One [`spawn`]ed server is one cluster node wrapping a sans-io
//! [`ClusterNode`]. Every socket operation carries a deadline, every
//! fan-out first reserves per-peer in-flight tokens (shedding with a
//! typed `Overloaded` when a budget is exhausted), and every malformed
//! frame closes that connection with a typed error — never a panic,
//! never a stuck thread.
//!
//! # Legacy vs cluster mode
//!
//! With [`DaemonConfig::peers`] empty the server runs exactly the PR 7
//! deployment: a static term-0 leader over solo shard replicas, no
//! standbys, no elections. With `peers` filled (every node's address,
//! indexed by node id) the failover machinery switches on: heartbeats
//! are term-fenced, a silent leader triggers a staggered election
//! (lowest-id live node wins by construction), dead primaries fail over
//! to their standbys under bumped epochs, and spare nodes are re-seeded
//! as standbys from the live primary.
//!
//! Shutdown comes in two shapes, both needed by the tests:
//!
//! * [`ServerHandle::stop`] — graceful: stop accepting, let every
//!   connection worker finish its in-flight request, drain, checkpoint
//!   durable state, report a [`DrainReport`].
//! * [`ServerHandle::kill`] — abrupt: drop everything on the floor, no
//!   drain, no checkpoint. This is the "node killed mid-run" of the
//!   failover tests; the cluster must degrade explicitly, never
//!   silently.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swat_replication::RetryPolicy;
use swat_tree::SwatConfig;

use crate::client::PeerPool;
use crate::cluster::{stale_term_in, PeerCall, Plan};
use crate::node::ClusterNode;
use crate::proto::{
    check_frame, decode_request, encode_response, ErrorCode, Request, Response, WireHealth,
};
use crate::transport::{TcpTransport, Transport, TransportError};

/// Which role this node boots as.
#[derive(Debug, Clone)]
pub enum Role {
    /// The bootstrap leader (node 0); owns no streams itself.
    Leader {
        /// Replica addresses, shard order (`replicas[s]` owns shard
        /// `s`). Ignored when [`DaemonConfig::peers`] is set — the peer
        /// table covers everyone then.
        replicas: Vec<SocketAddr>,
    },
    /// A shard owner (node `shard + 1`).
    Replica {
        /// The shard this node is primary of at bootstrap.
        shard: usize,
    },
}

/// Everything a node needs to come up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Leader or replica.
    pub role: Role,
    /// The tree configuration every stream shares.
    pub config: SwatConfig,
    /// Total global streams.
    pub streams: usize,
    /// Total shards (= replicas).
    pub shards: usize,
    /// Where to listen (`127.0.0.1:0` picks a free port).
    pub listen: SocketAddr,
    /// Durable storage directory (`None` = in-memory).
    pub dir: Option<PathBuf>,
    /// Read/write deadline on every socket operation.
    pub io_timeout: Duration,
    /// Per-peer in-flight budget before load shedding (leader only).
    pub max_inflight: usize,
    /// Heartbeat/monitor period.
    pub hb_period: Duration,
    /// Consecutive misses before a peer is `Dead`.
    pub miss_threshold: u32,
    /// Every node's address, indexed by node id. Empty = legacy mode
    /// (no elections, no standbys — the PR 7 topology).
    pub peers: Vec<SocketAddr>,
    /// Whether shards keep warm standbys (cluster mode only).
    pub standbys: bool,
    /// How long a follower waits without hearing a live leader before
    /// starting an election (cluster mode only; staggered by node id).
    pub election_timeout: Duration,
}

impl DaemonConfig {
    /// A sensible localhost config for `role` (legacy mode; fill
    /// [`DaemonConfig::peers`] to arm failover).
    pub fn localhost(role: Role, config: SwatConfig, streams: usize, shards: usize) -> Self {
        DaemonConfig {
            role,
            config,
            streams,
            shards,
            listen: "127.0.0.1:0".parse().expect("static addr"),
            dir: None,
            io_timeout: Duration::from_millis(500),
            max_inflight: 64,
            hb_period: Duration::from_millis(100),
            miss_threshold: 3,
            peers: Vec::new(),
            standbys: false,
            election_timeout: Duration::from_millis(600),
        }
    }
}

/// What the graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests completed after the stop signal.
    pub drained: u64,
    /// Whether durable state was checkpointed on the way out.
    pub checkpointed: bool,
}

/// State shared by the accept loop, connection workers, and monitor.
struct Inner {
    node: Mutex<ClusterNode>,
    /// Pool toward the other nodes. Cluster mode: indexed by node id.
    /// Legacy mode: indexed by shard (node id − 1).
    peers: PeerPool,
    /// Cluster mode flag (elections + fenced repair armed).
    cluster: bool,
    /// Whether standby re-seeding runs.
    standbys: bool,
    /// Whether this node reports a checkpoint on graceful drain.
    is_replica: bool,
    /// Graceful stop: finish in-flight work, then exit.
    stop: AtomicBool,
    /// Abrupt kill: exit without responding further.
    killed: AtomicBool,
    /// Requests completed after `stop` was raised.
    drained: AtomicU64,
    /// Milliseconds (of `started`) when valid current-leader traffic
    /// last arrived — the election suppressor.
    leader_contact_ms: AtomicU64,
    started: Instant,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Lock the node, surfacing poisoning as a typed failure instead of
    /// a cascading panic: a connection worker that panicked mid-request
    /// must not take every other connection down with it.
    fn lock_node(&self) -> Result<MutexGuard<'_, ClusterNode>, ()> {
        self.node.lock().map_err(|_| ())
    }

    /// The pool index of node `id` (see [`Inner::peers`]).
    fn peer_index(&self, id: u64) -> usize {
        if self.cluster {
            id as usize
        } else {
            id as usize - 1
        }
    }

    /// Deliver one request to `target`, self-routing included. Records
    /// the outcome in the registry when this node leads and tracks the
    /// target. `skip_dead` avoids burning connect timeouts on peers
    /// already known dead (heartbeats must NOT skip, or the dead could
    /// never rejoin).
    fn deliver(&self, target: u64, req: &Request, skip_dead: bool) -> Option<Response> {
        let self_id = {
            let node = self.lock_node().ok()?;
            if skip_dead {
                if let Some(lead) = node.lead() {
                    if target != node.id()
                        && lead.registry().tracks(target)
                        && lead.registry().health(target) == WireHealth::Dead
                    {
                        return None;
                    }
                }
            }
            node.id()
        };
        if target == self_id {
            return Some(self.lock_node().ok()?.handle(req));
        }
        let result = self.peers.exchange(self.peer_index(target), req);
        let at = self.now_ms();
        if let Ok(mut node) = self.lock_node() {
            if let Some(lead) = node.lead_mut() {
                if lead.registry().tracks(target) {
                    if result.is_some() {
                        lead.registry_mut().record_success(at, target);
                    } else {
                        lead.registry_mut().record_failure(at, target);
                    }
                }
            }
        }
        result
    }

    /// Serve one decoded request. Total: every input maps to exactly
    /// one response.
    fn serve(&self, req: &Request) -> Response {
        let is_leader = match self.lock_node() {
            Ok(node) => node.is_leader(),
            Err(()) => {
                return Response::ErrorR {
                    code: ErrorCode::Internal,
                }
            }
        };
        let resp = match req {
            Request::Ingest { .. }
            | Request::Point { .. }
            | Request::Range { .. }
            | Request::TopK { .. }
                if is_leader =>
            {
                self.serve_fan(req)
            }
            _ => {
                let resp = match self.lock_node() {
                    Ok(mut node) => node.handle(req),
                    Err(()) => Response::ErrorR {
                        code: ErrorCode::Internal,
                    },
                };
                // Accepted traffic from the current leader resets the
                // election clock.
                let from_leader = matches!(
                    req,
                    Request::Fenced { .. }
                        | Request::NewTerm { .. }
                        | Request::Replicate { .. }
                        | Request::FetchShard { .. }
                        | Request::InstallShard { .. }
                        | Request::Promote { .. }
                );
                if from_leader && !matches!(resp, Response::StaleTermR { .. }) {
                    self.leader_contact_ms
                        .store(self.now_ms(), Ordering::SeqCst);
                }
                resp
            }
        };
        if matches!(req, Request::Shutdown) {
            self.stop.store(true, Ordering::SeqCst);
        }
        resp
    }

    /// The leader data plane: plan under the lock, exchange outside it,
    /// merge under the lock again. Stepping down mid-request turns into
    /// a `NotLeaderR` redirect, never a wrong answer.
    fn serve_fan(&self, req: &Request) -> Response {
        let internal = Response::ErrorR {
            code: ErrorCode::Internal,
        };
        let not_leader = |node: &ClusterNode| Response::NotLeaderR {
            leader: node.leader_id(),
            term: node.term(),
        };
        let (self_id, calls) = {
            let Ok(node) = self.lock_node() else {
                return internal;
            };
            let Some(lead) = node.lead() else {
                return not_leader(&node);
            };
            match lead.plan(req) {
                Plan::Done(r) => return r,
                Plan::Fan(calls) => (node.id(), calls),
            }
        };
        // Reserve in-flight tokens toward every remote peer touched;
        // self-served calls need no budget.
        let idxs: Vec<usize> = calls
            .iter()
            .filter(|c| c.node != self_id)
            .map(|c| self.peer_index(c.node))
            .collect();
        let Some(_guard) = self.peers.try_acquire(&idxs) else {
            return Response::Overloaded;
        };
        let results: Vec<Option<Response>> = calls
            .iter()
            .map(|c| self.deliver(c.node, &c.request, true))
            .collect();
        let stale = stale_term_in(&results);
        let resp = {
            let Ok(mut node) = self.lock_node() else {
                return internal;
            };
            if node.lead().is_none() {
                not_leader(&node)
            } else {
                match req {
                    Request::Ingest { req_id, .. } => {
                        // invariant: lead() checked non-None just above,
                        // and the node lock is held continuously since.
                        let lead = node.lead_mut().expect("still leading");
                        lead.finish_ingest(*req_id, &calls, &results)
                    }
                    Request::Point { .. } | Request::Range { .. } => {
                        let lead = node.lead_mut().expect("still leading");
                        lead.finish_routed(&calls[0], results.first().cloned().flatten())
                    }
                    Request::TopK { k } => {
                        let refines = {
                            let lead = node.lead_mut().expect("still leading");
                            lead.plan_topk_round2(*k, &calls, &results).1
                        };
                        drop(node);
                        let scans: Vec<(usize, Option<Response>)> = refines
                            .iter()
                            .map(|c| (c.shard, self.deliver(c.node, &c.request, true)))
                            .collect();
                        let Ok(mut node) = self.lock_node() else {
                            return internal;
                        };
                        if node.lead().is_none() {
                            not_leader(&node)
                        } else {
                            node.lead_mut()
                                .expect("still leading")
                                .finish_topk(*k, &calls, &results, &scans)
                        }
                    }
                    // invariant: serve() only routes the four data
                    // requests here, all covered above.
                    _ => internal,
                }
            }
        };
        if let Some((term, leader)) = stale {
            // Someone leads a newer term: adopt it and redirect the
            // client there rather than reporting a spurious failure.
            if let Ok(mut node) = self.lock_node() {
                node.observe_stale_term(term, leader);
            }
            return Response::NotLeaderR { leader, term };
        }
        resp
    }

    /// Deliver a planned call list sequentially, term-checking results.
    fn deliver_all(&self, calls: &[PeerCall]) -> Vec<Option<Response>> {
        calls
            .iter()
            .map(|c| self.deliver(c.node, &c.request, true))
            .collect()
    }
}

/// A running daemon, owned by whoever spawned it.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    hb_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a wire-level `Shutdown` request asked this node to exit.
    pub fn stop_requested(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Whether this node currently leads (test/bench introspection).
    pub fn is_leader(&self) -> bool {
        self.inner
            .lock_node()
            .map(|n| n.is_leader())
            .unwrap_or(false)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// checkpoint durable state, join every thread.
    pub fn stop(mut self) -> DrainReport {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.join_all();
        let checkpointed = self.inner.is_replica
            && self
                .inner
                .lock_node()
                .map(|mut n| n.checkpoint().is_ok())
                .unwrap_or(false);
        DrainReport {
            drained: self.inner.drained.load(Ordering::SeqCst),
            checkpointed,
        }
    }

    /// Abrupt kill: no drain, no checkpoint — the crash the failover
    /// tests inflict mid-run.
    pub fn kill(mut self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        self.join_all();
    }

    fn join_all(&mut self) {
        // A worker that panicked reports a join error; swallowing it is
        // deliberate — teardown must finish for the remaining threads,
        // and the panic already surfaced on stderr.
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.hb_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<JoinHandle<()>> = match self.conn_threads.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            // Poisoned by a panicking accept loop: nothing left to join
            // safely; the threads exit on the stop flag regardless.
            Err(_) => Vec::new(),
        };
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Bind a listener for [`spawn_on`] — the two-phase bring-up that lets
/// a cluster learn every node's port before any node starts serving.
///
/// # Errors
///
/// Binding failures.
pub fn bind(listen: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(listen)
}

/// Bring a node up on `cfg.listen`.
///
/// # Errors
///
/// Binding or store-recovery failures.
pub fn spawn(cfg: DaemonConfig) -> io::Result<ServerHandle> {
    let listener = bind(cfg.listen)?;
    spawn_on(listener, cfg)
}

/// Bring a node up on an already-bound listener (see [`bind`]).
///
/// # Errors
///
/// Store-recovery or listener-configuration failures.
pub fn spawn_on(listener: TcpListener, cfg: DaemonConfig) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let cluster = !cfg.peers.is_empty();
    let standbys = cluster && cfg.standbys;
    let store_err = |e: swat_store::StoreError| io::Error::other(e.to_string());
    let node = match &cfg.role {
        Role::Replica { shard } => {
            let id = *shard as u64 + 1;
            match &cfg.dir {
                Some(dir) => ClusterNode::durable_replica(
                    id,
                    cfg.config,
                    cfg.streams,
                    cfg.shards,
                    cfg.miss_threshold,
                    standbys,
                    dir.clone(),
                )
                .map_err(store_err)?,
                None => ClusterNode::replica(
                    id,
                    cfg.config,
                    cfg.streams,
                    cfg.shards,
                    cfg.miss_threshold,
                    standbys,
                ),
            }
        }
        Role::Leader { .. } => {
            let node = ClusterNode::bootstrap_leader(
                cfg.config,
                cfg.streams,
                cfg.shards,
                cfg.miss_threshold,
                standbys,
            );
            match &cfg.dir {
                Some(dir) => node.with_meta_dir(dir.clone()).map_err(store_err)?,
                None => node,
            }
        }
    };

    let pool_addrs = if cluster {
        cfg.peers.clone()
    } else {
        match &cfg.role {
            Role::Leader { replicas } => replicas.clone(),
            // Legacy replicas fan nothing out; an empty pool is fine.
            Role::Replica { .. } => Vec::new(),
        }
    };
    let peers = PeerPool::new(
        pool_addrs,
        RetryPolicy {
            max_retries: 2,
            timeout: 20,
        },
        cfg.io_timeout,
        cfg.max_inflight,
    );

    let inner = Arc::new(Inner {
        node: Mutex::new(node),
        peers,
        cluster,
        standbys,
        is_replica: matches!(cfg.role, Role::Replica { .. }),
        stop: AtomicBool::new(false),
        killed: AtomicBool::new(false),
        drained: AtomicU64::new(0),
        leader_contact_ms: AtomicU64::new(0),
        started: Instant::now(),
    });

    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let io_timeout = cfg.io_timeout;

    let accept_inner = inner.clone();
    let accept_threads = conn_threads.clone();
    let accept_thread = std::thread::spawn(move || loop {
        if accept_inner.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = accept_inner.clone();
                let t = std::thread::spawn(move || {
                    serve_connection(conn_inner, stream, io_timeout);
                });
                if let Ok(mut g) = accept_threads.lock() {
                    g.push(t);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    });

    // The monitor runs on the legacy leader (heartbeats only) and on
    // every cluster-mode node (heartbeats + repair + elections).
    let hb_thread = if cluster || matches!(cfg.role, Role::Leader { .. }) {
        let hb_inner = inner.clone();
        let period = cfg.hb_period;
        let election_timeout = cfg.election_timeout;
        Some(std::thread::spawn(move || {
            monitor_loop(hb_inner, period, election_timeout)
        }))
    } else {
        None
    };

    Ok(ServerHandle {
        addr,
        inner,
        accept_thread: Some(accept_thread),
        conn_threads,
        hb_thread,
    })
}

/// One connection worker: framed request/response until close, stop,
/// or a protocol violation (which closes the connection — the typed
/// error is the decoder's; a malformed peer gets no second chance).
fn serve_connection(inner: Arc<Inner>, stream: std::net::TcpStream, io_timeout: Duration) {
    let Ok(mut tp) = TcpTransport::new(stream, io_timeout, io_timeout) else {
        return;
    };
    loop {
        if inner.killed.load(Ordering::SeqCst) {
            return;
        }
        let frame = match tp.recv_frame() {
            Ok(f) => f,
            Err(TransportError::TimedOut) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            // Closed, I/O failure, or oversize frame: drop the
            // connection. Oversize is a protocol violation (typed
            // upstream as ProtoError::Oversize).
            Err(_) => return,
        };
        let req = match check_frame(&frame).and_then(decode_request) {
            Ok(r) => r,
            // Malformed frame: typed error, closed connection. Never a
            // panic, and the violator cannot keep the thread busy.
            Err(_) => return,
        };
        let stopping = inner.stop.load(Ordering::SeqCst);
        let resp = inner.serve(&req);
        if inner.killed.load(Ordering::SeqCst) {
            return;
        }
        if tp.send_frame(&encode_response(&resp)).is_err() {
            return;
        }
        if stopping {
            inner.drained.fetch_add(1, Ordering::SeqCst);
        }
        if matches!(req, Request::Shutdown) {
            return;
        }
    }
}

/// The per-node monitor. While leading: term-fenced heartbeats to every
/// peer (never skipping the dead — that is how they rejoin), then a
/// repair pass, then (with standbys on) at most one re-seeding step.
/// While following in cluster mode: watch the leader-contact clock and
/// claim the next owned term after a staggered silence — probing every
/// lower-id node first, so the lowest live id wins without a vote.
fn monitor_loop(inner: Arc<Inner>, period: Duration, election_timeout: Duration) {
    let mut nonce = 0u64;
    loop {
        std::thread::sleep(period);
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(node) = inner.lock_node() else {
            // Poisoned node state: stop monitoring. Heartbeats cease and
            // the rest of the cluster fails over around this node.
            return;
        };
        let leading = node.is_leader();
        let (id, peer_ids) = (node.id(), node.peer_ids());
        let heartbeat = node.lead().map(|l| {
            nonce += 1;
            l.heartbeat(nonce)
        });
        drop(node);

        if leading {
            // invariant: leading ⇒ heartbeat was planned above.
            let hb = heartbeat.expect("leader plans a heartbeat");
            let mut stale = None;
            for &peer in &peer_ids {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                let resp = inner.deliver(peer, &hb, false);
                if let Some(Response::StaleTermR { term, leader }) = resp {
                    stale = Some((term, leader));
                }
            }
            if let Some((term, leader)) = stale {
                if let Ok(mut node) = inner.lock_node() {
                    node.observe_stale_term(term, leader);
                }
                continue;
            }
            if !inner.cluster {
                continue;
            }
            // Repair: promote around the dead, re-anchor epochs.
            let at = inner.now_ms();
            let calls = match inner.lock_node() {
                Ok(mut node) => node.repair_plan(at),
                Err(()) => return,
            };
            if !calls.is_empty() {
                let results = inner.deliver_all(&calls);
                if let Ok(mut node) = inner.lock_node() {
                    node.finish_repair(inner.now_ms(), &calls, &results);
                }
            }
            // Re-seed a standby from its primary, one step per tick.
            if inner.standbys {
                let at = inner.now_ms();
                let fetch_calls = match inner.lock_node() {
                    Ok(mut node) => node.rejoin_plan(at),
                    Err(()) => return,
                };
                if let Some(fetch_calls) = fetch_calls {
                    let results = inner.deliver_all(&fetch_calls);
                    let install = match inner.lock_node() {
                        Ok(mut node) => node.finish_fetch(inner.now_ms(), &fetch_calls, &results),
                        Err(()) => return,
                    };
                    if let Some(install) = install {
                        let result = inner.deliver(install.node, &install.request, true);
                        if let Ok(mut node) = inner.lock_node() {
                            node.finish_install(inner.now_ms(), result);
                        }
                    }
                }
            }
        } else if inner.cluster {
            // Follower: is the leader silent past our staggered patience?
            let now = inner.now_ms();
            let last = inner.leader_contact_ms.load(Ordering::SeqCst);
            let patience =
                election_timeout.as_millis() as u64 + id * period.as_millis().max(1) as u64;
            if now.saturating_sub(last) < patience {
                continue;
            }
            // Deterministic successor: defer to any live lower id.
            let lower_alive = (0..id).any(|n| inner.deliver(n, &Request::Status, false).is_some());
            if lower_alive {
                inner
                    .leader_contact_ms
                    .store(inner.now_ms(), Ordering::SeqCst);
                continue;
            }
            let claim = match inner.lock_node() {
                Ok(mut node) => match node.begin_claim() {
                    Ok(claim) => claim,
                    // The term record would not persist: claiming is
                    // unsafe (monotonicity could break across restart).
                    Err(_) => continue,
                },
                Err(()) => return,
            };
            let reports: Vec<(u64, Option<Response>)> = peer_ids
                .iter()
                .map(|&p| (p, inner.deliver(p, &claim, false)))
                .collect();
            let calls = match inner.lock_node() {
                Ok(mut node) => node.finish_claim(inner.now_ms(), &reports),
                Err(()) => return,
            };
            if let Some(calls) = calls {
                let results = inner.deliver_all(&calls);
                if let Ok(mut node) = inner.lock_node() {
                    node.finish_repair(inner.now_ms(), &calls, &results);
                }
            }
            inner
                .leader_contact_ms
                .store(inner.now_ms(), Ordering::SeqCst);
        }
    }
}
