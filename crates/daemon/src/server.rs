//! The threaded TCP daemon: accept loop, per-connection workers,
//! heartbeats, and graceful drain.
//!
//! One [`spawn`]ed server is one cluster node. Replicas own a shard
//! behind a [`ReplicaNode`]; the leader owns a [`LeaderCore`] plus a
//! [`PeerPool`] toward its replicas. Every socket operation carries a
//! deadline, every fan-out first reserves per-peer in-flight tokens
//! (shedding with a typed `Overloaded` when a budget is exhausted), and
//! every malformed frame closes that connection with a typed error —
//! never a panic, never a stuck thread.
//!
//! Shutdown comes in two shapes, both needed by the tests:
//!
//! * [`ServerHandle::stop`] — graceful: stop accepting, let every
//!   connection worker finish its in-flight request, drain, checkpoint
//!   durable state, report a [`DrainReport`].
//! * [`ServerHandle::kill`] — abrupt: drop everything on the floor, no
//!   drain, no checkpoint. This is the "replica killed mid-run" of the
//!   acceptance test; the leader must degrade explicitly, never
//!   silently.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swat_replication::RetryPolicy;
use swat_tree::SwatConfig;

use crate::client::PeerPool;
use crate::cluster::{LeaderCore, Plan};
use crate::proto::{check_frame, decode_request, encode_response, Request, Response};
use crate::replica::ReplicaNode;
use crate::transport::{TcpTransport, Transport, TransportError};

/// Which role this node plays.
#[derive(Debug, Clone)]
pub enum Role {
    /// The routing/merging node; owns no streams itself.
    Leader {
        /// Replica addresses, shard order (`replicas[s]` owns shard `s`).
        replicas: Vec<SocketAddr>,
    },
    /// A shard owner.
    Replica {
        /// The shard this node owns.
        shard: usize,
    },
}

/// Everything a node needs to come up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Leader or replica.
    pub role: Role,
    /// The tree configuration every stream shares.
    pub config: SwatConfig,
    /// Total global streams.
    pub streams: usize,
    /// Total shards (= replicas).
    pub shards: usize,
    /// Where to listen (`127.0.0.1:0` picks a free port).
    pub listen: SocketAddr,
    /// Durable storage directory (replicas only; `None` = in-memory).
    pub dir: Option<PathBuf>,
    /// Read/write deadline on every socket operation.
    pub io_timeout: Duration,
    /// Per-peer in-flight budget before load shedding (leader only).
    pub max_inflight: usize,
    /// Heartbeat period (leader only).
    pub hb_period: Duration,
    /// Consecutive misses before a replica is `Dead`.
    pub miss_threshold: u32,
}

impl DaemonConfig {
    /// A sensible localhost config for `role`.
    pub fn localhost(role: Role, config: SwatConfig, streams: usize, shards: usize) -> Self {
        DaemonConfig {
            role,
            config,
            streams,
            shards,
            listen: "127.0.0.1:0".parse().expect("static addr"),
            dir: None,
            io_timeout: Duration::from_millis(500),
            max_inflight: 64,
            hb_period: Duration::from_millis(100),
            miss_threshold: 3,
        }
    }
}

/// What the graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests completed after the stop signal.
    pub drained: u64,
    /// Whether durable state was checkpointed on the way out.
    pub checkpointed: bool,
}

/// The node's role-specific state.
enum Kind {
    Replica(Mutex<ReplicaNode>),
    Leader {
        core: Mutex<LeaderCore>,
        peers: PeerPool,
    },
}

/// State shared by the accept loop, connection workers, and heartbeat.
struct Inner {
    kind: Kind,
    /// Graceful stop: finish in-flight work, then exit.
    stop: AtomicBool,
    /// Abrupt kill: exit without responding further.
    killed: AtomicBool,
    /// Requests completed after `stop` was raised.
    drained: AtomicU64,
    started: Instant,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Serve one decoded request. Total: every input maps to exactly
    /// one response.
    fn serve(&self, req: &Request) -> Response {
        match &self.kind {
            Kind::Replica(node) => {
                let resp = node.lock().expect("replica lock").handle(req);
                if matches!(req, Request::Shutdown) {
                    self.stop.store(true, Ordering::SeqCst);
                }
                resp
            }
            Kind::Leader { core, peers } => {
                let resp = self.serve_leader(core, peers, req);
                if matches!(req, Request::Shutdown) {
                    self.stop.store(true, Ordering::SeqCst);
                }
                resp
            }
        }
    }

    fn serve_leader(&self, core: &Mutex<LeaderCore>, peers: &PeerPool, req: &Request) -> Response {
        // Planning is cheap; hold the lock only for plan/merge, never
        // across network calls (fan-outs from different client
        // connections proceed concurrently, bounded by the budget).
        let plan = core.lock().expect("leader lock").plan(req);
        let calls = match plan {
            Plan::Done(r) => return r,
            Plan::Fan(calls) => calls,
        };
        let shards: Vec<usize> = calls.iter().map(|c| c.shard).collect();
        let Some(_guard) = peers.try_acquire(&shards) else {
            return Response::Overloaded;
        };
        let exchange = |shard: usize, request: &Request| -> Option<Response> {
            let skip = {
                let c = core.lock().expect("leader lock");
                c.registry().health((shard + 1) as u64) == crate::proto::WireHealth::Dead
            };
            if skip {
                return None;
            }
            let result = peers.exchange(shard, request);
            let mut c = core.lock().expect("leader lock");
            let at = self.now_ms();
            if result.is_some() {
                c.registry_mut().record_success(at, (shard + 1) as u64);
            } else {
                c.registry_mut().record_failure(at, (shard + 1) as u64);
            }
            result
        };
        match req {
            Request::Ingest { req_id, .. } => {
                let results: Vec<Option<Response>> = calls
                    .iter()
                    .map(|c| exchange(c.shard, &c.request))
                    .collect();
                core.lock()
                    .expect("leader lock")
                    .finish_ingest(*req_id, &results)
            }
            Request::Point { .. } | Request::Range { .. } => {
                let r = exchange(calls[0].shard, &calls[0].request);
                core.lock()
                    .expect("leader lock")
                    .finish_routed(calls[0].shard, r)
            }
            Request::TopK { k } => {
                let locals: Vec<Option<Response>> = calls
                    .iter()
                    .map(|c| exchange(c.shard, &c.request))
                    .collect();
                let refines = {
                    let c = core.lock().expect("leader lock");
                    c.plan_topk_round2(*k, &locals).1
                };
                let scans: Vec<(usize, Option<Response>)> = refines
                    .iter()
                    .map(|c| (c.shard, exchange(c.shard, &c.request)))
                    .collect();
                core.lock()
                    .expect("leader lock")
                    .finish_topk(*k, &locals, &scans)
            }
            _ => unreachable!("only fan-out requests produce Plan::Fan"),
        }
    }
}

/// A running daemon, owned by whoever spawned it.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    hb_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a wire-level `Shutdown` request asked this node to exit.
    pub fn stop_requested(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// checkpoint durable state, join every thread.
    pub fn stop(mut self) -> DrainReport {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.join_all();
        let checkpointed = match &self.inner.kind {
            Kind::Replica(node) => {
                let mut n = node.lock().expect("replica lock");
                n.checkpoint().is_ok()
            }
            Kind::Leader { .. } => false,
        };
        DrainReport {
            drained: self.inner.drained.load(Ordering::SeqCst),
            checkpointed,
        }
    }

    /// Abrupt kill: no drain, no checkpoint — the crash the cluster
    /// test inflicts on one replica.
    pub fn kill(mut self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.hb_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conn_threads.lock().expect("threads lock"));
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Bring a node up on `cfg.listen`.
///
/// # Errors
///
/// Binding or store-recovery failures.
pub fn spawn(cfg: DaemonConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(cfg.listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let kind = match &cfg.role {
        Role::Replica { shard } => {
            let node_id = (*shard + 1) as u64;
            let node = match &cfg.dir {
                Some(dir) => {
                    ReplicaNode::durable(node_id, cfg.config, cfg.streams, cfg.shards, *shard, dir)
                        .map_err(|e| io::Error::other(e.to_string()))?
                }
                None => ReplicaNode::new(node_id, cfg.config, cfg.streams, cfg.shards, *shard),
            };
            Kind::Replica(Mutex::new(node))
        }
        Role::Leader { replicas } => {
            let core = Mutex::new(LeaderCore::new(
                cfg.config,
                cfg.streams,
                cfg.shards,
                cfg.miss_threshold,
            ));
            let peers = PeerPool::new(
                replicas.clone(),
                RetryPolicy {
                    max_retries: 2,
                    timeout: 20,
                },
                cfg.io_timeout,
                cfg.max_inflight,
            );
            Kind::Leader { core, peers }
        }
    };

    let inner = Arc::new(Inner {
        kind,
        stop: AtomicBool::new(false),
        killed: AtomicBool::new(false),
        drained: AtomicU64::new(0),
        started: Instant::now(),
    });

    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let io_timeout = cfg.io_timeout;

    let accept_inner = inner.clone();
    let accept_threads = conn_threads.clone();
    let accept_thread = std::thread::spawn(move || loop {
        if accept_inner.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = accept_inner.clone();
                let t = std::thread::spawn(move || {
                    serve_connection(conn_inner, stream, io_timeout);
                });
                accept_threads.lock().expect("threads lock").push(t);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    });

    let hb_thread = match &cfg.role {
        Role::Leader { .. } => {
            let hb_inner = inner.clone();
            let period = cfg.hb_period;
            Some(std::thread::spawn(move || heartbeat_loop(hb_inner, period)))
        }
        Role::Replica { .. } => None,
    };

    Ok(ServerHandle {
        addr,
        inner,
        accept_thread: Some(accept_thread),
        conn_threads,
        hb_thread,
    })
}

/// One connection worker: framed request/response until close, stop,
/// or a protocol violation (which closes the connection — the typed
/// error is the decoder's; a malformed peer gets no second chance).
fn serve_connection(inner: Arc<Inner>, stream: std::net::TcpStream, io_timeout: Duration) {
    let Ok(mut tp) = TcpTransport::new(stream, io_timeout, io_timeout) else {
        return;
    };
    loop {
        if inner.killed.load(Ordering::SeqCst) {
            return;
        }
        let frame = match tp.recv_frame() {
            Ok(f) => f,
            Err(TransportError::TimedOut) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            // Closed, I/O failure, or oversize frame: drop the
            // connection. Oversize is a protocol violation (typed
            // upstream as ProtoError::Oversize).
            Err(_) => return,
        };
        let req = match check_frame(&frame).and_then(decode_request) {
            Ok(r) => r,
            // Malformed frame: typed error, closed connection. Never a
            // panic, and the violator cannot keep the thread busy.
            Err(_) => return,
        };
        let stopping = inner.stop.load(Ordering::SeqCst);
        let resp = inner.serve(&req);
        if inner.killed.load(Ordering::SeqCst) {
            return;
        }
        if tp.send_frame(&encode_response(&resp)).is_err() {
            return;
        }
        if stopping {
            inner.drained.fetch_add(1, Ordering::SeqCst);
        }
        if matches!(req, Request::Shutdown) {
            return;
        }
    }
}

/// The leader's failure detector: ping every replica each period,
/// bypassing the in-flight budget so detection keeps working under
/// load.
fn heartbeat_loop(inner: Arc<Inner>, period: Duration) {
    let Kind::Leader { core, peers } = &inner.kind else {
        return;
    };
    let mut nonce = 0u64;
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(period);
        for shard in 0..peers.len() {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            nonce += 1;
            let ok = matches!(
                peers.exchange(shard, &Request::Ping { nonce }),
                Some(Response::Pong { nonce: n }) if n == nonce
            );
            let at = inner.now_ms();
            let mut c = core.lock().expect("leader lock");
            if ok {
                c.registry_mut().record_success(at, (shard + 1) as u64);
            } else {
                c.registry_mut().record_failure(at, (shard + 1) as u64);
            }
        }
    }
}
