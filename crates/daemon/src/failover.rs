//! Term arithmetic and the shard assignment table — the pure math under
//! leader failover and standby promotion.
//!
//! # Terms without a quorum
//!
//! Terms are drawn from **per-node residue classes**: in an `n`-node
//! cluster, node `i` may only ever claim terms `t` with `t % n == i`.
//! Two distinct nodes therefore *cannot* claim the same term — "no two
//! leaders in one term" holds by construction, with no voting round.
//! What a node must still guarantee is monotonicity across restarts,
//! which is why the current term is a durable
//! [`swat_store::NodeMeta`] record written before the claim is spoken.
//!
//! Bootstrap is term 0 led by node 0 (`0 % n == 0`, so the rule covers
//! the initial state too).
//!
//! # The assignment table
//!
//! [`Assignment`] maps each shard to its primary, optional standby, and
//! a **configuration epoch** that bumps on every membership change. All
//! shard traffic is stamped with the epoch ([`crate::proto::
//! Request::Fenced`]); a holder at the wrong epoch answers
//! `StaleEpochR`, so a row can never land on a configuration the leader
//! has moved past. The bootstrap layout wraps standbys around the ring:
//! shard `s` is primary on node `s + 1` and standby on the next replica
//! over, so every replica is primary for one shard and standby for
//! another.

/// The node entitled to claim `term` in an `n`-node cluster.
///
/// # Panics
///
/// Panics if `nodes == 0` (a cluster has at least one node).
pub fn term_owner(nodes: u64, term: u64) -> u64 {
    assert!(nodes > 0, "a cluster has at least one node");
    term % nodes
}

/// The smallest term greater than `current` that `claimant` is entitled
/// to claim — the term a node adopts when it promotes itself.
///
/// # Panics
///
/// Panics if `claimant >= nodes`.
pub fn next_term(nodes: u64, current: u64, claimant: u64) -> u64 {
    assert!(claimant < nodes, "claimant must be a cluster node");
    let base = current - (current % nodes); // current's residue-0 floor
    let candidate = base + claimant;
    if candidate > current {
        candidate
    } else {
        candidate + nodes
    }
}

/// One shard's configuration: who serves it, who stands by, and the
/// epoch fencing both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlot {
    /// Configuration epoch; bumps on every membership change.
    pub epoch: u64,
    /// The serving node, or `None` while the shard is unavailable
    /// (primary died with no promotable standby).
    pub primary: Option<u64>,
    /// The warm standby receiving replicated rows, if any.
    pub standby: Option<u64>,
}

/// The leader's authoritative shard → nodes table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    slots: Vec<ShardSlot>,
}

impl Assignment {
    /// The bootstrap layout without standbys (the PR 7 topology): shard
    /// `s` on node `s + 1`, nothing standing by.
    pub fn solo(shards: usize) -> Assignment {
        Assignment {
            slots: (0..shards)
                .map(|s| ShardSlot {
                    epoch: 0,
                    primary: Some(s as u64 + 1),
                    standby: None,
                })
                .collect(),
        }
    }

    /// The bootstrap layout with ring standbys: shard `s` is primary on
    /// node `s + 1` and standby on node `((s + 1) % shards) + 1`. With
    /// one shard the ring closes on itself, so there is no standby.
    pub fn ring(shards: usize) -> Assignment {
        Assignment {
            slots: (0..shards)
                .map(|s| {
                    let primary = s as u64 + 1;
                    let standby = ((s + 1) % shards) as u64 + 1;
                    ShardSlot {
                        epoch: 0,
                        primary: Some(primary),
                        standby: (standby != primary).then_some(standby),
                    }
                })
                .collect(),
        }
    }

    /// Build from explicit slots (a freshly elected leader's rebuild).
    pub fn from_slots(slots: Vec<ShardSlot>) -> Assignment {
        Assignment { slots }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Shard `s`'s slot.
    pub fn slot(&self, shard: usize) -> ShardSlot {
        self.slots[shard]
    }

    /// Every `(shard, slot)` pair, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ShardSlot)> + '_ {
        self.slots.iter().copied().enumerate()
    }

    /// Promote shard `s`'s standby to primary under a bumped epoch (the
    /// primary died). Returns the new slot, or `None` if there is no
    /// standby to promote — in which case the shard goes unavailable
    /// (`primary = None`), still under a bumped epoch so a returning
    /// stale primary stays fenced out.
    pub fn promote_standby(&mut self, shard: usize) -> Option<ShardSlot> {
        let slot = &mut self.slots[shard];
        slot.epoch += 1;
        match slot.standby.take() {
            Some(s) => {
                slot.primary = Some(s);
                Some(*slot)
            }
            None => {
                slot.primary = None;
                None
            }
        }
    }

    /// Drop shard `s`'s standby (it died) under a bumped epoch, so rows
    /// ack on the primary alone — and a promoted copy of the *dropped*
    /// standby can never serve, because promotion only ever names the
    /// assignment's current standby.
    pub fn drop_standby(&mut self, shard: usize) -> ShardSlot {
        let slot = &mut self.slots[shard];
        slot.epoch += 1;
        slot.standby = None;
        *slot
    }

    /// Install `node` as shard `s`'s standby under a bumped epoch (a
    /// rejoined node, freshly seeded with the primary's state).
    pub fn set_standby(&mut self, shard: usize, node: u64) -> ShardSlot {
        let slot = &mut self.slots[shard];
        slot.epoch += 1;
        slot.standby = Some(node);
        *slot
    }

    /// Adopt a higher epoch observed on a holder (a `StaleEpochR` whose
    /// epoch is ahead of ours — possible when a prior leader bumped the
    /// slot and died before telling anyone else).
    pub fn adopt_epoch(&mut self, shard: usize, epoch: u64) {
        let slot = &mut self.slots[shard];
        if epoch > slot.epoch {
            slot.epoch = epoch;
        }
    }

    /// The shards `node` currently appears in, as `(shard, is_primary)`.
    pub fn roles_of(&self, node: u64) -> Vec<(usize, bool)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| {
                if slot.primary == Some(node) {
                    Some((s, true))
                } else if slot.standby == Some(node) {
                    Some((s, false))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Deterministic successor selection: the lowest-id live node. Every
/// node computes the same answer from the same liveness view, so the
/// probe order during elections is stable and replayable.
pub fn successor(live: impl IntoIterator<Item = u64>) -> Option<u64> {
    live.into_iter().min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residue_classes_never_collide() {
        // No two distinct claimants can ever produce the same term, from
        // any pair of starting points — the no-split-brain kernel.
        let nodes = 5u64;
        for cur_a in 0..30 {
            for cur_b in 0..30 {
                for a in 0..nodes {
                    for b in 0..nodes {
                        if a == b {
                            continue;
                        }
                        assert_ne!(
                            next_term(nodes, cur_a, a),
                            next_term(nodes, cur_b, b),
                            "nodes {a} and {b} from terms {cur_a}/{cur_b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn next_term_is_minimal_monotone_and_owned() {
        let nodes = 4u64;
        for current in 0..40 {
            for claimant in 0..nodes {
                let t = next_term(nodes, current, claimant);
                assert!(t > current, "monotone");
                assert_eq!(term_owner(nodes, t), claimant, "owned");
                // Minimal: nothing smaller works.
                for smaller in (current + 1)..t {
                    assert_ne!(term_owner(nodes, smaller), claimant);
                }
            }
        }
        // Bootstrap consistency: term 0 belongs to node 0.
        assert_eq!(term_owner(nodes, 0), 0);
    }

    #[test]
    fn ring_layout_gives_every_replica_two_roles() {
        let a = Assignment::ring(3);
        assert_eq!(
            a.slot(0),
            ShardSlot {
                epoch: 0,
                primary: Some(1),
                standby: Some(2)
            }
        );
        assert_eq!(a.slot(1).standby, Some(3));
        assert_eq!(a.slot(2).standby, Some(1), "ring wraps");
        for node in 1..=3u64 {
            let roles = a.roles_of(node);
            assert_eq!(roles.len(), 2, "node {node}");
            assert_eq!(roles.iter().filter(|(_, p)| *p).count(), 1);
        }
        // One shard: the ring closes on itself, no standby.
        assert_eq!(Assignment::ring(1).slot(0).standby, None);
        assert_eq!(Assignment::solo(2).slot(1).standby, None);
    }

    #[test]
    fn membership_changes_always_bump_the_epoch() {
        let mut a = Assignment::ring(2);
        let slot = a.promote_standby(0).expect("standby exists");
        assert_eq!(slot.epoch, 1);
        assert_eq!(slot.primary, Some(2));
        assert_eq!(slot.standby, None);
        // No standby left: promotion fails but the epoch still bumps,
        // fencing out a returning stale primary.
        assert_eq!(a.promote_standby(0), None);
        assert_eq!(a.slot(0).epoch, 2);
        assert_eq!(a.slot(0).primary, None);
        // Drop and reinstall a standby on the other shard.
        assert_eq!(a.drop_standby(1).epoch, 1);
        let slot = a.set_standby(1, 2);
        assert_eq!((slot.epoch, slot.standby), (2, Some(2)));
        // Epoch adoption only moves forward.
        a.adopt_epoch(1, 1);
        assert_eq!(a.slot(1).epoch, 2);
        a.adopt_epoch(1, 9);
        assert_eq!(a.slot(1).epoch, 9);
    }

    #[test]
    fn successor_is_the_lowest_live_id() {
        assert_eq!(successor([3, 1, 2]), Some(1));
        assert_eq!(successor([]), None);
    }
}
