//! The replica node: a sans-io state machine owning one shard.
//!
//! [`ReplicaNode::handle`] maps every [`Request`] to exactly one
//! [`Response`] with no I/O of its own, so the same logic serves the
//! threaded TCP server and the deterministic simulator — the
//! property-test arm and the production arm literally share this code,
//! which is what makes "bit-identical to the oracle" a meaningful claim.
//!
//! A replica owns the streams of one shard of the global hash
//! partition (`swat_tree::shard_members`), backed either by a plain
//! in-memory [`StreamSet`] or by a [`DurableStore`] (WAL + checkpoints),
//! and keeps the applied-write-id set that makes ingest retries
//! duplicate-safe (the PR 5 scheme).

use std::collections::HashSet;
use std::path::Path;

use swat_store::{DurableStore, RecoveryManager, StoreError};
use swat_tree::{
    for_each_root_coeff, local_top_k, shard_members, QueryOptions, RangeQuery, StreamSet,
    SwatConfig,
};

use crate::proto::{ErrorCode, Request, Response, WirePointAnswer};

/// Where a replica's stream state lives.
// One Backing exists per shard held, so the size gap between the
// variants (the tiered store carries flush-thread plumbing) is noise
// next to the StreamSet both contain; boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
enum Backing {
    /// Volatile: fast, lost on exit.
    Memory(StreamSet),
    /// Durable: WAL + checkpoints under a directory; survives crashes.
    Durable(DurableStore),
}

impl Backing {
    fn set(&self) -> &StreamSet {
        match self {
            Backing::Memory(s) => s,
            Backing::Durable(d) => d.set(),
        }
    }
}

/// One shard-owning node of a `swatd` cluster.
pub struct ReplicaNode {
    node: u64,
    shard: usize,
    /// Global ids of the streams this shard owns, ascending; local
    /// index ↦ global id.
    members: Vec<usize>,
    backing: Backing,
    /// Write ids already applied; retries re-ack without re-applying.
    applied: HashSet<u64>,
    arrivals: u64,
}

impl ReplicaNode {
    /// An in-memory replica: node id `node` owning shard `shard` of
    /// `shards` over `streams` global streams.
    pub fn new(node: u64, config: SwatConfig, streams: usize, shards: usize, shard: usize) -> Self {
        let members = shard_members(streams, shards, shard);
        let set = StreamSet::new(config, members.len());
        ReplicaNode {
            node,
            shard,
            members,
            backing: Backing::Memory(set),
            applied: HashSet::new(),
            arrivals: 0,
        }
    }

    /// A durable replica rooted at `dir`: recovers an existing store if
    /// one is present, creates a fresh one otherwise.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from creation or recovery.
    pub fn durable(
        node: u64,
        config: SwatConfig,
        streams: usize,
        shards: usize,
        shard: usize,
        dir: &Path,
    ) -> Result<Self, StoreError> {
        let members = shard_members(streams, shards, shard);
        // Only parseable store files count: the node-meta image shares
        // this directory and must not flip a fresh node into recovery.
        let store = if swat_store::holds_store(dir) {
            RecoveryManager::recover(dir)?.0
        } else {
            DurableStore::create(dir, config, members.len())?
        };
        let arrivals = store.arrivals();
        Ok(ReplicaNode {
            node,
            shard,
            members,
            backing: Backing::Durable(store),
            applied: HashSet::new(),
            arrivals,
        })
    }

    /// An in-memory replica rebuilt from exported state — the receiving
    /// end of a standby installation. `snapshot` is [`StreamSet::
    /// snapshot`] bytes; `applied` the write ids already absorbed.
    ///
    /// # Errors
    ///
    /// A [`swat_tree::SnapshotError`] when the snapshot bytes are
    /// damaged, or when the restored set's stream count does not match
    /// the shard's membership (a routing mismatch, not just corruption).
    pub fn install(
        node: u64,
        streams: usize,
        shards: usize,
        shard: usize,
        arrivals: u64,
        applied: Vec<u64>,
        snapshot: &[u8],
    ) -> Result<Self, swat_tree::SnapshotError> {
        let members = shard_members(streams, shards, shard);
        let set = StreamSet::restore(snapshot)?;
        if set.streams() != members.len() {
            return Err(swat_tree::SnapshotError::Invalid {
                what: "snapshot stream count does not match the shard",
                offset: 0,
            });
        }
        Ok(ReplicaNode {
            node,
            shard,
            members,
            backing: Backing::Memory(set),
            applied: applied.into_iter().collect(),
            arrivals,
        })
    }

    /// Export this replica's full shard state — `(arrivals, applied
    /// write ids ascending, snapshot bytes)` — the payload a leader
    /// ships to seed a standby.
    pub fn export(&self) -> (u64, Vec<u64>, Vec<u8>) {
        let mut applied: Vec<u64> = self.applied.iter().copied().collect();
        applied.sort_unstable();
        (self.arrivals, applied, self.backing.set().snapshot())
    }

    /// This node's id.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The shard index this node owns.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Global ids of the owned streams, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Rows applied (deduplicated).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// The underlying stream set (read-only).
    pub fn set(&self) -> &StreamSet {
        self.backing.set()
    }

    /// Order-sensitive digest over the owned trees — the oracle
    /// comparison hook.
    pub fn answers_digest(&self) -> u64 {
        self.backing.set().answers_digest()
    }

    /// Force WAL + checkpoint to disk (durable backing only). Called by
    /// the graceful-shutdown drain.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        match &mut self.backing {
            Backing::Memory(_) => Ok(()),
            Backing::Durable(d) => d.checkpoint(),
        }
    }

    /// The backing store's health: [`WireStoreHealth::Degraded`] when
    /// background segment flushes are parked on a disk fault (in-memory
    /// backings are always healthy).
    pub fn store_health(&self) -> crate::proto::WireStoreHealth {
        match &self.backing {
            Backing::Memory(_) => crate::proto::WireStoreHealth::Healthy,
            Backing::Durable(d) => match d.health() {
                swat_store::StoreHealth::Healthy => crate::proto::WireStoreHealth::Healthy,
                swat_store::StoreHealth::Degraded { parked, .. } => {
                    crate::proto::WireStoreHealth::Degraded {
                        parked: parked.min(u32::MAX as usize) as u32,
                    }
                }
            },
        }
    }

    /// The local index of global stream `g`, if this shard owns it.
    fn local_of(&self, g: u64) -> Option<usize> {
        usize::try_from(g)
            .ok()
            .and_then(|g| self.members.binary_search(&g).ok())
    }

    /// Serve one request. Leader-only requests get
    /// [`ErrorCode::WrongRole`]; everything else is total — no input
    /// panics.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::Hello { .. } => Response::HelloOk { node: self.node },
            Request::Ping { nonce } => Response::Pong { nonce: *nonce },
            Request::Ingest { req_id, row } => self.ingest(*req_id, row),
            Request::Point { stream, index } => self.point(*stream, *index),
            Request::Range {
                stream,
                center,
                radius,
                newest,
                oldest,
            } => self.range(*stream, *center, *radius, *newest, *oldest),
            Request::LocalTopK { k } => {
                let summary = local_top_k(self.backing.set(), &self.members, *k as usize);
                Response::LocalTopKR {
                    threshold: summary.threshold(),
                    truncated: summary.len() == *k as usize,
                    entries: summary.entries().to_vec(),
                }
            }
            Request::TopKScan { tau } => {
                let mut entries = Vec::new();
                for_each_root_coeff(self.backing.set(), &self.members, |c| {
                    if c.weight() >= *tau {
                        entries.push(c);
                    }
                });
                Response::ScanR { entries }
            }
            // Term and leader are cluster-level state the shard engine
            // does not track; `ClusterNode` answers Status itself and
            // fills them in — this arm only serves direct unit-level use.
            Request::Status => Response::StatusR {
                node: self.node,
                term: 0,
                leader: 0,
                arrivals: self.arrivals,
                replicas: Vec::new(),
                store: self.store_health(),
            },
            Request::Shutdown => Response::ShutdownOk { drained: 0 },
            // Distributed fan-out is the leader's job.
            Request::TopK { .. } => Response::ErrorR {
                code: ErrorCode::WrongRole,
            },
            // Fencing, claims, and replication control live a level up
            // in `ClusterNode`; the bare shard engine refuses them.
            Request::Fenced { .. }
            | Request::NewTerm { .. }
            | Request::Replicate { .. }
            | Request::FetchShard { .. }
            | Request::InstallShard { .. }
            | Request::Promote { .. } => Response::ErrorR {
                code: ErrorCode::WrongRole,
            },
        }
    }

    fn ingest(&mut self, req_id: u64, row: &[f64]) -> Response {
        if self.applied.contains(&req_id) {
            return Response::IngestOk {
                req_id,
                duplicate: true,
                failed_shards: Vec::new(),
            };
        }
        if row.len() != self.members.len() || row.iter().any(|v| !v.is_finite()) {
            return Response::ErrorR {
                code: ErrorCode::BadRequest,
            };
        }
        let applied = match &mut self.backing {
            Backing::Memory(set) => {
                set.push_row(row);
                true
            }
            Backing::Durable(store) => store.push_row(row).is_ok(),
        };
        if !applied {
            return Response::ErrorR {
                code: ErrorCode::Internal,
            };
        }
        self.applied.insert(req_id);
        self.arrivals += 1;
        Response::IngestOk {
            req_id,
            duplicate: false,
            failed_shards: Vec::new(),
        }
    }

    fn point(&mut self, stream: u64, index: u32) -> Response {
        let Some(local) = self.local_of(stream) else {
            return Response::ErrorR {
                code: ErrorCode::BadRequest,
            };
        };
        match self
            .backing
            .set()
            .tree(local)
            .point_with(index as usize, QueryOptions::default())
        {
            Ok(a) => Response::PointR {
                answer: WirePointAnswer::from(a),
            },
            Err(_) => Response::ErrorR {
                code: ErrorCode::BadRequest,
            },
        }
    }

    fn range(
        &mut self,
        stream: u64,
        center: f64,
        radius: f64,
        newest: u32,
        oldest: u32,
    ) -> Response {
        let Some(local) = self.local_of(stream) else {
            return Response::ErrorR {
                code: ErrorCode::BadRequest,
            };
        };
        if !(center.is_finite() && radius.is_finite() && radius >= 0.0) || newest > oldest {
            return Response::ErrorR {
                code: ErrorCode::BadRequest,
            };
        }
        let query = RangeQuery::new(center, radius, newest as usize, oldest as usize);
        match self.backing.set().tree(local).range_query(&query) {
            Ok(matches) => Response::RangeR {
                matches: matches.into_iter().map(Into::into).collect(),
            },
            Err(_) => Response::ErrorR {
                code: ErrorCode::BadRequest,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::shard_of;

    fn cfg() -> SwatConfig {
        SwatConfig::with_coefficients(16, 4).unwrap()
    }

    fn warm(node: &mut ReplicaNode, rows: usize) {
        let width = node.members().len();
        for r in 0..rows {
            let row: Vec<f64> = (0..width).map(|i| ((r * 7 + i * 3) % 11) as f64).collect();
            let resp = node.handle(&Request::Ingest {
                req_id: r as u64,
                row,
            });
            assert!(matches!(
                resp,
                Response::IngestOk {
                    duplicate: false,
                    ..
                }
            ));
        }
    }

    #[test]
    fn ingest_is_duplicate_safe() {
        let mut node = ReplicaNode::new(1, cfg(), 8, 2, 0);
        let width = node.members().len();
        let row = vec![1.0; width];
        let first = node.handle(&Request::Ingest {
            req_id: 9,
            row: row.clone(),
        });
        assert!(matches!(
            first,
            Response::IngestOk {
                duplicate: false,
                ..
            }
        ));
        let digest = node.answers_digest();
        let again = node.handle(&Request::Ingest { req_id: 9, row });
        assert!(matches!(
            again,
            Response::IngestOk {
                duplicate: true,
                ..
            }
        ));
        assert_eq!(node.answers_digest(), digest, "duplicate must not re-apply");
        assert_eq!(node.arrivals(), 1);
    }

    #[test]
    fn queries_match_direct_stream_set() {
        let mut node = ReplicaNode::new(1, cfg(), 10, 3, 1);
        warm(&mut node, 40);
        // The same state built directly.
        let members = shard_members(10, 3, 1);
        assert_eq!(node.members(), &members[..]);
        let mut set = StreamSet::new(cfg(), members.len());
        for r in 0..40 {
            let row: Vec<f64> = (0..members.len())
                .map(|i| ((r * 7 + i * 3) % 11) as f64)
                .collect();
            set.push_row(&row);
        }
        for (local, &global) in members.iter().enumerate() {
            assert_eq!(shard_of(global as u64, 3), 1);
            let want = set
                .tree(local)
                .point_with(3, QueryOptions::default())
                .unwrap();
            match node.handle(&Request::Point {
                stream: global as u64,
                index: 3,
            }) {
                Response::PointR { answer } => {
                    assert_eq!(answer.value.to_bits(), want.value.to_bits());
                    assert_eq!(answer.error_bound.to_bits(), want.error_bound.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(node.answers_digest(), set.answers_digest());
    }

    #[test]
    fn foreign_stream_and_bad_input_are_typed_errors() {
        let mut node = ReplicaNode::new(1, cfg(), 10, 3, 1);
        // A stream another shard owns.
        let foreign = (0..10)
            .find(|&g| shard_of(g as u64, 3) != 1)
            .expect("some stream routes elsewhere");
        assert_eq!(
            node.handle(&Request::Point {
                stream: foreign as u64,
                index: 0,
            }),
            Response::ErrorR {
                code: ErrorCode::BadRequest
            }
        );
        // Wrong arity.
        assert_eq!(
            node.handle(&Request::Ingest {
                req_id: 0,
                row: vec![1.0; 99],
            }),
            Response::ErrorR {
                code: ErrorCode::BadRequest
            }
        );
        // Leader-only request.
        assert_eq!(
            node.handle(&Request::TopK { k: 3 }),
            Response::ErrorR {
                code: ErrorCode::WrongRole
            }
        );
        // Inverted range interval must not panic.
        assert_eq!(
            node.handle(&Request::Range {
                stream: node.members()[0] as u64,
                center: 0.0,
                radius: 1.0,
                newest: 9,
                oldest: 2,
            }),
            Response::ErrorR {
                code: ErrorCode::BadRequest
            }
        );
    }

    #[test]
    fn disk_faulted_replica_reports_degraded_status() {
        let dir = std::env::temp_dir().join(format!("swatd-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let members = shard_members(8, 2, 0);
        let opts = swat_store::StoreOptions {
            freeze_rows: 4,
            retry_backoff: std::time::Duration::from_millis(1),
            ..swat_store::StoreOptions::default()
        };
        let flush_faults = opts.flush_faults.clone();
        let store = DurableStore::create_with(&dir, cfg(), members.len(), opts).unwrap();
        let mut node = ReplicaNode {
            node: 1,
            shard: 0,
            members,
            backing: Backing::Durable(store),
            applied: HashSet::new(),
            arrivals: 0,
        };
        assert_eq!(node.store_health(), crate::proto::WireStoreHealth::Healthy);

        // The disk dies under the background flusher; ingest continues
        // and Status surfaces the degradation instead of hiding it.
        flush_faults.kill();
        warm(&mut node, 20);
        // The drain barrier forces every parked flush to be attempted
        // and reports the failure as a typed error.
        let err = node.checkpoint().unwrap_err();
        assert!(
            matches!(err, StoreError::Degraded { parked, .. } if parked > 0),
            "checkpoint on a dead disk must report Degraded, got {err}"
        );
        let Response::StatusR { store, .. } = node.handle(&Request::Status) else {
            panic!("Status must answer StatusR");
        };
        assert!(
            matches!(store, crate::proto::WireStoreHealth::Degraded { .. }),
            "faulted flush path must surface as degraded, got {store}"
        );
        assert_eq!(node.arrivals(), 20, "ingest must continue while degraded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_replica_survives_restart() {
        let dir = std::env::temp_dir().join(format!("swatd-replica-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut node = ReplicaNode::durable(1, cfg(), 8, 2, 0, &dir).unwrap();
        warm(&mut node, 20);
        let digest = node.answers_digest();
        let arrivals = node.arrivals();
        node.checkpoint().unwrap();
        drop(node);
        let back = ReplicaNode::durable(1, cfg(), 8, 2, 0, &dir).unwrap();
        assert_eq!(back.answers_digest(), digest);
        assert_eq!(back.arrivals(), arrivals);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
