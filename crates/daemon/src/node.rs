//! The cluster node: every `swatd` process is one of these.
//!
//! A [`ClusterNode`] wraps the shard holdings a node currently serves
//! (each a [`ReplicaNode`]), the node's term/leader view, and — while
//! the node leads — the [`LeaderCore`] routing machine. Like the layers
//! below it, it is strictly sans-io: [`ClusterNode::handle`] answers any
//! wire request that can be answered locally, and the election / repair
//! / rejoin protocols are expressed as *plans* ([`PeerCall`] lists) the
//! driver delivers, feeding results back into the matching `finish_*`.
//! The threaded TCP server and the deterministic failover simulator are
//! both thin drivers around this type, which is what makes every
//! failover schedule replayable from a seed.
//!
//! # The fencing discipline
//!
//! Every intra-cluster request carries the sender's term (and, for
//! shard traffic, the shard's configuration epoch). [`ClusterNode::
//! handle`] enforces one rule before anything else: **a node never acts
//! on a term older than the newest it has durably adopted**, and it
//! adopts a newer term only after persisting it ([`swat_store::
//! NodeMeta`]). Combined with residue-class term ownership
//! ([`crate::failover::term_owner`]) this makes split-brain structurally
//! impossible: no two nodes can ever lead the same term, and a deposed
//! leader's traffic is rejected with [`Response::StaleTermR`] by any
//! node that has seen the successor.

use std::collections::BTreeMap;
use std::path::PathBuf;

use swat_store::NodeMeta;
use swat_tree::SwatConfig;

use crate::cluster::{LeaderCore, PeerCall};
use crate::failover::{next_term, term_owner, Assignment, ShardSlot};
use crate::proto::{ErrorCode, Request, Response, WireHolding, NO_SHARD};
use crate::registry::ReplicaRegistry;
use swat_net::NodeRole;
use swat_tree::shard_members;

/// One shard this node currently holds, in some role.
struct Holding {
    rep: crate::replica::ReplicaNode,
    /// The configuration epoch the holding is current at.
    epoch: u64,
    /// Primary (serves queries) vs standby (absorbs replication only).
    primary: bool,
}

/// A full cluster node: holdings + term view + (maybe) the leader core.
pub struct ClusterNode {
    id: u64,
    nodes: u64,
    streams: usize,
    shards: usize,
    miss_threshold: u32,
    term: u64,
    leader: u64,
    holdings: BTreeMap<usize, Holding>,
    lead: Option<LeaderCore>,
    /// Where the durable [`NodeMeta`] record lives, if anywhere.
    meta_dir: Option<PathBuf>,
    /// Shards whose current primary may not have adopted the slot's
    /// epoch yet — the repair loop re-sends `Promote` until acked.
    pending_promote: std::collections::BTreeSet<usize>,
    /// An in-flight standby installation: `(shard, target, epoch)`.
    /// While set, the shard's standby legs are expected to fail and are
    /// exempt from the drop-faulty-standby rule.
    installing: Option<(usize, u64, u64)>,
}

impl ClusterNode {
    /// The bootstrap leader: node 0 of a `shards + 1`-node cluster,
    /// leading term 0, holding no shards itself. `standbys` selects the
    /// ring assignment (each replica primary of one shard, standby of
    /// its neighbour's) over the PR 7 solo layout.
    pub fn bootstrap_leader(
        _config: SwatConfig,
        streams: usize,
        shards: usize,
        miss_threshold: u32,
        standbys: bool,
    ) -> ClusterNode {
        ClusterNode {
            id: 0,
            nodes: shards as u64 + 1,
            streams,
            shards,
            miss_threshold,
            term: 0,
            leader: 0,
            holdings: BTreeMap::new(),
            lead: Some(LeaderCore::bootstrap(
                streams,
                shards,
                miss_threshold,
                standbys,
            )),
            meta_dir: None,
            pending_promote: std::collections::BTreeSet::new(),
            installing: None,
        }
    }

    /// A bootstrap replica: node `id ∈ 1..=shards`, primary of shard
    /// `id - 1` and — with `standbys` on and more than one shard —
    /// standby of the ring-predecessor shard, all in memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is 0 or beyond the cluster.
    pub fn replica(
        id: u64,
        config: SwatConfig,
        streams: usize,
        shards: usize,
        miss_threshold: u32,
        standbys: bool,
    ) -> ClusterNode {
        assert!(id >= 1 && id <= shards as u64, "replica ids are 1..=shards");
        let mut node = ClusterNode {
            id,
            nodes: shards as u64 + 1,
            streams,
            shards,
            miss_threshold,
            term: 0,
            leader: 0,
            holdings: BTreeMap::new(),
            lead: None,
            meta_dir: None,
            pending_promote: std::collections::BTreeSet::new(),
            installing: None,
        };
        let home = id as usize - 1;
        node.holdings.insert(
            home,
            Holding {
                rep: crate::replica::ReplicaNode::new(id, config, streams, shards, home),
                epoch: 0,
                primary: true,
            },
        );
        if standbys && shards > 1 {
            // The shard whose ring standby is this node.
            let guarded = (id as usize + shards - 2) % shards;
            node.holdings.insert(
                guarded,
                Holding {
                    rep: crate::replica::ReplicaNode::new(id, config, streams, shards, guarded),
                    epoch: 0,
                    primary: false,
                },
            );
        }
        node
    }

    /// Like [`ClusterNode::replica`] but with the home shard durable
    /// under `dir` and the node's term/epoch record persisted there as a
    /// [`NodeMeta`] image. Standby holdings stay in memory: they are
    /// warm copies the leader can always re-seed from the primary, so
    /// the WAL cost is spent only on the shard this node answers for.
    ///
    /// # Errors
    ///
    /// Any [`swat_store::StoreError`] from store recovery/creation or a
    /// corrupt meta image.
    pub fn durable_replica(
        id: u64,
        config: SwatConfig,
        streams: usize,
        shards: usize,
        miss_threshold: u32,
        standbys: bool,
        dir: PathBuf,
    ) -> Result<ClusterNode, swat_store::StoreError> {
        let mut node = ClusterNode::replica(id, config, streams, shards, miss_threshold, standbys);
        let home = id as usize - 1;
        // invariant: replica() above always seeds the home shard holding.
        node.holdings
            .get_mut(&home)
            .expect("home holding exists")
            .rep = crate::replica::ReplicaNode::durable(id, config, streams, shards, home, &dir)?;
        if let Some(meta) = NodeMeta::load(&dir)? {
            node.term = meta.term;
            node.leader = meta.leader;
            for (shard, epoch) in meta.epochs {
                if let Some(h) = node.holdings.get_mut(&(shard as usize)) {
                    h.epoch = epoch;
                }
            }
        }
        node.meta_dir = Some(dir);
        Ok(node)
    }

    /// Attach a durable [`NodeMeta`] record under `dir` (creating none
    /// until the first term/epoch change). If a record exists, its
    /// term/leader view is adopted — and if that view shows the cluster
    /// ever moved past bootstrap, a node that *was* leading boots as a
    /// follower instead: its in-memory leader state is gone, so the
    /// safe restart is to wait, get fenced up to date, and re-claim only
    /// if the cluster is actually silent.
    ///
    /// # Errors
    ///
    /// A corrupt meta image ([`swat_store::StoreError::Corrupt`]).
    pub fn with_meta_dir(mut self, dir: PathBuf) -> Result<Self, swat_store::StoreError> {
        if let Some(meta) = NodeMeta::load(&dir)? {
            self.term = meta.term;
            self.leader = meta.leader;
            for (shard, epoch) in meta.epochs {
                if let Some(h) = self.holdings.get_mut(&(shard as usize)) {
                    h.epoch = epoch;
                }
            }
            if !(self.term == 0 && self.leader == self.id) {
                self.lead = None;
            }
        }
        self.meta_dir = Some(dir);
        Ok(self)
    }

    /// This node's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cluster size (leader slot included).
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// The newest term this node has adopted.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Who this node believes leads [`ClusterNode::term`].
    pub fn leader_id(&self) -> u64 {
        self.leader
    }

    /// Whether this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.lead.is_some()
    }

    /// The leader core, while leading.
    pub fn lead(&self) -> Option<&LeaderCore> {
        self.lead.as_ref()
    }

    /// Mutable leader core, while leading.
    pub fn lead_mut(&mut self) -> Option<&mut LeaderCore> {
        self.lead.as_mut()
    }

    /// Every other node's id, ascending — the claim/heartbeat fan-out.
    pub fn peer_ids(&self) -> Vec<u64> {
        (0..self.nodes).filter(|&n| n != self.id).collect()
    }

    /// Rows applied to the primary holding this node answers for
    /// (0 when it holds no primary) — the replica `Status` arrivals.
    pub fn arrivals(&self) -> u64 {
        self.holdings
            .values()
            .find(|h| h.primary)
            .map_or(0, |h| h.rep.arrivals())
    }

    /// The answers digest of this node's holding of `shard`, if any —
    /// the oracle-comparison hook the failover tests use.
    pub fn holding_digest(&self, shard: usize) -> Option<u64> {
        self.holdings.get(&shard).map(|h| h.rep.answers_digest())
    }

    /// Force every durable holding's WAL + checkpoint to disk (the
    /// graceful-shutdown drain).
    ///
    /// # Errors
    ///
    /// The first [`swat_store::StoreError`] any holding reports.
    pub fn checkpoint(&mut self) -> Result<(), swat_store::StoreError> {
        for h in self.holdings.values_mut() {
            h.rep.checkpoint()?;
        }
        Ok(())
    }

    /// Aggregate durable-store health across this node's holdings:
    /// degraded as soon as any holding has parked flush generations,
    /// with the parked counts summed.
    pub fn store_health(&self) -> crate::proto::WireStoreHealth {
        let mut parked: u32 = 0;
        let mut degraded = false;
        for h in self.holdings.values() {
            if let crate::proto::WireStoreHealth::Degraded { parked: p } = h.rep.store_health() {
                // A broken WAL reports degraded with zero parked
                // generations, so the flag is tracked separately.
                degraded = true;
                parked = parked.saturating_add(p);
            }
        }
        if degraded {
            crate::proto::WireStoreHealth::Degraded { parked }
        } else {
            crate::proto::WireStoreHealth::Healthy
        }
    }

    /// Persist the current term/leader/epochs, when durably backed.
    fn persist_meta(&self) -> Result<(), swat_store::StoreError> {
        let Some(dir) = &self.meta_dir else {
            return Ok(());
        };
        let meta = NodeMeta {
            term: self.term,
            leader: self.leader,
            epochs: self
                .holdings
                .iter()
                .map(|(&s, h)| (s as u32, h.epoch))
                .collect(),
        };
        meta.save(dir)
    }

    /// Adopt `(term, leader)` — durably, before acting on it. Newer
    /// terms depose a local leader core. No-op when not newer.
    fn adopt(&mut self, term: u64, leader: u64) -> Result<(), swat_store::StoreError> {
        if term <= self.term {
            return Ok(());
        }
        let (old_term, old_leader) = (self.term, self.leader);
        self.term = term;
        self.leader = leader;
        if let Err(e) = self.persist_meta() {
            // Never act on an unpersisted term: roll back.
            self.term = old_term;
            self.leader = old_leader;
            return Err(e);
        }
        self.lead = None;
        self.pending_promote.clear();
        self.installing = None;
        Ok(())
    }

    /// A fan-out reported [`Response::StaleTermR`]: someone leads a
    /// newer term. Adopt it and (if leading) step down. The driver calls
    /// this with the output of [`crate::cluster::stale_term_in`].
    pub fn observe_stale_term(&mut self, term: u64, leader: u64) {
        // A forged pair (leader not entitled to the term) is ignored.
        if term_owner(self.nodes, term) == leader {
            let _ = self.adopt(term, leader);
        }
    }

    /// Term gate for intra-cluster traffic: reject older terms, adopt
    /// newer ones (durably) first. `leader` is the sender's claim; it
    /// must match the term's residue owner or the message is forged.
    fn fence_term(&mut self, term: u64, leader: u64) -> Result<(), Response> {
        let stale = || Response::StaleTermR {
            term: self.term,
            leader: self.leader,
        };
        if term < self.term || leader != term_owner(self.nodes, term) {
            return Err(stale());
        }
        if term == self.term && leader != self.leader && term > 0 {
            // Same term, different leader can only be a forgery —
            // residues make the owner unique. (Term 0 bootstraps with
            // leader 0 everywhere, so the check is vacuous there.)
            return Err(stale());
        }
        self.adopt(term, leader).map_err(|_| Response::ErrorR {
            code: ErrorCode::Internal,
        })
    }

    /// Epoch gate for shard traffic, after the term gate.
    fn fence_epoch(&self, shard: usize, epoch: u64) -> Result<(), Response> {
        let held = self
            .holdings
            .get(&shard)
            .map(|h| h.epoch)
            .ok_or(Response::ErrorR {
                code: ErrorCode::WrongRole,
            })?;
        if epoch != held {
            return Err(Response::StaleEpochR {
                shard: shard as u32,
                epoch: held,
            });
        }
        Ok(())
    }

    /// This node's holdings as wire records (the `SyncR` payload).
    fn wire_holdings(&self) -> Vec<WireHolding> {
        self.holdings
            .iter()
            .map(|(&shard, h)| WireHolding {
                shard: shard as u32,
                epoch: h.epoch,
                primary: h.primary,
                arrivals: h.rep.arrivals(),
            })
            .collect()
    }

    /// Serve one request locally. Client data requests while this node
    /// is *not* leading answer [`Response::NotLeaderR`] with the best
    /// known hint; while leading, the driver routes them through the
    /// [`LeaderCore`] fan instead of this method.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::Hello { .. } => Response::HelloOk { node: self.id },
            Request::Ping { nonce } => Response::Pong { nonce: *nonce },
            Request::Status => Response::StatusR {
                node: self.id,
                term: self.term,
                leader: self.leader,
                arrivals: self.arrivals(),
                replicas: self
                    .lead
                    .as_ref()
                    .map_or_else(Vec::new, |l| l.registry().statuses()),
                store: self.store_health(),
            },
            // The server intercepts Shutdown to drain; answering here
            // keeps the machine total.
            Request::Shutdown => Response::ShutdownOk { drained: 0 },
            Request::Fenced {
                term,
                leader,
                shard,
                epoch,
                inner,
            } => {
                if let Err(r) = self.fence_term(*term, *leader) {
                    return r;
                }
                if *shard == NO_SHARD {
                    // Node-level traffic (heartbeats): term-fenced only.
                    return self.handle(inner);
                }
                let shard = *shard as usize;
                if let Err(r) = self.fence_epoch(shard, *epoch) {
                    return r;
                }
                // invariant: fence_epoch verified the holding exists.
                let h = self.holdings.get_mut(&shard).expect("holding checked");
                if !h.primary {
                    // Shard traffic belongs on the primary; a leader
                    // addressing a standby has a stale assignment.
                    return Response::ErrorR {
                        code: ErrorCode::WrongRole,
                    };
                }
                h.rep.handle(inner)
            }
            Request::NewTerm { term, leader } => {
                if *term <= self.term || *leader != term_owner(self.nodes, *term) {
                    return Response::StaleTermR {
                        term: self.term,
                        leader: self.leader,
                    };
                }
                match self.adopt(*term, *leader) {
                    Ok(()) => Response::SyncR {
                        term: self.term,
                        holdings: self.wire_holdings(),
                    },
                    Err(_) => Response::ErrorR {
                        code: ErrorCode::Internal,
                    },
                }
            }
            Request::Replicate {
                term,
                shard,
                epoch,
                req_id,
                row,
            } => {
                if let Err(r) = self.fence_term(*term, term_owner(self.nodes, *term)) {
                    return r;
                }
                let shard = *shard as usize;
                if let Err(r) = self.fence_epoch(shard, *epoch) {
                    return r;
                }
                // invariant: fence_epoch verified the holding exists.
                let h = self.holdings.get_mut(&shard).expect("holding checked");
                if h.primary {
                    // Replication lands on standbys only.
                    return Response::ErrorR {
                        code: ErrorCode::WrongRole,
                    };
                }
                h.rep.handle(&Request::Ingest {
                    req_id: *req_id,
                    row: row.clone(),
                })
            }
            Request::FetchShard { term, shard } => {
                if let Err(r) = self.fence_term(*term, term_owner(self.nodes, *term)) {
                    return r;
                }
                match self.holdings.get(&(*shard as usize)) {
                    Some(h) if h.primary => {
                        let (arrivals, applied, snapshot) = h.rep.export();
                        Response::ShardStateR {
                            shard: *shard,
                            epoch: h.epoch,
                            arrivals,
                            applied,
                            snapshot,
                        }
                    }
                    _ => Response::ErrorR {
                        code: ErrorCode::WrongRole,
                    },
                }
            }
            Request::InstallShard {
                term,
                shard,
                epoch,
                arrivals,
                applied,
                snapshot,
            } => {
                if let Err(r) = self.fence_term(*term, term_owner(self.nodes, *term)) {
                    return r;
                }
                let shard_ix = *shard as usize;
                if shard_ix >= self.shards {
                    return Response::ErrorR {
                        code: ErrorCode::BadRequest,
                    };
                }
                match crate::replica::ReplicaNode::install(
                    self.id,
                    self.streams,
                    self.shards,
                    shard_ix,
                    *arrivals,
                    applied.clone(),
                    snapshot,
                ) {
                    Ok(rep) => {
                        // Overwrites any stale holding: the installed
                        // copy *is* the node's state for this shard now.
                        self.holdings.insert(
                            shard_ix,
                            Holding {
                                rep,
                                epoch: *epoch,
                                primary: false,
                            },
                        );
                        match self.persist_meta() {
                            Ok(()) => Response::EpochAck {
                                shard: *shard,
                                epoch: *epoch,
                            },
                            Err(_) => Response::ErrorR {
                                code: ErrorCode::Internal,
                            },
                        }
                    }
                    Err(_) => Response::ErrorR {
                        code: ErrorCode::BadRequest,
                    },
                }
            }
            Request::Promote { term, shard, epoch } => {
                if let Err(r) = self.fence_term(*term, term_owner(self.nodes, *term)) {
                    return r;
                }
                let shard_ix = *shard as usize;
                let Some(h) = self.holdings.get_mut(&shard_ix) else {
                    // Nothing to promote: the holder lost the shard
                    // (e.g. restarted without durability). The leader
                    // escalates to the standby on seeing this.
                    return Response::ErrorR {
                        code: ErrorCode::WrongRole,
                    };
                };
                if *epoch < h.epoch {
                    return Response::StaleEpochR {
                        shard: *shard,
                        epoch: h.epoch,
                    };
                }
                h.epoch = *epoch;
                h.primary = true;
                match self.persist_meta() {
                    Ok(()) => Response::EpochAck {
                        shard: *shard,
                        epoch: *epoch,
                    },
                    Err(_) => Response::ErrorR {
                        code: ErrorCode::Internal,
                    },
                }
            }
            // Client data requests: only the leader routes them.
            Request::Ingest { .. }
            | Request::Point { .. }
            | Request::Range { .. }
            | Request::TopK { .. } => Response::NotLeaderR {
                leader: self.leader,
                term: self.term,
            },
            // Shard-internal requests must arrive fenced.
            Request::LocalTopK { .. } | Request::TopKScan { .. } => Response::ErrorR {
                code: ErrorCode::WrongRole,
            },
        }
    }

    // ------------------------------------------------------------------
    // Elections
    // ------------------------------------------------------------------

    /// Claim leadership: durably adopt the next term in this node's
    /// residue class and return the claim to fan out to every peer. The
    /// node is *not* leading yet — [`ClusterNode::finish_claim`] builds
    /// the core from the peers' sync replies.
    ///
    /// # Errors
    ///
    /// The meta write failed; the claim must not proceed (an unpersisted
    /// term could regress across a restart and break monotonicity).
    pub fn begin_claim(&mut self) -> Result<Request, swat_store::StoreError> {
        let term = next_term(self.nodes, self.term, self.id);
        let (old_term, old_leader) = (self.term, self.leader);
        self.term = term;
        self.leader = self.id;
        if let Err(e) = self.persist_meta() {
            self.term = old_term;
            self.leader = old_leader;
            return Err(e);
        }
        self.lead = None;
        self.pending_promote.clear();
        self.installing = None;
        Ok(Request::NewTerm {
            term,
            leader: self.id,
        })
    }

    /// Complete a claim from the peers' replies (`reports[i]` answers
    /// the claim sent to peer `reports[i].0`; `None` = unreachable).
    /// Rebuilds the assignment from every reported holding — highest
    /// epoch wins; a shard whose newest holding is standby-only is
    /// promoted under a bumped epoch; a shard nobody reported goes
    /// unavailable — and returns the `Promote` calls that re-anchor
    /// every serving primary at its slot's epoch. Returns `None` (no
    /// calls, not leading) when a newer term was observed instead: the
    /// claim lost and the node has already adopted the winner.
    pub fn finish_claim(
        &mut self,
        now: u64,
        reports: &[(u64, Option<Response>)],
    ) -> Option<Vec<PeerCall>> {
        // The claim is already dead if some newer term was adopted
        // between begin_claim and now (e.g. the winner's NewTerm was
        // handled on this node): leading a term we no longer own would
        // be split-brain.
        if self.leader != self.id || term_owner(self.nodes, self.term) != self.id {
            return None;
        }
        // A newer claim beats ours: adopt it and bow out.
        if let Some((term, leader)) = reports
            .iter()
            .filter_map(|(_, r)| match r {
                Some(Response::StaleTermR { term, leader }) if *term > self.term => {
                    Some((*term, *leader))
                }
                _ => None,
            })
            .max()
        {
            self.observe_stale_term(term, leader);
            return None;
        }
        let mut registry = ReplicaRegistry::tracking(self.peer_ids(), self.miss_threshold);
        // (node, holding) candidates, own holdings included.
        let mut candidates: Vec<(u64, WireHolding)> = self
            .wire_holdings()
            .into_iter()
            .map(|h| (self.id, h))
            .collect();
        for (peer, report) in reports {
            match report {
                Some(Response::SyncR { term, holdings }) if *term == self.term => {
                    for &h in holdings {
                        candidates.push((*peer, h));
                    }
                }
                _ => {
                    // No sync, no vote of life: dead until it rejoins.
                    registry.record_dead(now, *peer);
                }
            }
        }
        let mut slots = Vec::with_capacity(self.shards);
        let mut promoted: Vec<(usize, u64)> = Vec::new();
        for shard in 0..self.shards {
            let of_shard: Vec<&(u64, WireHolding)> = candidates
                .iter()
                .filter(|(_, h)| h.shard as usize == shard)
                .collect();
            let emax = of_shard.iter().map(|(_, h)| h.epoch).max();
            let slot = match emax {
                None => ShardSlot {
                    // Total loss: unavailable under a fresh epoch so any
                    // straggler holding stays fenced out.
                    epoch: 1,
                    primary: None,
                    standby: None,
                },
                Some(emax) => {
                    let at = |primary: bool| {
                        of_shard
                            .iter()
                            .filter(|(_, h)| h.epoch == emax && h.primary == primary)
                            .map(|(n, _)| *n)
                            .min()
                    };
                    match (at(true), at(false)) {
                        (Some(p), standby) => ShardSlot {
                            epoch: emax,
                            primary: Some(p),
                            standby,
                        },
                        (None, Some(s)) => {
                            promoted.push((shard, s));
                            ShardSlot {
                                epoch: emax + 1,
                                primary: Some(s),
                                standby: None,
                            }
                        }
                        (None, None) => ShardSlot {
                            epoch: emax + 1,
                            primary: None,
                            standby: None,
                        },
                    }
                }
            };
            slots.push(slot);
        }
        for &(_, node) in &promoted {
            if registry.tracks(node) {
                registry.note_role_change(now, node, NodeRole::Primary);
            }
        }
        // A conservative fully-acked floor for Status reporting: no
        // primary can have fewer rows than the acked prefix.
        let complete_rows = slots
            .iter()
            .filter_map(|s| s.primary)
            .map(|p| {
                candidates
                    .iter()
                    .filter(|(n, h)| *n == p && h.primary)
                    .map(|(_, h)| h.arrivals)
                    .max()
                    .unwrap_or(0)
            })
            .min()
            .unwrap_or(0);
        let assignment = Assignment::from_slots(slots);
        let calls: Vec<PeerCall> = assignment
            .iter()
            .filter_map(|(shard, slot)| {
                slot.primary.map(|node| PeerCall {
                    node,
                    shard,
                    standby_leg: false,
                    request: Request::Promote {
                        term: self.term,
                        shard: shard as u32,
                        epoch: slot.epoch,
                    },
                })
            })
            .collect();
        self.pending_promote = calls.iter().map(|c| c.shard).collect();
        self.lead = Some(LeaderCore::rebuilt(
            self.id,
            self.term,
            self.streams,
            self.shards,
            registry,
            assignment,
            complete_rows,
        ));
        Some(calls)
    }

    // ------------------------------------------------------------------
    // Repair (leader only)
    // ------------------------------------------------------------------

    /// One repair pass: promote standbys around dead/faulty primaries,
    /// drop dead/faulty standbys, and re-send `Promote` to any primary
    /// whose epoch adoption is still unacknowledged. Call after the
    /// heartbeat round has updated the registry; deliver the returned
    /// calls and feed the results to [`ClusterNode::finish_repair`].
    /// Empty when not leading.
    pub fn repair_plan(&mut self, now: u64) -> Vec<PeerCall> {
        let Some(lead) = self.lead.as_mut() else {
            return Vec::new();
        };
        let self_id = self.id;
        let installing_shard = self.installing.map(|(s, _, _)| s);
        let dead = |lead: &LeaderCore, n: u64| {
            n != self_id
                && lead.registry().tracks(n)
                && lead.registry().health(n) == crate::proto::WireHealth::Dead
        };
        let primary_faults = lead.take_primary_faults();
        let standby_faults = lead.take_standby_faults();
        for shard in 0..lead.map().shards() {
            let slot = lead.assignment().slot(shard);
            // Dead or repeatedly faulty primary: fail over to the
            // standby (or go explicitly unavailable).
            let p_dead = slot.primary.is_some_and(|p| dead(lead, p));
            if p_dead {
                let standby_usable = slot.standby.is_some_and(|s| s == self_id || !dead(lead, s));
                if !standby_usable && slot.standby.is_some() {
                    lead.assignment_mut().drop_standby(shard);
                }
                let promoted = lead.assignment_mut().promote_standby(shard);
                self.pending_promote.insert(shard);
                if let Some(new_slot) = promoted {
                    if let Some(p) = new_slot.primary {
                        if lead.registry().tracks(p) {
                            lead.registry_mut()
                                .note_role_change(now, p, NodeRole::Primary);
                        }
                    }
                }
                if self.installing.map(|(s, _, _)| s) == Some(shard) {
                    self.installing = None;
                }
                continue;
            }
            // A live primary that answered with a typed error or a
            // stale epoch: re-anchor it with a fresh Promote.
            if primary_faults.contains(&shard) && slot.primary.is_some() {
                self.pending_promote.insert(shard);
            }
            // Dead or faulty standby: drop it so rows ack on the
            // primary alone — unless it is mid-installation, where
            // failing legs are expected until the copy lands.
            let s_dead = slot.standby.is_some_and(|s| dead(lead, s));
            let s_fault = standby_faults.contains(&shard) && installing_shard != Some(shard);
            if (s_dead || s_fault) && slot.standby.is_some() {
                lead.assignment_mut().drop_standby(shard);
                self.pending_promote.insert(shard);
                if self.installing.map(|(s, _, _)| s) == Some(shard) {
                    self.installing = None;
                }
            }
        }
        let term = self.term;
        self.pending_promote
            .iter()
            .filter_map(|&shard| {
                let slot = lead.assignment().slot(shard);
                slot.primary.map(|node| PeerCall {
                    node,
                    shard,
                    standby_leg: false,
                    request: Request::Promote {
                        term,
                        shard: shard as u32,
                        epoch: slot.epoch,
                    },
                })
            })
            .collect()
    }

    /// Absorb a repair round's results. A `Promote` that a primary
    /// refuses with a typed error escalates to standby promotion (the
    /// holder lost the shard); an unreachable target is a registry miss.
    pub fn finish_repair(&mut self, now: u64, calls: &[PeerCall], results: &[Option<Response>]) {
        debug_assert_eq!(calls.len(), results.len());
        let self_id = self.id;
        for (call, result) in calls.iter().zip(results) {
            let Some(lead) = self.lead.as_mut() else {
                return;
            };
            match result {
                Some(Response::EpochAck { shard, epoch }) => {
                    let shard = *shard as usize;
                    if lead.assignment().slot(shard).epoch == *epoch {
                        self.pending_promote.remove(&shard);
                    }
                    if call.node != self_id && lead.registry().tracks(call.node) {
                        lead.registry_mut().record_success(now, call.node);
                    }
                }
                Some(Response::StaleTermR { term, leader }) => {
                    let (term, leader) = (*term, *leader);
                    self.observe_stale_term(term, leader);
                }
                Some(_) => {
                    // The named primary cannot serve the shard (it lost
                    // the holding, or its epoch ran ahead under a
                    // leader we have since fenced out): fail over.
                    if lead.assignment().slot(call.shard).primary == Some(call.node) {
                        let promoted = lead.assignment_mut().promote_standby(call.shard);
                        self.pending_promote.insert(call.shard);
                        if let Some(slot) = promoted {
                            if let Some(p) = slot.primary {
                                if lead.registry().tracks(p) {
                                    lead.registry_mut()
                                        .note_role_change(now, p, NodeRole::Primary);
                                }
                            }
                        }
                    }
                }
                None => {
                    if call.node != self_id && lead.registry().tracks(call.node) {
                        lead.registry_mut().record_failure(now, call.node);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Rejoin: re-seeding a standby from the primary
    // ------------------------------------------------------------------

    /// If some shard lacks a standby and a live spare node could host
    /// one, start the installation: the standby is added to the
    /// assignment *first* (so no row can ack without it from here on),
    /// then the primary's state is fetched and shipped. Returns the
    /// `[Promote to primary, FetchShard to primary]` calls to deliver in
    /// order, results to [`ClusterNode::finish_fetch`]. At most one
    /// installation is in flight at a time.
    pub fn rejoin_plan(&mut self, now: u64) -> Option<Vec<PeerCall>> {
        if self.installing.is_some() {
            return None;
        }
        let self_id = self.id;
        let lead = self.lead.as_mut()?;
        let alive = |lead: &LeaderCore, n: u64| {
            n == self_id
                || (lead.registry().tracks(n)
                    && lead.registry().health(n) != crate::proto::WireHealth::Dead)
        };
        // Spares: live nodes holding no role in any slot.
        let spare = (0..self.nodes)
            .find(|&n| alive(lead, n) && lead.assignment().roles_of(n).is_empty())?;
        let shard = lead.assignment().iter().find_map(|(shard, slot)| {
            (slot.standby.is_none()
                && slot.primary.is_some_and(|p| p != spare && alive(lead, p))
                && !self.pending_promote.contains(&shard))
            .then_some(shard)
        })?;
        let slot = lead.assignment_mut().set_standby(shard, spare);
        if lead.registry().tracks(spare) {
            lead.registry_mut()
                .note_role_change(now, spare, NodeRole::Standby);
        }
        self.installing = Some((shard, spare, slot.epoch));
        // invariant: set_standby keeps the primary untouched.
        let primary = slot.primary.expect("primary chosen above");
        let term = self.term;
        Some(vec![
            PeerCall {
                node: primary,
                shard,
                standby_leg: false,
                request: Request::Promote {
                    term,
                    shard: shard as u32,
                    epoch: slot.epoch,
                },
            },
            PeerCall {
                node: primary,
                shard,
                standby_leg: false,
                request: Request::FetchShard {
                    term,
                    shard: shard as u32,
                },
            },
        ])
    }

    /// Absorb the fetch round: on a good export, returns the
    /// `InstallShard` call to ship to the standby-elect (results to
    /// [`ClusterNode::finish_install`]); on failure the installation is
    /// rolled back (standby dropped under a bumped epoch).
    pub fn finish_fetch(
        &mut self,
        now: u64,
        calls: &[PeerCall],
        results: &[Option<Response>],
    ) -> Option<PeerCall> {
        self.finish_repair(now, &calls[..1], &results[..1]);
        let (shard, target, epoch) = self.installing?;
        match results.get(1).and_then(|r| r.as_ref()) {
            Some(Response::ShardStateR {
                shard: s,
                arrivals,
                applied,
                snapshot,
                ..
            }) if *s as usize == shard => Some(PeerCall {
                node: target,
                shard,
                standby_leg: true,
                request: Request::InstallShard {
                    term: self.term,
                    shard: shard as u32,
                    epoch,
                    arrivals: *arrivals,
                    applied: applied.clone(),
                    snapshot: snapshot.clone(),
                },
            }),
            _ => {
                self.abort_install(now);
                None
            }
        }
    }

    /// Absorb the installation ack: on success the standby is live (all
    /// future rows require it); on failure the assignment rolls back.
    pub fn finish_install(&mut self, now: u64, result: Option<Response>) {
        let Some((shard, target, epoch)) = self.installing else {
            return;
        };
        match result {
            Some(Response::EpochAck { shard: s, epoch: e })
                if s as usize == shard && e == epoch =>
            {
                self.installing = None;
                if let Some(lead) = self.lead.as_mut() {
                    if lead.registry().tracks(target) {
                        lead.registry_mut().record_success(now, target);
                    }
                }
            }
            Some(Response::StaleTermR { term, leader }) => {
                self.observe_stale_term(term, leader);
            }
            _ => self.abort_install(now),
        }
    }

    fn abort_install(&mut self, _now: u64) {
        if let Some((shard, _, _)) = self.installing.take() {
            if let Some(lead) = self.lead.as_mut() {
                if lead.assignment().slot(shard).standby.is_some() {
                    lead.assignment_mut().drop_standby(shard);
                    self.pending_promote.insert(shard);
                }
            }
        }
    }

    /// The stream count (for drivers sizing rows).
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Global ids of the streams `shard` owns (driver convenience).
    pub fn shard_members_of(&self, shard: usize) -> Vec<usize> {
        shard_members(self.streams, self.shards, shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Plan;
    use crate::proto::WireHealth;

    fn cfg() -> SwatConfig {
        SwatConfig::with_coefficients(16, 4).unwrap()
    }

    /// Deliver `calls` to the in-memory nodes, self-routing included.
    fn deliver(nodes: &mut [ClusterNode], calls: &[PeerCall]) -> Vec<Option<Response>> {
        calls
            .iter()
            .map(|c| {
                nodes
                    .iter_mut()
                    .find(|n| n.id() == c.node)
                    .map(|n| n.handle(&c.request))
            })
            .collect()
    }

    fn three_node_ring() -> Vec<ClusterNode> {
        vec![
            ClusterNode::bootstrap_leader(cfg(), 8, 2, 2, true),
            ClusterNode::replica(1, cfg(), 8, 2, 2, true),
            ClusterNode::replica(2, cfg(), 8, 2, 2, true),
        ]
    }

    /// Run one client request through the leader at `nodes[leader]`.
    fn run(nodes: &mut [ClusterNode], leader: usize, req: &Request) -> Response {
        let plan = nodes[leader].lead().expect("leading").plan(req);
        match plan {
            Plan::Done(r) => r,
            Plan::Fan(calls) => {
                let results = deliver_skip(nodes, leader, &calls);
                let lead = nodes[leader].lead_mut().unwrap();
                match req {
                    Request::Ingest { req_id, .. } => lead.finish_ingest(*req_id, &calls, &results),
                    Request::Point { .. } | Request::Range { .. } => {
                        lead.finish_routed(&calls[0], results.into_iter().next().flatten())
                    }
                    Request::TopK { k } => {
                        let (_, refines) = lead.plan_topk_round2(*k, &calls, &results);
                        let scan_results = deliver_skip(nodes, leader, &refines);
                        let shards: Vec<(usize, Option<Response>)> =
                            refines.iter().map(|c| c.shard).zip(scan_results).collect();
                        nodes[leader]
                            .lead_mut()
                            .unwrap()
                            .finish_topk(*k, &calls, &results, &shards)
                    }
                    other => panic!("no fan merge for {other:?}"),
                }
            }
        }
    }

    /// Deliver, but route self-calls through the leader node too.
    fn deliver_skip(
        nodes: &mut [ClusterNode],
        _leader: usize,
        calls: &[PeerCall],
    ) -> Vec<Option<Response>> {
        deliver(nodes, calls)
    }

    #[test]
    fn ring_bootstrap_gives_replicas_two_holdings() {
        let n1 = ClusterNode::replica(1, cfg(), 8, 2, 2, true);
        assert!(n1.holdings.get(&0).is_some_and(|h| h.primary));
        assert!(n1.holdings.get(&1).is_some_and(|h| !h.primary));
        let n2 = ClusterNode::replica(2, cfg(), 8, 2, 2, true);
        assert!(n2.holdings.get(&1).is_some_and(|h| h.primary));
        assert!(n2.holdings.get(&0).is_some_and(|h| !h.primary));
        // Without standbys: the PR 7 single holding.
        let solo = ClusterNode::replica(1, cfg(), 8, 2, 2, false);
        assert_eq!(solo.holdings.len(), 1);
    }

    #[test]
    fn stale_terms_are_fenced_and_newer_terms_adopted() {
        let mut n = ClusterNode::replica(1, cfg(), 8, 2, 2, true);
        // Term 3 in a 3-node cluster belongs to node 0.
        let fenced_ping = Request::Fenced {
            term: 3,
            leader: 0,
            shard: NO_SHARD,
            epoch: 0,
            inner: Box::new(Request::Ping { nonce: 7 }),
        };
        assert_eq!(n.handle(&fenced_ping), Response::Pong { nonce: 7 });
        assert_eq!((n.term(), n.leader_id()), (3, 0));
        // A deposed term-0 leader is rejected.
        let stale = Request::Fenced {
            term: 0,
            leader: 0,
            shard: NO_SHARD,
            epoch: 0,
            inner: Box::new(Request::Ping { nonce: 1 }),
        };
        assert_eq!(
            n.handle(&stale),
            Response::StaleTermR { term: 3, leader: 0 }
        );
        // A forged claim (node 2 cannot own term 6 ≡ 0 mod 3) is fenced.
        let forged = Request::Fenced {
            term: 6,
            leader: 2,
            shard: NO_SHARD,
            epoch: 0,
            inner: Box::new(Request::Ping { nonce: 2 }),
        };
        assert_eq!(
            n.handle(&forged),
            Response::StaleTermR { term: 3, leader: 0 }
        );
        assert_eq!(n.term(), 3, "forgery must not advance the term");
    }

    #[test]
    fn new_term_claims_sync_holdings() {
        let mut n = ClusterNode::replica(2, cfg(), 8, 2, 2, true);
        // Node 1 claims term 1 (1 ≡ 1 mod 3).
        match n.handle(&Request::NewTerm { term: 1, leader: 1 }) {
            Response::SyncR { term, holdings } => {
                assert_eq!(term, 1);
                assert_eq!(holdings.len(), 2);
                assert!(holdings
                    .iter()
                    .any(|h| h.shard == 1 && h.primary && h.epoch == 0));
                assert!(holdings.iter().any(|h| h.shard == 0 && !h.primary));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Re-claiming the same term is stale.
        assert_eq!(
            n.handle(&Request::NewTerm { term: 1, leader: 1 }),
            Response::StaleTermR { term: 1, leader: 1 }
        );
    }

    #[test]
    fn replicate_lands_on_standbys_only_and_dedups() {
        let mut n = ClusterNode::replica(1, cfg(), 8, 2, 2, true);
        let width = n.shard_members_of(1).len();
        let rep = Request::Replicate {
            term: 0,
            shard: 1,
            epoch: 0,
            req_id: 5,
            row: vec![1.0; width],
        };
        assert!(matches!(
            n.handle(&rep),
            Response::IngestOk {
                duplicate: false,
                ..
            }
        ));
        assert!(matches!(
            n.handle(&rep),
            Response::IngestOk {
                duplicate: true,
                ..
            }
        ));
        // Wrong epoch: fenced with the holding's current epoch.
        let stale = Request::Replicate {
            term: 0,
            shard: 1,
            epoch: 9,
            req_id: 6,
            row: vec![1.0; width],
        };
        assert_eq!(
            n.handle(&stale),
            Response::StaleEpochR { shard: 1, epoch: 0 }
        );
        // Replicating at the primary holding is a role error.
        let wrong = Request::Replicate {
            term: 0,
            shard: 0,
            epoch: 0,
            req_id: 7,
            row: vec![1.0; n.shard_members_of(0).len()],
        };
        assert_eq!(
            n.handle(&wrong),
            Response::ErrorR {
                code: ErrorCode::WrongRole
            }
        );
    }

    #[test]
    fn fetch_install_promote_moves_a_shard_copy() {
        let mut holder = ClusterNode::replica(1, cfg(), 8, 2, 2, false);
        let width = holder.shard_members_of(0).len();
        for r in 0..10u64 {
            let row: Vec<f64> = (0..width).map(|i| (r as f64) + i as f64).collect();
            holder.handle(&Request::Fenced {
                term: 0,
                leader: 0,
                shard: 0,
                epoch: 0,
                inner: Box::new(Request::Ingest { req_id: r, row }),
            });
        }
        let digest = holder.holding_digest(0).unwrap();
        let state = holder.handle(&Request::FetchShard { term: 0, shard: 0 });
        let (arrivals, applied, snapshot) = match state {
            Response::ShardStateR {
                arrivals,
                applied,
                snapshot,
                ..
            } => (arrivals, applied, snapshot),
            other => panic!("unexpected {other:?}"),
        };
        let mut joiner = ClusterNode::replica(2, cfg(), 8, 2, 2, false);
        assert_eq!(
            joiner.handle(&Request::InstallShard {
                term: 0,
                shard: 0,
                epoch: 4,
                arrivals,
                applied,
                snapshot,
            }),
            Response::EpochAck { shard: 0, epoch: 4 }
        );
        assert_eq!(joiner.holding_digest(0), Some(digest));
        // Installed as standby: fenced primary traffic is refused…
        assert_eq!(
            joiner.handle(&Request::Fenced {
                term: 0,
                leader: 0,
                shard: 0,
                epoch: 4,
                inner: Box::new(Request::Point {
                    stream: joiner.shard_members_of(0)[0] as u64,
                    index: 0
                }),
            }),
            Response::ErrorR {
                code: ErrorCode::WrongRole
            }
        );
        // …until promoted.
        assert_eq!(
            joiner.handle(&Request::Promote {
                term: 0,
                shard: 0,
                epoch: 5
            }),
            Response::EpochAck { shard: 0, epoch: 5 }
        );
        assert!(matches!(
            joiner.handle(&Request::Fenced {
                term: 0,
                leader: 0,
                shard: 0,
                epoch: 5,
                inner: Box::new(Request::Point {
                    stream: joiner.shard_members_of(0)[0] as u64,
                    index: 0
                }),
            }),
            Response::PointR { .. }
        ));
        // A truncated snapshot is a typed error, not a panic.
        assert_eq!(
            ClusterNode::replica(2, cfg(), 8, 2, 2, false).handle(&Request::InstallShard {
                term: 0,
                shard: 0,
                epoch: 1,
                arrivals: 1,
                applied: vec![0],
                snapshot: vec![0xFF; 3],
            }),
            Response::ErrorR {
                code: ErrorCode::BadRequest
            }
        );
    }

    #[test]
    fn ring_cluster_ingests_and_queries_through_fences() {
        let mut nodes = three_node_ring();
        for r in 0..20u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r * 3 + i) % 7) as f64).collect();
            let resp = run(&mut nodes, 0, &Request::Ingest { req_id: r, row });
            assert_eq!(
                resp,
                Response::IngestOk {
                    req_id: r,
                    duplicate: false,
                    failed_shards: vec![]
                }
            );
        }
        // Primary and standby copies of each shard are identical.
        for shard in 0..2 {
            let d: Vec<u64> = nodes[1..]
                .iter()
                .filter_map(|n| n.holding_digest(shard))
                .collect();
            assert_eq!(d.len(), 2);
            assert_eq!(d[0], d[1], "shard {shard} copies diverged");
        }
        assert!(matches!(
            run(
                &mut nodes,
                0,
                &Request::Point {
                    stream: 3,
                    index: 2
                }
            ),
            Response::PointR { .. }
        ));
        match run(&mut nodes, 0, &Request::TopK { k: 4 }) {
            Response::TopKR { complete, entries } => {
                assert!(complete);
                assert!(!entries.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn election_rebuilds_the_assignment_and_promotes() {
        let mut nodes = three_node_ring();
        for r in 0..12u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r + i) % 5) as f64).collect();
            run(&mut nodes, 0, &Request::Ingest { req_id: r, row });
        }
        // The leader dies; node 1 claims the next term in its class.
        let claim = nodes[1].begin_claim().unwrap();
        assert_eq!(claim, Request::NewTerm { term: 1, leader: 1 });
        // Node 0 is gone: only node 2 answers.
        let r2 = nodes[2].handle(&claim);
        let reports = vec![(0, None), (2, Some(r2))];
        let calls = nodes[1].finish_claim(7, &reports).expect("claim stands");
        assert!(nodes[1].is_leader());
        let lead = nodes[1].lead().unwrap();
        // Bootstrap ring survives intact: primaries kept at epoch 0.
        assert_eq!(lead.assignment().slot(0).primary, Some(1));
        assert_eq!(lead.assignment().slot(1).primary, Some(2));
        assert_eq!(lead.registry().health(0), WireHealth::Dead);
        // Deliver the re-anchoring promotes (self-routing included).
        let results = deliver(&mut nodes, &calls);
        let calls2 = calls.clone();
        nodes[1].finish_repair(8, &calls2, &results);
        // The cluster serves again under term 1.
        for r in 12..20u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r + i) % 5) as f64).collect();
            let resp = run(&mut nodes, 1, &Request::Ingest { req_id: r, row });
            assert_eq!(
                resp,
                Response::IngestOk {
                    req_id: r,
                    duplicate: false,
                    failed_shards: vec![]
                }
            );
        }
        // The deposed leader's term-0 traffic is fenced out everywhere.
        assert_eq!(
            nodes[2].handle(&Request::Fenced {
                term: 0,
                leader: 0,
                shard: NO_SHARD,
                epoch: 0,
                inner: Box::new(Request::Ping { nonce: 0 }),
            }),
            Response::StaleTermR { term: 1, leader: 1 }
        );
    }

    #[test]
    fn losing_claims_adopt_the_winner() {
        let mut nodes = three_node_ring();
        // Node 2 claims term 2 first…
        let claim2 = nodes[2].begin_claim().unwrap();
        let _ = nodes[1].handle(&claim2);
        // …then node 1 tries term 1 < 2 after hearing the claim: its own
        // begin_claim already moves past term 2 (next in residue class).
        let claim1 = nodes[1].begin_claim().unwrap();
        assert_eq!(claim1, Request::NewTerm { term: 4, leader: 1 });
        // Simulate instead a claim that loses: node 2 re-claims and is
        // told about term 4.
        let claim2b = nodes[2].begin_claim().unwrap();
        assert_eq!(claim2b, Request::NewTerm { term: 5, leader: 2 });
        let r1 = nodes[1].handle(&claim2b);
        let reports = vec![(0, None), (1, Some(r1))];
        assert!(nodes[2].finish_claim(9, &reports).is_some());
        // Now node 1 hears a stale answer and bows out of its term 4.
        let stale = Response::StaleTermR { term: 5, leader: 2 };
        assert!(nodes[1]
            .finish_claim(10, &[(0, None), (2, Some(stale))])
            .is_none());
        assert!(!nodes[1].is_leader());
        assert_eq!((nodes[1].term(), nodes[1].leader_id()), (5, 2));
    }

    #[test]
    fn repair_promotes_standby_when_primary_dies() {
        let mut nodes = three_node_ring();
        for r in 0..10u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r * 2 + i) % 9) as f64).collect();
            run(&mut nodes, 0, &Request::Ingest { req_id: r, row });
        }
        // Node 1 (primary of shard 0, standby of shard 1) dies: the
        // leader's registry learns via heartbeat misses.
        {
            let lead = nodes[0].lead_mut().unwrap();
            for t in 0..2 {
                lead.registry_mut().record_failure(t, 1);
            }
        }
        let calls = nodes[0].repair_plan(5);
        // Shard 0 fails over to node 2; shard 1 drops its dead standby.
        let lead = nodes[0].lead().unwrap();
        assert_eq!(lead.assignment().slot(0).primary, Some(2));
        assert_eq!(lead.assignment().slot(0).standby, None);
        assert_eq!(lead.assignment().slot(1).standby, None);
        assert!(lead.assignment().slot(0).epoch > 0);
        let results = deliver(&mut nodes, &calls);
        let calls2 = calls.clone();
        nodes[0].finish_repair(6, &calls2, &results);
        assert!(nodes[0].pending_promote.is_empty(), "all promotes acked");
        // Acked rows survive: node 2's promoted copy answers queries.
        for r in 10..14u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r * 2 + i) % 9) as f64).collect();
            let resp = run(&mut nodes, 0, &Request::Ingest { req_id: r, row });
            assert_eq!(
                resp,
                Response::IngestOk {
                    req_id: r,
                    duplicate: false,
                    failed_shards: vec![]
                }
            );
        }
    }

    #[test]
    fn rejoin_reseeds_a_standby_from_the_primary() {
        let mut nodes = three_node_ring();
        for r in 0..8u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r + 2 * i) % 6) as f64).collect();
            run(&mut nodes, 0, &Request::Ingest { req_id: r, row });
        }
        // Shard 0's standby (node 2) is dropped (say it faulted)…
        nodes[0]
            .lead_mut()
            .unwrap()
            .assignment_mut()
            .drop_standby(0);
        // …re-anchor the primary at the bumped epoch first.
        nodes[0].pending_promote.insert(0);
        let calls = nodes[0].repair_plan(3);
        let results = deliver(&mut nodes, &calls);
        let calls2 = calls.clone();
        nodes[0].finish_repair(3, &calls2, &results);
        assert!(nodes[0].pending_promote.is_empty());
        // The leader itself holds no shard role, so it is the spare that
        // picks up shard 0's standby duty.
        let calls = nodes[0].rejoin_plan(4).expect("a spare exists");
        assert_eq!(calls.len(), 2, "promote + fetch to the primary");
        assert!(calls.iter().all(|c| c.node == 1));
        let results = deliver(&mut nodes, &calls);
        let calls2 = calls.clone();
        let install = nodes[0]
            .finish_fetch(5, &calls2, &results)
            .expect("export succeeded");
        assert_eq!(install.node, 0, "ships to the spare (the leader)");
        let result = deliver(&mut nodes, std::slice::from_ref(&install))
            .into_iter()
            .next()
            .flatten();
        nodes[0].finish_install(6, result);
        assert!(nodes[0].installing.is_none(), "installation completed");
        let slot = nodes[0].lead().unwrap().assignment().slot(0);
        assert_eq!(slot.standby, Some(0));
        // The re-seeded copy is bit-identical to the primary…
        assert_eq!(nodes[0].holding_digest(0), nodes[1].holding_digest(0));
        // …and future rows require it: ingest keeps both in lockstep.
        for r in 8..12u64 {
            let row: Vec<f64> = (0..8).map(|i| ((r + 2 * i) % 6) as f64).collect();
            let resp = run(&mut nodes, 0, &Request::Ingest { req_id: r, row });
            assert!(matches!(
                resp,
                Response::IngestOk { ref failed_shards, .. } if failed_shards.is_empty()
            ));
        }
        assert_eq!(nodes[0].holding_digest(0), nodes[1].holding_digest(0));
    }
}
