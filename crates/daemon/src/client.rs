//! Clients of a `swatd` node: the external [`DaemonClient`] and the
//! leader's internal [`PeerPool`].
//!
//! Both speak the same framed protocol over [`TcpTransport`]; the peer
//! pool adds the leader-side robustness machinery:
//!
//! * a **bounded in-flight budget per peer** — when `max_inflight`
//!   requests are already outstanding toward a replica, further work is
//!   shed *before* anything is sent (the caller answers the client with
//!   a typed `Overloaded`); memory use is bounded by construction, not
//!   by hope,
//! * **bounded reconnect with exponential backoff** — the
//!   `swat_replication::RetryPolicy` schedule, `timeout` interpreted in
//!   milliseconds; after the last retry the peer is reported
//!   unreachable (`None`) and the caller degrades explicitly,
//! * per-peer connection reuse: one live connection per replica,
//!   re-established lazily after any transport failure.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use swat_replication::RetryPolicy;

use crate::proto::{check_frame, decode_response, encode_request, ProtoError, Request, Response};
use crate::transport::{TcpTransport, Transport, TransportError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the address.
    Connect(std::io::Error),
    /// The transport failed mid-call.
    Transport(TransportError),
    /// The peer answered with bytes that violate the protocol.
    Proto(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connecting: {e}"),
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Proto(p) => ClientError::Proto(p),
            other => ClientError::Transport(other),
        }
    }
}

/// A blocking external client of one `swatd` node.
pub struct DaemonClient {
    tp: TcpTransport,
}

impl DaemonClient {
    /// Connect to `addr` with `timeout` as connect deadline and
    /// read/write deadline, then shake hands.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connect, transport, or protocol failure.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Connect)?;
        let tp = TcpTransport::new(stream, timeout, timeout).map_err(ClientError::Connect)?;
        let mut client = DaemonClient { tp };
        // Handshake: both sides announce themselves.
        client.call(&Request::Hello { node: 0 })?;
        Ok(client)
    }

    /// Send one request and wait for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.tp.send_frame(&encode_request(req))?;
        let frame = self.tp.recv_frame()?;
        let payload = check_frame(&frame).map_err(ClientError::Proto)?;
        decode_response(payload).map_err(ClientError::Proto)
    }

    /// Apply one global row under write id `req_id`.
    ///
    /// # Errors
    ///
    /// As [`DaemonClient::call`].
    pub fn ingest(&mut self, req_id: u64, row: Vec<f64>) -> Result<Response, ClientError> {
        self.call(&Request::Ingest { req_id, row })
    }

    /// Point query.
    ///
    /// # Errors
    ///
    /// As [`DaemonClient::call`].
    pub fn point(&mut self, stream: u64, index: u32) -> Result<Response, ClientError> {
        self.call(&Request::Point { stream, index })
    }

    /// Distributed top-k.
    ///
    /// # Errors
    ///
    /// As [`DaemonClient::call`].
    pub fn top_k(&mut self, k: u32) -> Result<Response, ClientError> {
        self.call(&Request::TopK { k })
    }

    /// Status snapshot.
    ///
    /// # Errors
    ///
    /// As [`DaemonClient::call`].
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Status)
    }

    /// Request graceful shutdown.
    ///
    /// # Errors
    ///
    /// As [`DaemonClient::call`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Shutdown)
    }
}

/// A failover-aware client over a whole cluster: follows
/// [`Response::NotLeaderR`] redirects, retries `ConnectionRefused` /
/// timed-out sockets with the bounded [`RetryPolicy`] backoff, and
/// round-robins across the peer list when the current target is silent
/// — so one client object survives elections and node deaths, never
/// failing on the first socket error.
pub struct FailoverClient {
    peers: Vec<SocketAddr>,
    policy: RetryPolicy,
    timeout: Duration,
    /// Index of the peer currently believed to lead.
    target: usize,
    conn: Option<DaemonClient>,
}

impl FailoverClient {
    /// A client over `peers` (`peers[i]` is node `i`), starting at node
    /// `0`. `policy.timeout` is the backoff base in milliseconds;
    /// `policy.max_retries` bounds the *rounds* over the peer list.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is empty.
    pub fn new(peers: Vec<SocketAddr>, policy: RetryPolicy, timeout: Duration) -> Self {
        assert!(!peers.is_empty(), "a cluster has at least one address");
        FailoverClient {
            peers,
            policy,
            timeout,
            target: 0,
            conn: None,
        }
    }

    /// Point the client at node `id` (a `NotLeaderR` hint, or a fresh
    /// guess after silence).
    fn retarget(&mut self, id: usize) {
        if id != self.target {
            self.conn = None;
        }
        self.target = id % self.peers.len();
    }

    /// Send one request, following redirects and retrying through
    /// elections with bounded backoff. Returns the first substantive
    /// response (anything but `NotLeaderR`).
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once every round of the peer list is
    /// exhausted.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut last_err: Option<ClientError> = None;
        let rounds = self.policy.max_retries.max(1);
        for round in 0..rounds {
            if round > 0 {
                std::thread::sleep(Duration::from_millis(self.policy.backoff(round)));
            }
            for _hop in 0..self.peers.len() {
                if self.conn.is_none() {
                    match DaemonClient::connect(self.peers[self.target], self.timeout) {
                        Ok(c) => self.conn = Some(c),
                        Err(e) => {
                            // Connection refused / timed out: this node
                            // is down or not yet up — try the next one.
                            last_err = Some(e);
                            self.retarget(self.target + 1);
                            continue;
                        }
                    }
                }
                // invariant: the branch above just filled `conn`.
                let conn = self.conn.as_mut().expect("connected above");
                match conn.call(req) {
                    Ok(Response::NotLeaderR { leader, .. }) => {
                        // Redirect; a hint equal to the current target
                        // means "election in progress" — move on.
                        let hint = leader as usize % self.peers.len();
                        if hint == self.target {
                            self.retarget(self.target + 1);
                        } else {
                            self.retarget(hint);
                        }
                    }
                    Ok(resp) => return Ok(resp),
                    Err(e) => {
                        // Mid-call failure: drop the connection and try
                        // the next peer.
                        self.conn = None;
                        last_err = Some(e);
                        self.retarget(self.target + 1);
                    }
                }
            }
        }
        Err(last_err.unwrap_or(ClientError::Transport(TransportError::TimedOut)))
    }

    /// Ingest `row` under `req_id`, retrying until the row is fully
    /// acked (`failed_shards` empty) or `attempts` runs out. The stable
    /// `req_id` makes the retries duplicate-safe; a partial apply is
    /// re-driven until every shard holds the row.
    ///
    /// The final response is returned even when not fully acked (the
    /// caller inspects `failed_shards`).
    ///
    /// # Errors
    ///
    /// The final transport error when no response arrived at all.
    pub fn ingest_acked(
        &mut self,
        req_id: u64,
        row: Vec<f64>,
        attempts: u32,
    ) -> Result<Response, ClientError> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(self.policy.backoff(attempt)));
            }
            match self.call(&Request::Ingest {
                req_id,
                row: row.clone(),
            }) {
                Ok(Response::IngestOk {
                    req_id: r,
                    duplicate,
                    failed_shards,
                }) if failed_shards.is_empty() => {
                    return Ok(Response::IngestOk {
                        req_id: r,
                        duplicate,
                        failed_shards,
                    })
                }
                Ok(other) => last = Some(Ok(other)),
                Err(e) => last = Some(Err(e)),
            }
        }
        last.unwrap_or(Err(ClientError::Transport(TransportError::TimedOut)))
    }
}

/// One pooled peer: its address, at most one live connection, and the
/// in-flight token counter.
struct Peer {
    addr: SocketAddr,
    conn: Mutex<Option<TcpTransport>>,
    inflight: AtomicUsize,
}

/// The leader's connection pool over its replicas, indexed by shard.
pub struct PeerPool {
    peers: Vec<Peer>,
    policy: RetryPolicy,
    io_timeout: Duration,
    max_inflight: usize,
}

/// RAII in-flight tokens: acquired for every shard of a fan-out before
/// anything is sent, released on drop.
pub struct InflightGuard<'a> {
    pool: &'a PeerPool,
    shards: Vec<usize>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        for &s in &self.shards {
            self.pool.peers[s].inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl PeerPool {
    /// A pool over `addrs` (shard `i` lives at `addrs[i]`), shedding
    /// when a peer already has `max_inflight` outstanding requests.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight == 0`.
    pub fn new(
        addrs: Vec<SocketAddr>,
        policy: RetryPolicy,
        io_timeout: Duration,
        max_inflight: usize,
    ) -> Self {
        assert!(
            max_inflight > 0,
            "an in-flight budget of 0 sheds everything"
        );
        PeerPool {
            peers: addrs
                .into_iter()
                .map(|addr| Peer {
                    addr,
                    conn: Mutex::new(None),
                    inflight: AtomicUsize::new(0),
                })
                .collect(),
            policy,
            io_timeout,
            max_inflight,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Try to reserve one in-flight slot toward every shard in
    /// `shards`. `None` means at least one peer's budget is exhausted —
    /// the caller sheds the request with a typed `Overloaded` and
    /// **nothing is sent to anyone** (shedding is all-or-nothing, so a
    /// shed ingest touches no shard).
    pub fn try_acquire(&self, shards: &[usize]) -> Option<InflightGuard<'_>> {
        let mut taken = Vec::with_capacity(shards.len());
        for &s in shards {
            let prev = self.peers[s].inflight.fetch_add(1, Ordering::SeqCst);
            if prev >= self.max_inflight {
                self.peers[s].inflight.fetch_sub(1, Ordering::SeqCst);
                for &t in &taken {
                    self.peers[t as usize]
                        .inflight
                        .fetch_sub(1, Ordering::SeqCst);
                }
                return None;
            }
            taken.push(s as u32);
        }
        Some(InflightGuard {
            pool: self,
            shards: shards.to_vec(),
        })
    }

    /// One request/response exchange with shard `shard`'s replica,
    /// reconnecting with bounded exponential backoff. `None` after the
    /// final retry — the caller degrades explicitly. The caller must
    /// already hold an in-flight token (or be heartbeat traffic, which
    /// bypasses the budget so health detection keeps working under
    /// load).
    pub fn exchange(&self, shard: usize, req: &Request) -> Option<Response> {
        let peer = &self.peers[shard];
        // A panic while an exchange held this lock poisons it; the
        // protected state is just an optional connection, which is safe
        // to reset and reuse — a poisoned pool must not cascade panics
        // into every other connection worker.
        let mut conn = match peer.conn.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                *g = None;
                g
            }
        };
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                // RetryPolicy::timeout is in milliseconds here.
                std::thread::sleep(Duration::from_millis(self.policy.backoff(attempt)));
            }
            if conn.is_none() {
                match TcpStream::connect_timeout(&peer.addr, self.io_timeout)
                    .and_then(|s| TcpTransport::new(s, self.io_timeout, self.io_timeout))
                {
                    Ok(tp) => *conn = Some(tp),
                    Err(_) => continue,
                }
            }
            // invariant: the branch above just filled `conn`.
            let tp = conn.as_mut().expect("just connected");
            let ok = tp
                .send_frame(&encode_request(req))
                .and_then(|()| tp.recv_frame());
            match ok {
                Ok(frame) => {
                    match check_frame(&frame).and_then(decode_response) {
                        Ok(resp) => return Some(resp),
                        // A protocol violation poisons the connection.
                        Err(_) => *conn = None,
                    }
                }
                Err(_) => *conn = None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, max_inflight: usize) -> PeerPool {
        let addrs = (0..n)
            .map(|i| format!("127.0.0.1:{}", 1 + i).parse().unwrap())
            .collect();
        PeerPool::new(
            addrs,
            RetryPolicy {
                max_retries: 0,
                timeout: 1,
            },
            Duration::from_millis(10),
            max_inflight,
        )
    }

    #[test]
    fn budget_is_all_or_nothing() {
        let p = pool(2, 1);
        let g1 = p.try_acquire(&[0]).expect("budget free");
        // Shard 0 exhausted: a fan-out touching it sheds entirely, and
        // shard 1's count is rolled back.
        assert!(p.try_acquire(&[1, 0]).is_none());
        assert_eq!(p.peers[1].inflight.load(Ordering::SeqCst), 0);
        drop(g1);
        assert!(p.try_acquire(&[1, 0]).is_some());
    }

    #[test]
    fn unreachable_peer_is_none_not_a_hang() {
        // Port 1 on localhost: nothing listens; connect fails fast and
        // the bounded retries end in None.
        let p = pool(1, 4);
        let started = std::time::Instant::now();
        assert!(p.exchange(0, &Request::Status).is_none());
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
