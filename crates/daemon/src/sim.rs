//! Deterministic in-process daemon clusters.
//!
//! Two simulators share this module:
//!
//! * [`SimCluster`] — the PR 7 leader+replicas deployment squeezed into
//!   one single-threaded, fault-injected event loop: every
//!   leader↔replica exchange crosses a [`SimTransport`] pair whose fate
//!   the `swat-net` [`Link`](swat_net::Link) adjudicates, with the same
//!   bounded-retry/backoff discipline (`RetryPolicy`) the TCP peer
//!   client uses and the same [`LeaderCore`]/[`ClusterNode`] state
//!   machines the TCP server runs. It models the *static-leader*
//!   deployment (no elections) under probabilistic drops, delays and
//!   crash windows.
//!
//! * [`FailoverSim`] — the full failover cluster: every node is a
//!   [`ClusterNode`], the per-tick driver runs the same
//!   heartbeat/repair/rejoin/election cadence as the TCP server's
//!   monitor thread, and the client endpoint follows `NotLeaderR`
//!   redirects exactly like `FailoverClient`. Faults are the *crash
//!   windows* of the [`FaultPlan`] (`is_down`), interpreted over the
//!   sim's own tick clock; a crashed node is paused, state intact —
//!   the hard case, because it comes back stale and must be fenced.
//!   Every schedule is a pure function of the plan and the op script,
//!   so any failover bug replays from a seed.
//!
//! [`SimCluster`] runs in one of two **arms** ([`SimMode`]):
//!
//! * `Wire` — every request and response is encoded to frame bytes,
//!   carried through the transport, checked, and decoded, exactly like
//!   production.
//! * `Model` — the same transport adjudication (identical fault-RNG
//!   consumption, identical clock arithmetic — the frames still cross),
//!   but the in-memory structs are handed over directly, bypassing the
//!   codec.
//!
//! For any `FaultPlan` and op script the two arms must produce
//! **bit-identical** observable outcome sequences and final replica
//! digests: the `sim_oracle` property test pins the wire layer to the
//! simulator oracle. Under `FaultPlan::none()` the outcomes are
//! additionally pinned to the plain `ShardedStreamSet` in-process
//! oracle. [`FailoverSim`] round-trips every delivery through the codec
//! unconditionally, so the term/epoch wire fields are exercised on
//! every heartbeat, claim, and repair call.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swat_net::{FaultPlan, NodeId};
use swat_replication::RetryPolicy;
use swat_tree::SwatConfig;

use crate::cluster::{stale_term_in, LeaderCore, PeerCall, Plan};
use crate::node::ClusterNode;
use crate::proto::{
    check_frame, decode_request, decode_response, encode_request, encode_response, Request,
    Response,
};
use crate::transport::{SimNet, SimTransport, Transport};

/// Which arm a [`SimCluster`] runs: production byte path or direct
/// struct hand-off (the model/oracle arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Encode → transport → check → decode, like the TCP daemon.
    Wire,
    /// Same transport fates, structs cross directly.
    Model,
}

/// One scripted client operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// Apply one global row (the leader fans sub-rows out).
    Ingest {
        /// Duplicate-safe write id.
        req_id: u64,
        /// The full global row.
        row: Vec<f64>,
    },
    /// Point query against one stream.
    Point {
        /// Global stream id.
        stream: u64,
        /// Window index.
        index: u32,
    },
    /// Distributed top-k.
    TopK {
        /// How many coefficients.
        k: u32,
    },
    /// Leader status snapshot (includes replica health).
    Status,
    /// One heartbeat round: the leader pings every replica and records
    /// the outcome in its registry.
    Heartbeat,
}

/// The deterministic static-leader cluster.
pub struct SimCluster {
    mode: SimMode,
    net: Rc<RefCell<SimNet>>,
    leader: LeaderCore,
    replicas: Vec<ClusterNode>,
    policy: RetryPolicy,
    recv_deadline: u64,
    hb_nonce: u64,
}

impl SimCluster {
    /// A cluster of one leader plus `shards` replicas over `streams`
    /// global streams, faulted by `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(
        mode: SimMode,
        plan: FaultPlan,
        config: SwatConfig,
        streams: usize,
        shards: usize,
        miss_threshold: u32,
    ) -> Self {
        let net = SimNet::new(plan, shards + 1);
        let leader = LeaderCore::bootstrap(streams, shards, miss_threshold, false);
        let replicas = (1..=shards)
            .map(|id| {
                ClusterNode::replica(id as u64, config, streams, shards, miss_threshold, false)
            })
            .collect();
        SimCluster {
            mode,
            net,
            leader,
            replicas,
            policy: RetryPolicy::default(),
            recv_deadline: 8,
            hb_nonce: 0,
        }
    }

    /// Run the script, returning one observable [`Response`] per op —
    /// what an external client of this cluster would see.
    pub fn run(&mut self, ops: &[SimOp]) -> Vec<Response> {
        ops.iter().map(|op| self.step(op)).collect()
    }

    /// Per-replica answer digests, shard order — the state-equality
    /// hook for oracle comparisons.
    pub fn digests(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(shard, n)| n.holding_digest(shard).expect("home holding exists"))
            .collect()
    }

    /// The leader (registry introspection for tests).
    pub fn leader(&self) -> &LeaderCore {
        &self.leader
    }

    fn step(&mut self, op: &SimOp) -> Response {
        match op {
            SimOp::Ingest { req_id, row } => {
                let req = Request::Ingest {
                    req_id: *req_id,
                    row: row.clone(),
                };
                match self.leader.plan(&req) {
                    Plan::Done(r) => r,
                    Plan::Fan(calls) => {
                        let results: Vec<Option<Response>> = calls
                            .iter()
                            .map(|c| self.exchange(c.node, &c.request))
                            .collect();
                        self.leader.finish_ingest(*req_id, &calls, &results)
                    }
                }
            }
            SimOp::Point { stream, index } => {
                let req = Request::Point {
                    stream: *stream,
                    index: *index,
                };
                match self.leader.plan(&req) {
                    Plan::Done(r) => r,
                    Plan::Fan(calls) => {
                        let r = self.exchange(calls[0].node, &calls[0].request);
                        self.leader.finish_routed(&calls[0], r)
                    }
                }
            }
            SimOp::TopK { k } => match self.leader.plan(&Request::TopK { k: *k }) {
                Plan::Done(r) => r,
                Plan::Fan(calls) => {
                    let locals: Vec<Option<Response>> = calls
                        .iter()
                        .map(|c| self.exchange(c.node, &c.request))
                        .collect();
                    let (_tau, refines) = self.leader.plan_topk_round2(*k, &calls, &locals);
                    let scans: Vec<(usize, Option<Response>)> = refines
                        .iter()
                        .map(|c| (c.shard, self.exchange(c.node, &c.request)))
                        .collect();
                    self.leader.finish_topk(*k, &calls, &locals, &scans)
                }
            },
            SimOp::Status => match self.leader.plan(&Request::Status) {
                Plan::Done(r) => r,
                Plan::Fan(_) => unreachable!("status is leader-local"),
            },
            SimOp::Heartbeat => {
                let shards = self.replicas.len();
                let mut alive = 0u64;
                for shard in 0..shards {
                    self.hb_nonce += 1;
                    let nonce = self.hb_nonce;
                    let node = (shard + 1) as u64;
                    let ok = matches!(
                        self.exchange(node, &Request::Ping { nonce }),
                        Some(Response::Pong { nonce: n }) if n == nonce
                    );
                    let at = self.net.borrow().now();
                    if ok {
                        self.leader.registry_mut().record_success(at, node);
                        alive += 1;
                    } else {
                        self.leader.registry_mut().record_failure(at, node);
                    }
                }
                // The observable outcome of a heartbeat round: how many
                // replicas answered (a Pong with the round count).
                Response::Pong { nonce: alive }
            }
        }
    }

    /// One request/response exchange with cluster node `node` (the
    /// replica for shard `node - 1`), with the bounded-retry/backoff
    /// discipline. `None` after the last retry — the caller must
    /// surface that as explicit degradation.
    ///
    /// Every attempt models a fresh connection: stale in-flight frames
    /// are purged (a reconnecting TCP client never sees bytes from its
    /// previous connection), the request leg and response leg are each
    /// adjudicated by the fault injector, and the replica only handles
    /// what was actually delivered.
    fn exchange(&mut self, node: u64, req: &Request) -> Option<Response> {
        let peer = NodeId(node as usize);
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                self.net.borrow_mut().advance(self.policy.backoff(attempt));
            }
            {
                let mut n = self.net.borrow_mut();
                n.purge(NodeId::SOURCE);
                n.purge(peer);
            }
            let mut leader_tp =
                SimTransport::new(self.net.clone(), NodeId::SOURCE, peer, self.recv_deadline);
            let mut replica_tp =
                SimTransport::new(self.net.clone(), peer, NodeId::SOURCE, self.recv_deadline);
            // Request leg: a crashed endpoint refuses outright; a drop
            // or an over-deadline delay surfaces as the replica-side
            // receive timing out.
            if leader_tp.send_frame(&encode_request(req)).is_err() {
                continue;
            }
            let Ok(req_frame) = replica_tp.recv_frame() else {
                continue;
            };
            let actual_req = match self.mode {
                SimMode::Wire => {
                    let payload =
                        check_frame(&req_frame).expect("the sim link never corrupts frames");
                    decode_request(payload).expect("a valid frame decodes")
                }
                SimMode::Model => req.clone(),
            };
            let resp = self.replicas[node as usize - 1].handle(&actual_req);
            // Response leg, same rules.
            if replica_tp.send_frame(&encode_response(&resp)).is_err() {
                continue;
            }
            let Ok(resp_frame) = leader_tp.recv_frame() else {
                continue;
            };
            let out = match self.mode {
                SimMode::Wire => decode_response(
                    check_frame(&resp_frame).expect("the sim link never corrupts frames"),
                )
                .expect("a valid frame decodes"),
                SimMode::Model => resp,
            };
            return Some(out);
        }
        None
    }
}

/// The deterministic failover cluster: `shards + 1` full
/// [`ClusterNode`]s (node 0 bootstraps as leader), the standby ring
/// enabled, driven tick by tick through the same
/// heartbeat/repair/rejoin/election cadence as the TCP server's monitor
/// thread.
///
/// Time is the tick counter; the [`FaultPlan`]'s crash windows are
/// interpreted over it (`is_down(NodeId(id), tick)` pauses node `id` —
/// its state survives, which is the adversarial case: it returns stale
/// and must be fenced by term and epoch). Probabilistic drops and
/// delays are [`SimCluster`]'s business; this simulator's links either
/// work or the endpoint is down, so every observed outcome is
/// attributable to the crash schedule alone.
///
/// Every delivery round-trips the codec (encode → check → decode both
/// ways), so every fenced wire field is exercised on every exchange.
pub struct FailoverSim {
    nodes: Vec<ClusterNode>,
    plan: FaultPlan,
    tick: u64,
    hb_nonce: u64,
    election_timeout: u64,
    /// Per node: the last tick it heard accepted cluster traffic.
    last_contact: Vec<u64>,
    /// Every `(term, node)` pair ever observed leading — the
    /// no-two-leaders-per-term invariant is checked on every tick.
    leaders_by_term: BTreeMap<u64, u64>,
    /// The client's current target (follows `NotLeaderR` hints).
    target: usize,
}

impl FailoverSim {
    /// A ring cluster (node 0 leader, nodes `1..=shards` replicas, each
    /// primary of one shard and standby of its ring predecessor),
    /// faulted by `plan`'s crash windows. A follower whose leader has
    /// been silent for `election_timeout + id` ticks claims the next
    /// term in its residue class (the `+ id` stagger is the same
    /// deterministic tie-break the TCP monitor uses).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(
        plan: FaultPlan,
        config: SwatConfig,
        streams: usize,
        shards: usize,
        miss_threshold: u32,
        election_timeout: u64,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut nodes = vec![ClusterNode::bootstrap_leader(
            config,
            streams,
            shards,
            miss_threshold,
            true,
        )];
        for id in 1..=shards {
            nodes.push(ClusterNode::replica(
                id as u64,
                config,
                streams,
                shards,
                miss_threshold,
                true,
            ));
        }
        let n = nodes.len();
        let mut sim = FailoverSim {
            nodes,
            plan,
            tick: 0,
            hb_nonce: 0,
            election_timeout,
            last_contact: vec![0; n],
            leaders_by_term: BTreeMap::new(),
            target: 0,
        };
        // Record the bootstrap leader so term 0 is covered by the
        // unique-leader invariant from the first tick.
        sim.check_unique_leaders();
        sim
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// The node, for state inspection (digests, terms, holdings).
    pub fn node(&self, id: u64) -> &ClusterNode {
        &self.nodes[id as usize]
    }

    /// Every `(term, leader)` pair ever observed; the sim panics the
    /// moment any term would acquire a second leader.
    pub fn leader_terms(&self) -> &BTreeMap<u64, u64> {
        &self.leaders_by_term
    }

    /// The newest-term leader that is currently up, if any.
    pub fn live_leader(&self) -> Option<u64> {
        self.nodes
            .iter()
            .filter(|n| n.is_leader() && !self.down(n.id()))
            .max_by_key(|n| n.term())
            .map(|n| n.id())
    }

    /// The node currently assigned primary of `shard`, per the live
    /// leader's view.
    pub fn primary_of(&self, shard: usize) -> Option<u64> {
        let leader = self.live_leader()?;
        self.nodes[leader as usize]
            .lead()
            .and_then(|l| l.assignment().slot(shard).primary)
    }

    fn down(&self, id: u64) -> bool {
        self.plan.is_down(NodeId(id as usize), self.tick)
    }

    /// Deliver one request to `target`, round-tripping the codec both
    /// ways. `None` when the target is down. Accepted cluster-internal
    /// traffic resets the target's leader-contact clock, exactly like
    /// the TCP server does.
    fn deliver_req(&mut self, target: u64, req: &Request) -> Option<Response> {
        if self.down(target) {
            return None;
        }
        let wire = encode_request(req);
        let req = decode_request(check_frame(&wire).expect("sim frames intact"))
            .expect("a valid frame decodes");
        let resp = self.nodes[target as usize].handle(&req);
        let from_leader = matches!(
            req,
            Request::Fenced { .. }
                | Request::NewTerm { .. }
                | Request::Replicate { .. }
                | Request::FetchShard { .. }
                | Request::InstallShard { .. }
                | Request::Promote { .. }
        );
        if from_leader && !matches!(resp, Response::StaleTermR { .. }) {
            self.last_contact[target as usize] = self.tick;
        }
        let wire = encode_response(&resp);
        Some(
            decode_response(check_frame(&wire).expect("sim frames intact"))
                .expect("a valid frame decodes"),
        )
    }

    fn deliver_calls(&mut self, calls: &[PeerCall]) -> Vec<Option<Response>> {
        calls
            .iter()
            .map(|c| self.deliver_req(c.node, &c.request))
            .collect()
    }

    /// Advance the cluster one tick: every live node runs one monitor
    /// pass (leaders heartbeat + repair + rejoin; followers check their
    /// election patience), then the unique-leader-per-term invariant is
    /// checked.
    pub fn tick(&mut self) {
        self.tick += 1;
        for id in 0..self.nodes.len() as u64 {
            if self.down(id) {
                continue;
            }
            if self.nodes[id as usize].is_leader() {
                self.leader_pass(id);
            } else {
                self.follower_pass(id);
            }
        }
        self.check_unique_leaders();
    }

    /// Advance `n` ticks.
    pub fn ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    fn leader_pass(&mut self, id: u64) {
        let now = self.tick;
        for peer in self.nodes[id as usize].peer_ids() {
            self.hb_nonce += 1;
            let nonce = self.hb_nonce;
            let Some(lead) = self.nodes[id as usize].lead() else {
                return; // Stepped down mid-round.
            };
            let hb = lead.heartbeat(nonce);
            match self.deliver_req(peer, &hb) {
                Some(Response::Pong { nonce: n }) if n == nonce => {
                    if let Some(lead) = self.nodes[id as usize].lead_mut() {
                        lead.registry_mut().record_success(now, peer);
                    }
                }
                Some(Response::StaleTermR { term, leader }) => {
                    self.nodes[id as usize].observe_stale_term(term, leader);
                    if !self.nodes[id as usize].is_leader() {
                        return;
                    }
                }
                _ => {
                    if let Some(lead) = self.nodes[id as usize].lead_mut() {
                        lead.registry_mut().record_failure(now, peer);
                    }
                }
            }
        }
        // Repair: promote around the dead, re-anchor pending epochs.
        let calls = self.nodes[id as usize].repair_plan(now);
        let results = self.deliver_calls(&calls);
        self.nodes[id as usize].finish_repair(now, &calls, &results);
        // Rejoin: at most one standby re-seed in flight.
        if let Some(calls) = self.nodes[id as usize].rejoin_plan(now) {
            let results = self.deliver_calls(&calls);
            if let Some(install) = self.nodes[id as usize].finish_fetch(now, &calls, &results) {
                let r = self.deliver_req(install.node, &install.request);
                self.nodes[id as usize].finish_install(now, r);
            }
        }
    }

    fn follower_pass(&mut self, id: u64) {
        let now = self.tick;
        // Staggered patience: lower ids run out of patience first, so
        // concurrent claims are rare (and harmless when they happen —
        // residue classes keep the terms distinct).
        let patience = self.election_timeout + id;
        if now.saturating_sub(self.last_contact[id as usize]) <= patience {
            return;
        }
        // Defer to any live lower-id node: it will claim first, and a
        // lowest-live-id winner is the deterministic successor rule.
        for lower in 0..id {
            if self.deliver_req(lower, &Request::Status).is_some() {
                self.last_contact[id as usize] = now;
                return;
            }
        }
        let Ok(claim) = self.nodes[id as usize].begin_claim() else {
            return;
        };
        let reports: Vec<(u64, Option<Response>)> = self.nodes[id as usize]
            .peer_ids()
            .into_iter()
            .map(|p| (p, self.deliver_req(p, &claim)))
            .collect();
        if let Some(calls) = self.nodes[id as usize].finish_claim(now, &reports) {
            let results = self.deliver_calls(&calls);
            self.nodes[id as usize].finish_repair(now, &calls, &results);
        }
        self.last_contact[id as usize] = now;
    }

    fn check_unique_leaders(&mut self) {
        for n in &self.nodes {
            if n.is_leader() {
                let prev = self.leaders_by_term.insert(n.term(), n.id());
                assert!(
                    prev.is_none() || prev == Some(n.id()),
                    "two leaders for term {}: nodes {} and {}",
                    n.term(),
                    prev.unwrap(),
                    n.id(),
                );
            }
        }
    }

    /// One client call: start at the remembered target, follow
    /// `NotLeaderR` hints, hop to the next node on silence — the same
    /// loop `FailoverClient` runs over TCP. `None` when no node
    /// produced a substantive answer this attempt (the caller ticks the
    /// cluster and retries).
    pub fn client(&mut self, req: &Request) -> Option<Response> {
        let n = self.nodes.len();
        for _ in 0..2 * n {
            let t = self.target as u64;
            match self.serve_at(t, req) {
                Some(Response::NotLeaderR { leader, .. }) => {
                    let hint = leader as usize % n;
                    self.target = if hint == self.target {
                        (self.target + 1) % n
                    } else {
                        hint
                    };
                }
                Some(r) => return Some(r),
                None => self.target = (self.target + 1) % n,
            }
        }
        None
    }

    /// Retry one ingest (stable `req_id`, so retries never
    /// double-apply) until it is fully acked or `max_ticks` elapse,
    /// ticking the cluster between attempts. Returns whether the row
    /// acked.
    pub fn ingest_until_acked(&mut self, req_id: u64, row: &[f64], max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            let req = Request::Ingest {
                req_id,
                row: row.to_vec(),
            };
            if let Some(Response::IngestOk { failed_shards, .. }) = self.client(&req) {
                if failed_shards.is_empty() {
                    return true;
                }
            }
            self.tick();
        }
        false
    }

    /// Retry a query until some node answers substantively (not
    /// `Unavailable`, not silence) or `max_ticks` elapse.
    pub fn query_until(&mut self, req: &Request, max_ticks: u64) -> Option<Response> {
        for _ in 0..max_ticks {
            match self.client(req) {
                Some(Response::Unavailable { .. }) | None => {}
                Some(r) => return Some(r),
            }
            self.tick();
        }
        None
    }

    /// Serve one client request at node `id`: non-leaders answer
    /// locally (`NotLeaderR` for data requests); the leader runs the
    /// plan/fan/merge cycle, stepping down mid-request if any leg
    /// fences it out — precisely the TCP server's `serve_fan`.
    fn serve_at(&mut self, id: u64, req: &Request) -> Option<Response> {
        if self.down(id) {
            return None;
        }
        if !self.nodes[id as usize].is_leader() {
            return Some(self.nodes[id as usize].handle(req));
        }
        let plan = self.nodes[id as usize].lead().expect("leading").plan(req);
        let calls = match plan {
            Plan::Done(r) => return Some(r),
            Plan::Fan(calls) => calls,
        };
        let results = self.deliver_calls(&calls);
        if let Some((term, leader)) = stale_term_in(&results) {
            self.nodes[id as usize].observe_stale_term(term, leader);
            let n = &self.nodes[id as usize];
            return Some(Response::NotLeaderR {
                leader: n.leader_id(),
                term: n.term(),
            });
        }
        let resp = match req {
            Request::Ingest { req_id, .. } => self.nodes[id as usize]
                .lead_mut()
                .expect("still leading")
                .finish_ingest(*req_id, &calls, &results),
            Request::Point { .. } | Request::Range { .. } => self.nodes[id as usize]
                .lead_mut()
                .expect("still leading")
                .finish_routed(&calls[0], results.into_iter().next().flatten()),
            Request::TopK { k } => {
                let (_tau, refines) = self.nodes[id as usize]
                    .lead()
                    .expect("still leading")
                    .plan_topk_round2(*k, &calls, &results);
                let scan_results = self.deliver_calls(&refines);
                if let Some((term, leader)) = stale_term_in(&scan_results) {
                    self.nodes[id as usize].observe_stale_term(term, leader);
                    let n = &self.nodes[id as usize];
                    return Some(Response::NotLeaderR {
                        leader: n.leader_id(),
                        term: n.term(),
                    });
                }
                let scans: Vec<(usize, Option<Response>)> =
                    refines.iter().map(|c| c.shard).zip(scan_results).collect();
                self.nodes[id as usize]
                    .lead()
                    .expect("still leading")
                    .finish_topk(*k, &calls, &results, &scans)
            }
            _ => unreachable!("only data requests fan"),
        };
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::ShardedStreamSet;

    fn cfg() -> SwatConfig {
        SwatConfig::with_coefficients(16, 4).unwrap()
    }

    fn script(streams: usize) -> Vec<SimOp> {
        let mut ops = Vec::new();
        for r in 0..40u64 {
            let row: Vec<f64> = (0..streams)
                .map(|i| (((r as usize * 7 + i * 5) % 23) as f64) - 11.0)
                .collect();
            ops.push(SimOp::Ingest { req_id: r, row });
            if r % 8 == 3 {
                ops.push(SimOp::Point {
                    stream: (r % streams as u64),
                    index: (r % 16) as u32,
                });
            }
            if r % 16 == 7 {
                ops.push(SimOp::TopK { k: 4 });
                ops.push(SimOp::Heartbeat);
            }
        }
        ops.push(SimOp::Status);
        ops
    }

    #[test]
    fn ideal_cluster_matches_the_sharded_oracle() {
        let (streams, shards) = (11, 3);
        let ops = script(streams);
        let mut cluster =
            SimCluster::new(SimMode::Wire, FaultPlan::none(), cfg(), streams, shards, 3);
        let outcomes = cluster.run(&ops);

        // Replay the ingests against the in-process sharded oracle.
        let mut oracle = ShardedStreamSet::new(cfg(), streams, shards);
        for op in &ops {
            if let SimOp::Ingest { row, .. } = op {
                oracle.push_row(row);
            }
        }
        // Every ingest fully applied; every query answered; top-k
        // bit-identical to the oracle's merge.
        let mut oracle_replay = ShardedStreamSet::new(cfg(), streams, shards);
        for (op, out) in ops.iter().zip(&outcomes) {
            match op {
                SimOp::Ingest { req_id, row } => {
                    oracle_replay.push_row(row);
                    assert_eq!(
                        out,
                        &Response::IngestOk {
                            req_id: *req_id,
                            duplicate: false,
                            failed_shards: vec![]
                        }
                    );
                }
                SimOp::Point { stream, index } => {
                    let want = oracle_replay
                        .tree(*stream as usize)
                        .point_with(*index as usize, swat_tree::QueryOptions::default())
                        .unwrap();
                    match out {
                        Response::PointR { answer } => {
                            assert_eq!(answer.value.to_bits(), want.value.to_bits())
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                SimOp::TopK { k } => {
                    let (want, _) = oracle_replay.global_top_k(*k as usize, 1);
                    assert_eq!(
                        out,
                        &Response::TopKR {
                            complete: true,
                            entries: want.entries().to_vec()
                        }
                    );
                }
                SimOp::Heartbeat => {
                    assert_eq!(
                        out,
                        &Response::Pong {
                            nonce: shards as u64
                        }
                    )
                }
                SimOp::Status => match out {
                    Response::StatusR { replicas, .. } => {
                        assert!(replicas
                            .iter()
                            .all(|(_, h)| *h == crate::proto::WireHealth::Alive));
                    }
                    other => panic!("unexpected {other:?}"),
                },
            }
        }
        // Final state bit-identical to the oracle.
        let mut want = Vec::new();
        for s in 0..shards {
            let members = cluster.leader().map().members(s).to_vec();
            let mut set = swat_tree::StreamSet::new(cfg(), members.len());
            for op in &ops {
                if let SimOp::Ingest { row, .. } = op {
                    let sub: Vec<f64> = members.iter().map(|&g| row[g]).collect();
                    set.push_row(&sub);
                }
            }
            want.push(set.answers_digest());
        }
        assert_eq!(cluster.digests(), want);
        assert_eq!(oracle.answers_digest(), oracle.answers_digest());
    }

    #[test]
    fn crashed_replica_degrades_explicitly_and_recovers() {
        let (streams, shards) = (8, 2);
        // Replica 2 (shard 1) is down for a window mid-run.
        let plan = FaultPlan::new(7).with_crash(NodeId(2), 40, 4000).unwrap();
        let mut cluster = SimCluster::new(SimMode::Wire, plan, cfg(), streams, shards, 2);
        let mut saw_failed_shard = false;
        let mut saw_ok = false;
        for r in 0..30u64 {
            let row: Vec<f64> = (0..streams).map(|i| (r as usize + i) as f64).collect();
            match cluster.run(&[SimOp::Ingest { req_id: r, row }]).remove(0) {
                Response::IngestOk { failed_shards, .. } => {
                    if failed_shards.is_empty() {
                        saw_ok = true;
                    } else {
                        assert_eq!(failed_shards, vec![1], "only shard 1 can fail");
                        saw_failed_shard = true;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_ok, "early rows must apply everywhere");
        assert!(saw_failed_shard, "the crash window must surface");
        // Heartbeats mark the replica dead in the registry.
        cluster.run(&[SimOp::Heartbeat, SimOp::Heartbeat, SimOp::Heartbeat]);
        assert_eq!(
            cluster.leader().registry().health(2),
            crate::proto::WireHealth::Dead
        );
    }

    /// A quiet [`FailoverSim`] behaves exactly like the static ring:
    /// rows ack, digests match the oracle, node 0 keeps term 0.
    #[test]
    fn failover_sim_is_the_ring_cluster_when_nothing_fails() {
        let (streams, shards) = (8, 2);
        let mut sim = FailoverSim::new(FaultPlan::none(), cfg(), streams, shards, 2, 3);
        for r in 0..25u64 {
            let row: Vec<f64> = (0..streams)
                .map(|i| ((r * 5 + i as u64) % 13) as f64)
                .collect();
            assert!(sim.ingest_until_acked(r, &row, 10), "row {r} must ack");
        }
        assert_eq!(sim.live_leader(), Some(0));
        assert_eq!(sim.leader_terms().len(), 1, "no elections happened");
        for shard in 0..shards {
            let p = sim.primary_of(shard).unwrap();
            let members = swat_tree::shard_members(streams, shards, shard);
            let mut set = swat_tree::StreamSet::new(cfg(), members.len());
            for r in 0..25u64 {
                let row: Vec<f64> = (0..streams)
                    .map(|i| ((r * 5 + i as u64) % 13) as f64)
                    .collect();
                let sub: Vec<f64> = members.iter().map(|&g| row[g]).collect();
                set.push_row(&sub);
            }
            assert_eq!(
                sim.node(p).holding_digest(shard),
                Some(set.answers_digest()),
                "shard {shard} primary diverged from the oracle"
            );
        }
    }

    /// Kill the leader mid-run: a replica claims the next term, the
    /// cluster re-forms, and every acked row survives — digests of the
    /// serving copies match a never-crashed oracle over the acked rows.
    #[test]
    fn failover_sim_survives_a_leader_kill() {
        let (streams, shards) = (8, 2);
        let plan = FaultPlan::new(3)
            .with_crash_any(NodeId(0), 4, 100_000)
            .unwrap();
        let mut sim = FailoverSim::new(plan, cfg(), streams, shards, 2, 3);
        for r in 0..30u64 {
            let row: Vec<f64> = (0..streams)
                .map(|i| ((r * 3 + i as u64) % 11) as f64)
                .collect();
            assert!(sim.ingest_until_acked(r, &row, 60), "row {r} must ack");
            // One tick of real time between rows, so the crash window
            // opens mid-workload.
            sim.tick();
        }
        // Node 1 (lowest live id) took over on some term ≡ 1 (mod 3).
        let leader = sim.live_leader().expect("a live leader");
        assert_eq!(leader, 1);
        assert!(sim.node(leader).term() > 0);
        // An election happened; no term ever had two leaders (the sim
        // asserts that invariant every tick).
        assert!(sim.leader_terms().len() >= 2, "an election must happen");
        // Every acked row is in the serving copies.
        for shard in 0..shards {
            let p = sim.primary_of(shard).expect("every shard serves");
            let members = swat_tree::shard_members(streams, shards, shard);
            let mut set = swat_tree::StreamSet::new(cfg(), members.len());
            for r in 0..30u64 {
                let row: Vec<f64> = (0..streams)
                    .map(|i| ((r * 3 + i as u64) % 11) as f64)
                    .collect();
                let sub: Vec<f64> = members.iter().map(|&g| row[g]).collect();
                set.push_row(&sub);
            }
            assert_eq!(
                sim.node(p).holding_digest(shard),
                Some(set.answers_digest()),
                "shard {shard} lost acked rows across the failover"
            );
        }
        // Queries answer after the failover.
        assert!(matches!(
            sim.query_until(
                &Request::Point {
                    stream: 1,
                    index: 2
                },
                20
            ),
            Some(Response::PointR { .. })
        ));
    }
}
