//! A deterministic in-process daemon cluster over [`SimTransport`].
//!
//! [`SimCluster`] is the whole leader+replicas deployment squeezed into
//! one single-threaded, fault-injected event loop: every leader↔replica
//! exchange crosses a [`SimTransport`] pair whose fate the
//! `swat-net` [`Link`](swat_net::Link) adjudicates, with the same
//! bounded-retry/backoff discipline (`RetryPolicy`) the TCP peer client
//! uses and the same [`LeaderCore`]/[`ReplicaNode`] state machines the
//! TCP server runs.
//!
//! The cluster runs in one of two **arms** ([`SimMode`]):
//!
//! * `Wire` — every request and response is encoded to frame bytes,
//!   carried through the transport, checked, and decoded, exactly like
//!   production.
//! * `Model` — the same transport adjudication (identical fault-RNG
//!   consumption, identical clock arithmetic — the frames still cross),
//!   but the in-memory structs are handed over directly, bypassing the
//!   codec.
//!
//! For any `FaultPlan` and op script the two arms must produce
//! **bit-identical** observable outcome sequences and final replica
//! digests: the `sim_oracle` property test pins the wire layer to the
//! simulator oracle. Under `FaultPlan::none()` the outcomes are
//! additionally pinned to the plain `ShardedStreamSet` in-process
//! oracle.

use std::cell::RefCell;
use std::rc::Rc;

use swat_net::{FaultPlan, NodeId};
use swat_replication::RetryPolicy;
use swat_tree::SwatConfig;

use crate::cluster::{LeaderCore, Plan};
use crate::proto::{
    check_frame, decode_request, decode_response, encode_request, encode_response, Request,
    Response,
};
use crate::replica::ReplicaNode;
use crate::transport::{SimNet, SimTransport, Transport};

/// Which arm a [`SimCluster`] runs: production byte path or direct
/// struct hand-off (the model/oracle arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Encode → transport → check → decode, like the TCP daemon.
    Wire,
    /// Same transport fates, structs cross directly.
    Model,
}

/// One scripted client operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// Apply one global row (the leader fans sub-rows out).
    Ingest {
        /// Duplicate-safe write id.
        req_id: u64,
        /// The full global row.
        row: Vec<f64>,
    },
    /// Point query against one stream.
    Point {
        /// Global stream id.
        stream: u64,
        /// Window index.
        index: u32,
    },
    /// Distributed top-k.
    TopK {
        /// How many coefficients.
        k: u32,
    },
    /// Leader status snapshot (includes replica health).
    Status,
    /// One heartbeat round: the leader pings every replica and records
    /// the outcome in its registry.
    Heartbeat,
}

/// The deterministic cluster.
pub struct SimCluster {
    mode: SimMode,
    net: Rc<RefCell<SimNet>>,
    leader: LeaderCore,
    replicas: Vec<ReplicaNode>,
    policy: RetryPolicy,
    recv_deadline: u64,
    hb_nonce: u64,
}

impl SimCluster {
    /// A cluster of one leader plus `shards` replicas over `streams`
    /// global streams, faulted by `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(
        mode: SimMode,
        plan: FaultPlan,
        config: SwatConfig,
        streams: usize,
        shards: usize,
        miss_threshold: u32,
    ) -> Self {
        let net = SimNet::new(plan, shards + 1);
        let leader = LeaderCore::new(config, streams, shards, miss_threshold);
        let replicas = (0..shards)
            .map(|s| ReplicaNode::new((s + 1) as u64, config, streams, shards, s))
            .collect();
        SimCluster {
            mode,
            net,
            leader,
            replicas,
            policy: RetryPolicy::default(),
            recv_deadline: 8,
            hb_nonce: 0,
        }
    }

    /// Run the script, returning one observable [`Response`] per op —
    /// what an external client of this cluster would see.
    pub fn run(&mut self, ops: &[SimOp]) -> Vec<Response> {
        ops.iter().map(|op| self.step(op)).collect()
    }

    /// Per-replica answer digests, shard order — the state-equality
    /// hook for oracle comparisons.
    pub fn digests(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(ReplicaNode::answers_digest)
            .collect()
    }

    /// The leader (registry introspection for tests).
    pub fn leader(&self) -> &LeaderCore {
        &self.leader
    }

    fn step(&mut self, op: &SimOp) -> Response {
        match op {
            SimOp::Ingest { req_id, row } => {
                let req = Request::Ingest {
                    req_id: *req_id,
                    row: row.clone(),
                };
                match self.leader.plan(&req) {
                    Plan::Done(r) => r,
                    Plan::Fan(calls) => {
                        let results: Vec<Option<Response>> = calls
                            .iter()
                            .map(|c| self.exchange(c.shard, &c.request))
                            .collect();
                        self.leader.finish_ingest(*req_id, &results)
                    }
                }
            }
            SimOp::Point { stream, index } => {
                let req = Request::Point {
                    stream: *stream,
                    index: *index,
                };
                match self.leader.plan(&req) {
                    Plan::Done(r) => r,
                    Plan::Fan(calls) => {
                        let r = self.exchange(calls[0].shard, &calls[0].request);
                        self.leader.finish_routed(calls[0].shard, r)
                    }
                }
            }
            SimOp::TopK { k } => match self.leader.plan(&Request::TopK { k: *k }) {
                Plan::Done(r) => r,
                Plan::Fan(calls) => {
                    let locals: Vec<Option<Response>> = calls
                        .iter()
                        .map(|c| self.exchange(c.shard, &c.request))
                        .collect();
                    let (_tau, refines) = self.leader.plan_topk_round2(*k, &locals);
                    let scans: Vec<(usize, Option<Response>)> = refines
                        .iter()
                        .map(|c| (c.shard, self.exchange(c.shard, &c.request)))
                        .collect();
                    self.leader.finish_topk(*k, &locals, &scans)
                }
            },
            SimOp::Status => match self.leader.plan(&Request::Status) {
                Plan::Done(r) => r,
                Plan::Fan(_) => unreachable!("status is leader-local"),
            },
            SimOp::Heartbeat => {
                let shards = self.replicas.len();
                let mut alive = 0u64;
                for shard in 0..shards {
                    self.hb_nonce += 1;
                    let nonce = self.hb_nonce;
                    let ok = matches!(
                        self.exchange(shard, &Request::Ping { nonce }),
                        Some(Response::Pong { nonce: n }) if n == nonce
                    );
                    let at = self.net.borrow().now();
                    let node = (shard + 1) as u64;
                    if ok {
                        self.leader.registry_mut().record_success(at, node);
                        alive += 1;
                    } else {
                        self.leader.registry_mut().record_failure(at, node);
                    }
                }
                // The observable outcome of a heartbeat round: how many
                // replicas answered (a Pong with the round count).
                Response::Pong { nonce: alive }
            }
        }
    }

    /// One request/response exchange with replica `shard`, with the
    /// bounded-retry/backoff discipline. `None` after the last retry —
    /// the caller must surface that as explicit degradation.
    ///
    /// Every attempt models a fresh connection: stale in-flight frames
    /// are purged (a reconnecting TCP client never sees bytes from its
    /// previous connection), the request leg and response leg are each
    /// adjudicated by the fault injector, and the replica only handles
    /// what was actually delivered.
    fn exchange(&mut self, shard: usize, req: &Request) -> Option<Response> {
        let peer = NodeId(shard + 1);
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                self.net.borrow_mut().advance(self.policy.backoff(attempt));
            }
            {
                let mut n = self.net.borrow_mut();
                n.purge(NodeId::SOURCE);
                n.purge(peer);
            }
            let mut leader_tp =
                SimTransport::new(self.net.clone(), NodeId::SOURCE, peer, self.recv_deadline);
            let mut replica_tp =
                SimTransport::new(self.net.clone(), peer, NodeId::SOURCE, self.recv_deadline);
            // Request leg: a crashed endpoint refuses outright; a drop
            // or an over-deadline delay surfaces as the replica-side
            // receive timing out.
            if leader_tp.send_frame(&encode_request(req)).is_err() {
                continue;
            }
            let Ok(req_frame) = replica_tp.recv_frame() else {
                continue;
            };
            let actual_req = match self.mode {
                SimMode::Wire => {
                    let payload =
                        check_frame(&req_frame).expect("the sim link never corrupts frames");
                    decode_request(payload).expect("a valid frame decodes")
                }
                SimMode::Model => req.clone(),
            };
            let resp = self.replicas[shard].handle(&actual_req);
            // Response leg, same rules.
            if replica_tp.send_frame(&encode_response(&resp)).is_err() {
                continue;
            }
            let Ok(resp_frame) = leader_tp.recv_frame() else {
                continue;
            };
            let out = match self.mode {
                SimMode::Wire => decode_response(
                    check_frame(&resp_frame).expect("the sim link never corrupts frames"),
                )
                .expect("a valid frame decodes"),
                SimMode::Model => resp,
            };
            return Some(out);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::ShardedStreamSet;

    fn cfg() -> SwatConfig {
        SwatConfig::with_coefficients(16, 4).unwrap()
    }

    fn script(streams: usize) -> Vec<SimOp> {
        let mut ops = Vec::new();
        for r in 0..40u64 {
            let row: Vec<f64> = (0..streams)
                .map(|i| (((r as usize * 7 + i * 5) % 23) as f64) - 11.0)
                .collect();
            ops.push(SimOp::Ingest { req_id: r, row });
            if r % 8 == 3 {
                ops.push(SimOp::Point {
                    stream: (r % streams as u64),
                    index: (r % 16) as u32,
                });
            }
            if r % 16 == 7 {
                ops.push(SimOp::TopK { k: 4 });
                ops.push(SimOp::Heartbeat);
            }
        }
        ops.push(SimOp::Status);
        ops
    }

    #[test]
    fn ideal_cluster_matches_the_sharded_oracle() {
        let (streams, shards) = (11, 3);
        let ops = script(streams);
        let mut cluster =
            SimCluster::new(SimMode::Wire, FaultPlan::none(), cfg(), streams, shards, 3);
        let outcomes = cluster.run(&ops);

        // Replay the ingests against the in-process sharded oracle.
        let mut oracle = ShardedStreamSet::new(cfg(), streams, shards);
        for op in &ops {
            if let SimOp::Ingest { row, .. } = op {
                oracle.push_row(row);
            }
        }
        // Every ingest fully applied; every query answered; top-k
        // bit-identical to the oracle's merge.
        let mut oracle_replay = ShardedStreamSet::new(cfg(), streams, shards);
        for (op, out) in ops.iter().zip(&outcomes) {
            match op {
                SimOp::Ingest { req_id, row } => {
                    oracle_replay.push_row(row);
                    assert_eq!(
                        out,
                        &Response::IngestOk {
                            req_id: *req_id,
                            duplicate: false,
                            failed_shards: vec![]
                        }
                    );
                }
                SimOp::Point { stream, index } => {
                    let want = oracle_replay
                        .tree(*stream as usize)
                        .point_with(*index as usize, swat_tree::QueryOptions::default())
                        .unwrap();
                    match out {
                        Response::PointR { answer } => {
                            assert_eq!(answer.value.to_bits(), want.value.to_bits())
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                SimOp::TopK { k } => {
                    let (want, _) = oracle_replay.global_top_k(*k as usize, 1);
                    assert_eq!(
                        out,
                        &Response::TopKR {
                            complete: true,
                            entries: want.entries().to_vec()
                        }
                    );
                }
                SimOp::Heartbeat => {
                    assert_eq!(
                        out,
                        &Response::Pong {
                            nonce: shards as u64
                        }
                    )
                }
                SimOp::Status => match out {
                    Response::StatusR { replicas, .. } => {
                        assert!(replicas
                            .iter()
                            .all(|(_, h)| *h == crate::proto::WireHealth::Alive));
                    }
                    other => panic!("unexpected {other:?}"),
                },
            }
        }
        // Final state bit-identical to the oracle.
        let mut want = Vec::new();
        for s in 0..shards {
            let members = cluster.leader().map().members(s).to_vec();
            let mut set = swat_tree::StreamSet::new(cfg(), members.len());
            for op in &ops {
                if let SimOp::Ingest { row, .. } = op {
                    let sub: Vec<f64> = members.iter().map(|&g| row[g]).collect();
                    set.push_row(&sub);
                }
            }
            want.push(set.answers_digest());
        }
        assert_eq!(cluster.digests(), want);
        assert_eq!(oracle.answers_digest(), oracle.answers_digest());
    }

    #[test]
    fn crashed_replica_degrades_explicitly_and_recovers() {
        let (streams, shards) = (8, 2);
        // Replica 2 (shard 1) is down for a window mid-run.
        let plan = FaultPlan::new(7).with_crash(NodeId(2), 40, 4000).unwrap();
        let mut cluster = SimCluster::new(SimMode::Wire, plan, cfg(), streams, shards, 2);
        let mut saw_failed_shard = false;
        let mut saw_ok = false;
        for r in 0..30u64 {
            let row: Vec<f64> = (0..streams).map(|i| (r as usize + i) as f64).collect();
            match cluster.run(&[SimOp::Ingest { req_id: r, row }]).remove(0) {
                Response::IngestOk { failed_shards, .. } => {
                    if failed_shards.is_empty() {
                        saw_ok = true;
                    } else {
                        assert_eq!(failed_shards, vec![1], "only shard 1 can fail");
                        saw_failed_shard = true;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_ok, "early rows must apply everywhere");
        assert!(saw_failed_shard, "the crash window must surface");
        // Heartbeats mark the replica dead in the registry.
        cluster.run(&[SimOp::Heartbeat, SimOp::Heartbeat, SimOp::Heartbeat]);
        assert_eq!(
            cluster.leader().registry().health(2),
            crate::proto::WireHealth::Dead
        );
    }
}
