//! The `swatd` wire protocol: length-framed, CRC-checked messages.
//!
//! Frame layout (all integers little-endian, the `swat_tree::codec`
//! discipline):
//!
//! ```text
//! [u32 len] [u32 crc32(payload)] [payload = [u8 kind] [body...]]
//! ```
//!
//! The kind byte lives *inside* the checksummed payload — unlike the
//! snapshot section frame, which keeps its tag outside the CRC — so
//! **every** single-bit flip anywhere in a frame is detected: a flip in
//! the payload (kind included) breaks the CRC, a flip in the length word
//! yields `Truncated`/`Oversize`/`ChecksumMismatch`, and a flip in the
//! stored CRC is a mismatch by definition. The frame fuzz test pins this
//! for every bit of every representative message.
//!
//! Decoding is strict: the body must parse completely ([`ProtoError::
//! TrailingBytes`] otherwise), lengths are bounded by [`MAX_FRAME`]
//! before any allocation, counts are validated against the remaining
//! bytes (a hostile length cannot force an allocation), and `f64` fields
//! go through the NaN-rejecting cursor. Nothing in this module panics on
//! adversarial input.

use std::fmt;

use swat_tree::codec::{crc32, CodecError, Cursor};
use swat_tree::{PointAnswer, RangeMatch};
use swat_wavelet::TopCoeff;

/// Hard bound on a frame payload. A row of 100k streams is 800 KB;
/// 4 MiB leaves headroom while keeping a hostile length word from
/// provoking a large allocation.
pub const MAX_FRAME: usize = 4 << 20;

/// Bytes before the payload: the length and checksum words.
pub const HEADER_LEN: usize = 8;

/// A typed protocol failure. Every malformed input lands here; no
/// decode path panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The underlying codec rejected the bytes (truncation, checksum
    /// mismatch, NaN, bad field) at a byte offset.
    Codec(CodecError),
    /// The payload's kind byte names no known message.
    UnknownKind(u8),
    /// The header declares a payload larger than [`MAX_FRAME`].
    Oversize {
        /// The declared payload length.
        len: u64,
    },
    /// The body parsed but `extra` bytes were left over — a framing or
    /// version mismatch, not a short read.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A count field exceeds what the remaining bytes could hold.
    BadCount {
        /// What was being counted.
        what: &'static str,
        /// The declared count.
        count: u64,
    },
    /// A [`Request::Fenced`] envelope carried another fence. One level
    /// of fencing is the protocol; nesting is always a peer bug or an
    /// attack, never legal traffic.
    NestedFence,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Codec(e) => write!(f, "{e}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtoError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            ProtoError::BadCount { what, count } => {
                write!(f, "{what} count {count} exceeds the frame")
            }
            ProtoError::NestedFence => {
                write!(f, "a fenced envelope may not carry another fence")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> Self {
        ProtoError::Codec(e)
    }
}

/// A client- or leader-originated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: the sender announces itself (0 = an external client).
    Hello {
        /// Sender's node id.
        node: u64,
    },
    /// Liveness probe; answered with [`Response::Pong`] echoing `nonce`.
    Ping {
        /// Echo token tying the pong to this ping.
        nonce: u64,
    },
    /// Apply one synchronized row. On the client→leader hop `row` is the
    /// full global row; on the leader→replica hop it is the shard's
    /// sub-row. `req_id` makes retries duplicate-safe end to end.
    Ingest {
        /// Write id (PR 5 scheme): retries reuse it; replicas re-ack
        /// duplicates without re-applying.
        req_id: u64,
        /// The values, one per (global or shard-local) stream.
        row: Vec<f64>,
    },
    /// Point query against one global stream.
    Point {
        /// Global stream id.
        stream: u64,
        /// Window index.
        index: u32,
    },
    /// Range query (§"range" of the paper's query families) against one
    /// global stream: indices in `newest..=oldest` whose approximate
    /// value falls within `center ± radius`.
    Range {
        /// Global stream id.
        stream: u64,
        /// Center value `p`.
        center: f64,
        /// Radius `ε ≥ 0`.
        radius: f64,
        /// Most recent index (inclusive).
        newest: u32,
        /// Oldest index (inclusive).
        oldest: u32,
    },
    /// Exact distributed top-k over every stream (client→leader).
    TopK {
        /// How many coefficients.
        k: u32,
    },
    /// Round one of the distributed top-k (leader→replica): the
    /// replica's local top-k summary.
    LocalTopK {
        /// How many coefficients.
        k: u32,
    },
    /// Round two (leader→replica): every candidate with weight ≥ `tau`.
    TopKScan {
        /// The pruning threshold τ from round one.
        tau: f64,
    },
    /// Health/introspection snapshot.
    Status,
    /// Graceful shutdown: drain, checkpoint, exit.
    Shutdown,
    /// A term/epoch-stamped envelope around intra-cluster traffic. The
    /// receiver rejects it with [`Response::StaleTermR`] unless `term`
    /// is current (adopting any newer term first), and — when `shard`
    /// names a shard — with [`Response::StaleEpochR`] unless `epoch`
    /// matches its holding. `shard == NO_SHARD` fences node-level
    /// traffic (heartbeats) on the term alone. Nested fences are a
    /// decode error ([`ProtoError::NestedFence`]).
    Fenced {
        /// The sender's leadership term.
        term: u64,
        /// The sender (the node claiming leadership of `term`).
        leader: u64,
        /// Target shard, or [`NO_SHARD`] for node-level traffic.
        shard: u32,
        /// The shard's configuration epoch (0 when `shard == NO_SHARD`).
        epoch: u64,
        /// The fenced request. Never itself a `Fenced`.
        inner: Box<Request>,
    },
    /// A leadership claim: "I am the leader of `term`". Accepted iff
    /// `term` is newer than the receiver's; the acceptance reply is
    /// [`Response::SyncR`] describing the receiver's shard holdings, so
    /// one round both fences the old leader out and rebuilds the new
    /// leader's state.
    NewTerm {
        /// The claimed term.
        term: u64,
        /// The claimant's node id.
        leader: u64,
    },
    /// Stream one acked row to a shard's standby (leader→standby), under
    /// the same duplicate-safe `req_id` scheme as client ingest.
    Replicate {
        /// The sender's leadership term.
        term: u64,
        /// The shard being replicated.
        shard: u32,
        /// The shard's configuration epoch.
        epoch: u64,
        /// Write id; retries re-ack without re-applying.
        req_id: u64,
        /// The shard-local sub-row.
        row: Vec<f64>,
    },
    /// Read a shard's full state off its current primary (leader-only),
    /// answered with [`Response::ShardStateR`]. Used to seed a rejoined
    /// node's standby copy.
    FetchShard {
        /// The sender's leadership term.
        term: u64,
        /// The shard to export.
        shard: u32,
    },
    /// Install a full shard copy on the receiver as a standby at
    /// `epoch` (leader→rejoined node). Overwrites any stale holding.
    InstallShard {
        /// The sender's leadership term.
        term: u64,
        /// The shard being installed.
        shard: u32,
        /// The configuration epoch the copy is current at.
        epoch: u64,
        /// Rows applied to the copy.
        arrivals: u64,
        /// The applied write ids (ascending), for duplicate absorption.
        applied: Vec<u64>,
        /// The shard's `StreamSet` snapshot (SWMS v2 bytes).
        snapshot: Vec<u8>,
    },
    /// Make the receiver the shard's primary at `epoch` (leader-only).
    /// Sent to a standby on primary death, and to a surviving primary
    /// when a configuration change bumps the epoch under it.
    Promote {
        /// The sender's leadership term.
        term: u64,
        /// The shard.
        shard: u32,
        /// The new configuration epoch.
        epoch: u64,
    },
}

/// The `shard` value in [`Request::Fenced`] meaning "no shard: fence on
/// the term alone" (node-level heartbeats).
pub const NO_SHARD: u32 = u32::MAX;

/// Why a request could not be served. Codes are stable wire values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request referenced a stream/index outside the configuration.
    BadRequest,
    /// The node is a replica but got a leader-only request (or vice
    /// versa).
    WrongRole,
    /// An internal failure (e.g. the durable store rejected a write).
    Internal,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::WrongRole => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::WrongRole,
            3 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::BadRequest => write!(f, "bad request"),
            ErrorCode::WrongRole => write!(f, "wrong role"),
            ErrorCode::Internal => write!(f, "internal error"),
        }
    }
}

/// A response. Degradation is explicit: [`Response::Overloaded`],
/// [`Response::Unavailable`], and the `failed_shards` / `complete`
/// fields say exactly what was *not* done — silent loss is a protocol
/// violation the tests hunt for.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; the responder announces its node id.
    HelloOk {
        /// Responder's node id.
        node: u64,
    },
    /// Liveness echo.
    Pong {
        /// The ping's nonce.
        nonce: u64,
    },
    /// Ingest outcome. `failed_shards` empty ⇔ the row is fully
    /// applied; non-empty names every shard whose sub-row did **not**
    /// apply (explicit degradation, never silent).
    IngestOk {
        /// The request's write id.
        req_id: u64,
        /// Whether this id had already been applied (retry absorbed).
        duplicate: bool,
        /// Shards that failed to apply the sub-row.
        failed_shards: Vec<u32>,
    },
    /// Point answer.
    PointR {
        /// The approximation and its error bound.
        answer: WirePointAnswer,
    },
    /// Range matches, ascending by index.
    RangeR {
        /// Matching indices and their approximate values.
        matches: Vec<WireRangeMatch>,
    },
    /// Distributed top-k result. `complete == false` means one or more
    /// shards were unreachable and their candidates are missing — the
    /// entries present are still exact for the shards that answered.
    TopKR {
        /// Whether every shard contributed.
        complete: bool,
        /// The merged top-k, rank order.
        entries: Vec<TopCoeff>,
    },
    /// A replica's round-one message.
    LocalTopKR {
        /// The replica's local pruning threshold.
        threshold: f64,
        /// Whether the summary truncated (held exactly `k`).
        truncated: bool,
        /// The local top-k entries, rank order.
        entries: Vec<TopCoeff>,
    },
    /// A replica's round-two refinement: all candidates ≥ τ.
    ScanR {
        /// Candidates, (stream, index) order.
        entries: Vec<TopCoeff>,
    },
    /// Health snapshot.
    StatusR {
        /// This node's id.
        node: u64,
        /// The node's current leadership term.
        term: u64,
        /// Who the node believes leads that term.
        leader: u64,
        /// Rows applied so far (replica: local; leader: acked rows).
        arrivals: u64,
        /// Per-peer health, leader only: `(node, health)` pairs.
        replicas: Vec<(u64, WireHealth)>,
        /// This node's local durable-store health.
        store: WireStoreHealth,
    },
    /// Graceful shutdown acknowledged; the node drains and exits.
    ShutdownOk {
        /// In-flight requests drained before the ack.
        drained: u64,
    },
    /// Load shed: the per-peer outbound budget is exhausted. Retry
    /// later; nothing was applied.
    Overloaded,
    /// The shard owning the referenced stream is unreachable.
    Unavailable {
        /// The dead/unreachable node.
        node: u64,
    },
    /// Typed failure.
    ErrorR {
        /// What kind of failure.
        code: ErrorCode,
    },
    /// The sender's term is stale: the receiver has adopted a newer
    /// one. A leader seeing this steps down immediately — the fence
    /// that makes split-brain impossible.
    StaleTermR {
        /// The receiver's current term.
        term: u64,
        /// Who the receiver believes leads that term.
        leader: u64,
    },
    /// The receiver is not the leader; retry against `leader` (the
    /// client-side failover hint).
    NotLeaderR {
        /// The node to ask instead.
        leader: u64,
        /// The term that node leads, as far as the receiver knows.
        term: u64,
    },
    /// Acceptance of a [`Request::NewTerm`] claim, carrying everything
    /// the new leader needs to rebuild its routing state: the adopted
    /// term and the responder's shard holdings.
    SyncR {
        /// The term the responder just adopted.
        term: u64,
        /// The responder's shard holdings.
        holdings: Vec<WireHolding>,
    },
    /// A full shard export ([`Request::FetchShard`] answer).
    ShardStateR {
        /// The exported shard.
        shard: u32,
        /// The holder's configuration epoch for it.
        epoch: u64,
        /// Rows applied.
        arrivals: u64,
        /// The applied write ids (ascending).
        applied: Vec<u64>,
        /// The shard's `StreamSet` snapshot (SWMS v2 bytes).
        snapshot: Vec<u8>,
    },
    /// A shard configuration change ([`Request::Promote`] /
    /// [`Request::InstallShard`]) took effect at `epoch`.
    EpochAck {
        /// The shard.
        shard: u32,
        /// The epoch now in force on the responder.
        epoch: u64,
    },
    /// The sender's shard epoch is stale (the term was fine). The
    /// leader re-issues the configuration; nothing was applied.
    StaleEpochR {
        /// The shard.
        shard: u32,
        /// The receiver's current epoch for it.
        epoch: u64,
    },
}

/// One shard holding in a [`Response::SyncR`]: what the responder holds
/// and in which role, so a freshly elected leader can reconstruct the
/// assignment without a recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHolding {
    /// The shard held.
    pub shard: u32,
    /// The configuration epoch the holding is current at.
    pub epoch: u64,
    /// Whether the holder is the shard's primary (else standby).
    pub primary: bool,
    /// Rows applied to the holding.
    pub arrivals: u64,
}

/// [`swat_tree::PointAnswer`] as wire fields (kept separate so the wire
/// format cannot drift silently when the query engine grows fields).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePointAnswer {
    /// The approximate value.
    pub value: f64,
    /// Sound bound on `|true − value|`.
    pub error_bound: f64,
    /// Serving summary level.
    pub level: u32,
    /// Whether the answer was extrapolated.
    pub extrapolated: bool,
}

impl From<PointAnswer> for WirePointAnswer {
    fn from(a: PointAnswer) -> Self {
        WirePointAnswer {
            value: a.value,
            error_bound: a.error_bound,
            level: a.level as u32,
            extrapolated: a.extrapolated,
        }
    }
}

/// [`swat_tree::RangeMatch`] as wire fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRangeMatch {
    /// Matching window index.
    pub index: u32,
    /// Its approximate value.
    pub value: f64,
}

impl From<RangeMatch> for WireRangeMatch {
    fn from(m: RangeMatch) -> Self {
        WireRangeMatch {
            index: m.index as u32,
            value: m.value,
        }
    }
}

/// Replica health as seen by the leader's registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireHealth {
    /// Responding to heartbeats.
    Alive,
    /// Missed at least one heartbeat, not yet written off.
    Suspect,
    /// Missed `miss_threshold` heartbeats; traffic routes around it.
    Dead,
}

impl WireHealth {
    fn to_wire(self) -> u8 {
        match self {
            WireHealth::Alive => 0,
            WireHealth::Suspect => 1,
            WireHealth::Dead => 2,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => WireHealth::Alive,
            1 => WireHealth::Suspect,
            2 => WireHealth::Dead,
            _ => return None,
        })
    }
}

impl fmt::Display for WireHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireHealth::Alive => write!(f, "alive"),
            WireHealth::Suspect => write!(f, "suspect"),
            WireHealth::Dead => write!(f, "dead"),
        }
    }
}

/// The responding node's *local durable-store* health: whether its
/// background segment flushes are parked on a persistent disk fault.
/// Distinct from [`WireHealth`], which is the leader's liveness view of
/// its peers; a node can be perfectly reachable while its disk degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStoreHealth {
    /// Flushes are keeping up (or the node runs an in-memory backing).
    Healthy,
    /// Frozen generations are parked on a disk fault; ingest continues
    /// on the WAL and the store retries with bounded backoff.
    Degraded {
        /// Parked frozen generations across the node's holdings.
        parked: u32,
    },
}

impl WireStoreHealth {
    fn put(self, p: &mut Vec<u8>) {
        match self {
            WireStoreHealth::Healthy => p.push(0),
            WireStoreHealth::Degraded { parked } => {
                p.push(1);
                put_u32(p, parked);
            }
        }
    }

    fn take(c: &mut Cursor<'_>) -> Result<Self, ProtoError> {
        Ok(match c.u8()? {
            0 => WireStoreHealth::Healthy,
            1 => WireStoreHealth::Degraded { parked: c.u32()? },
            b => return Err(ProtoError::UnknownKind(b)),
        })
    }
}

impl fmt::Display for WireStoreHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireStoreHealth::Healthy => write!(f, "healthy"),
            WireStoreHealth::Degraded { parked } => {
                write!(f, "degraded({parked} parked)")
            }
        }
    }
}

// Kind bytes. Requests are < 0x80, responses ≥ 0x80.
const K_HELLO: u8 = 0x01;
const K_PING: u8 = 0x02;
const K_INGEST: u8 = 0x03;
const K_POINT: u8 = 0x04;
const K_RANGE: u8 = 0x05;
const K_TOPK: u8 = 0x06;
const K_LOCAL_TOPK: u8 = 0x07;
const K_TOPK_SCAN: u8 = 0x08;
const K_STATUS: u8 = 0x09;
const K_SHUTDOWN: u8 = 0x0A;
const K_FENCED: u8 = 0x0B;
const K_NEW_TERM: u8 = 0x0C;
const K_REPLICATE: u8 = 0x0D;
const K_FETCH_SHARD: u8 = 0x0E;
const K_INSTALL_SHARD: u8 = 0x0F;
const K_PROMOTE: u8 = 0x10;
const K_HELLO_OK: u8 = 0x81;
const K_PONG: u8 = 0x82;
const K_INGEST_OK: u8 = 0x83;
const K_POINT_R: u8 = 0x84;
const K_RANGE_R: u8 = 0x85;
const K_TOPK_R: u8 = 0x86;
const K_LOCAL_TOPK_R: u8 = 0x87;
const K_SCAN_R: u8 = 0x88;
const K_STATUS_R: u8 = 0x89;
const K_SHUTDOWN_OK: u8 = 0x8A;
const K_OVERLOADED: u8 = 0x8B;
const K_UNAVAILABLE: u8 = 0x8C;
const K_ERROR_R: u8 = 0x8D;
const K_STALE_TERM_R: u8 = 0x8E;
const K_NOT_LEADER_R: u8 = 0x8F;
const K_SYNC_R: u8 = 0x90;
const K_SHARD_STATE_R: u8 = 0x91;
const K_EPOCH_ACK: u8 = 0x92;
const K_STALE_EPOCH_R: u8 = 0x93;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_coeffs(out: &mut Vec<u8>, entries: &[TopCoeff]) {
    put_u32(out, entries.len() as u32);
    for e in entries {
        put_u64(out, e.stream);
        put_u32(out, e.index);
        put_f64(out, e.value);
    }
}

/// Guard a declared element count against the bytes actually present,
/// so a corrupt count cannot force a huge allocation.
fn checked_count(
    c: &Cursor<'_>,
    what: &'static str,
    count: u64,
    elem_bytes: usize,
) -> Result<usize, ProtoError> {
    let need = count.checked_mul(elem_bytes as u64);
    match need {
        Some(n) if n <= c.remaining() as u64 => Ok(count as usize),
        _ => Err(ProtoError::BadCount { what, count }),
    }
}

fn take_coeffs(c: &mut Cursor<'_>) -> Result<Vec<TopCoeff>, ProtoError> {
    let count = c.u32()? as u64;
    let count = checked_count(c, "top-k entries", count, 20)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(TopCoeff {
            stream: c.u64()?,
            index: c.u32()?,
            value: c.f64()?,
        });
    }
    Ok(entries)
}

/// Serialize a payload (kind + body) into a complete frame.
fn finish_frame(payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME, "outbound frame within bound");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

fn put_ids(out: &mut Vec<u8>, ids: &[u64]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u64(out, id);
    }
}

fn take_ids(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<u64>, ProtoError> {
    let count = c.u32()? as u64;
    let count = checked_count(c, what, count, 8)?;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(c.u64()?);
    }
    Ok(ids)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn take_bytes(c: &mut Cursor<'_>, what: &'static str) -> Result<Vec<u8>, ProtoError> {
    let count = c.u32()? as u64;
    let count = checked_count(c, what, count, 1)?;
    Ok(c.take(count)?.to_vec())
}

/// Encode `req` as a complete wire frame (header + payload).
pub fn encode_request(req: &Request) -> Vec<u8> {
    finish_frame(request_payload(req))
}

/// The unframed payload (kind + body) of `req`. [`Request::Fenced`]
/// embeds its inner request's payload verbatim, so fencing a message
/// never re-frames it.
fn request_payload(req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    match req {
        Request::Hello { node } => {
            p.push(K_HELLO);
            put_u64(&mut p, *node);
        }
        Request::Ping { nonce } => {
            p.push(K_PING);
            put_u64(&mut p, *nonce);
        }
        Request::Ingest { req_id, row } => {
            p.push(K_INGEST);
            put_u64(&mut p, *req_id);
            put_u32(&mut p, row.len() as u32);
            for &v in row {
                put_f64(&mut p, v);
            }
        }
        Request::Point { stream, index } => {
            p.push(K_POINT);
            put_u64(&mut p, *stream);
            put_u32(&mut p, *index);
        }
        Request::Range {
            stream,
            center,
            radius,
            newest,
            oldest,
        } => {
            p.push(K_RANGE);
            put_u64(&mut p, *stream);
            put_f64(&mut p, *center);
            put_f64(&mut p, *radius);
            put_u32(&mut p, *newest);
            put_u32(&mut p, *oldest);
        }
        Request::TopK { k } => {
            p.push(K_TOPK);
            put_u32(&mut p, *k);
        }
        Request::LocalTopK { k } => {
            p.push(K_LOCAL_TOPK);
            put_u32(&mut p, *k);
        }
        Request::TopKScan { tau } => {
            p.push(K_TOPK_SCAN);
            put_f64(&mut p, *tau);
        }
        Request::Status => p.push(K_STATUS),
        Request::Shutdown => p.push(K_SHUTDOWN),
        Request::Fenced {
            term,
            leader,
            shard,
            epoch,
            inner,
        } => {
            p.push(K_FENCED);
            put_u64(&mut p, *term);
            put_u64(&mut p, *leader);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
            debug_assert!(
                !matches!(**inner, Request::Fenced { .. }),
                "fences never nest"
            );
            p.extend_from_slice(&request_payload(inner));
        }
        Request::NewTerm { term, leader } => {
            p.push(K_NEW_TERM);
            put_u64(&mut p, *term);
            put_u64(&mut p, *leader);
        }
        Request::Replicate {
            term,
            shard,
            epoch,
            req_id,
            row,
        } => {
            p.push(K_REPLICATE);
            put_u64(&mut p, *term);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
            put_u64(&mut p, *req_id);
            put_u32(&mut p, row.len() as u32);
            for &v in row {
                put_f64(&mut p, v);
            }
        }
        Request::FetchShard { term, shard } => {
            p.push(K_FETCH_SHARD);
            put_u64(&mut p, *term);
            put_u32(&mut p, *shard);
        }
        Request::InstallShard {
            term,
            shard,
            epoch,
            arrivals,
            applied,
            snapshot,
        } => {
            p.push(K_INSTALL_SHARD);
            put_u64(&mut p, *term);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
            put_u64(&mut p, *arrivals);
            put_ids(&mut p, applied);
            put_bytes(&mut p, snapshot);
        }
        Request::Promote { term, shard, epoch } => {
            p.push(K_PROMOTE);
            put_u64(&mut p, *term);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
        }
    }
    p
}

/// Encode `resp` as a complete wire frame (header + payload).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    match resp {
        Response::HelloOk { node } => {
            p.push(K_HELLO_OK);
            put_u64(&mut p, *node);
        }
        Response::Pong { nonce } => {
            p.push(K_PONG);
            put_u64(&mut p, *nonce);
        }
        Response::IngestOk {
            req_id,
            duplicate,
            failed_shards,
        } => {
            p.push(K_INGEST_OK);
            put_u64(&mut p, *req_id);
            p.push(*duplicate as u8);
            put_u32(&mut p, failed_shards.len() as u32);
            for &s in failed_shards {
                put_u32(&mut p, s);
            }
        }
        Response::PointR { answer } => {
            p.push(K_POINT_R);
            put_f64(&mut p, answer.value);
            put_f64(&mut p, answer.error_bound);
            put_u32(&mut p, answer.level);
            p.push(answer.extrapolated as u8);
        }
        Response::RangeR { matches } => {
            p.push(K_RANGE_R);
            put_u32(&mut p, matches.len() as u32);
            for m in matches {
                put_u32(&mut p, m.index);
                put_f64(&mut p, m.value);
            }
        }
        Response::TopKR { complete, entries } => {
            p.push(K_TOPK_R);
            p.push(*complete as u8);
            put_coeffs(&mut p, entries);
        }
        Response::LocalTopKR {
            threshold,
            truncated,
            entries,
        } => {
            p.push(K_LOCAL_TOPK_R);
            put_f64(&mut p, *threshold);
            p.push(*truncated as u8);
            put_coeffs(&mut p, entries);
        }
        Response::ScanR { entries } => {
            p.push(K_SCAN_R);
            put_coeffs(&mut p, entries);
        }
        Response::StatusR {
            node,
            term,
            leader,
            arrivals,
            replicas,
            store,
        } => {
            p.push(K_STATUS_R);
            put_u64(&mut p, *node);
            put_u64(&mut p, *term);
            put_u64(&mut p, *leader);
            put_u64(&mut p, *arrivals);
            put_u32(&mut p, replicas.len() as u32);
            for (n, h) in replicas {
                put_u64(&mut p, *n);
                p.push(h.to_wire());
            }
            store.put(&mut p);
        }
        Response::ShutdownOk { drained } => {
            p.push(K_SHUTDOWN_OK);
            put_u64(&mut p, *drained);
        }
        Response::Overloaded => p.push(K_OVERLOADED),
        Response::Unavailable { node } => {
            p.push(K_UNAVAILABLE);
            put_u64(&mut p, *node);
        }
        Response::ErrorR { code } => {
            p.push(K_ERROR_R);
            p.push(code.to_wire());
        }
        Response::StaleTermR { term, leader } => {
            p.push(K_STALE_TERM_R);
            put_u64(&mut p, *term);
            put_u64(&mut p, *leader);
        }
        Response::NotLeaderR { leader, term } => {
            p.push(K_NOT_LEADER_R);
            put_u64(&mut p, *leader);
            put_u64(&mut p, *term);
        }
        Response::SyncR { term, holdings } => {
            p.push(K_SYNC_R);
            put_u64(&mut p, *term);
            put_u32(&mut p, holdings.len() as u32);
            for h in holdings {
                put_u32(&mut p, h.shard);
                put_u64(&mut p, h.epoch);
                p.push(h.primary as u8);
                put_u64(&mut p, h.arrivals);
            }
        }
        Response::ShardStateR {
            shard,
            epoch,
            arrivals,
            applied,
            snapshot,
        } => {
            p.push(K_SHARD_STATE_R);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
            put_u64(&mut p, *arrivals);
            put_ids(&mut p, applied);
            put_bytes(&mut p, snapshot);
        }
        Response::EpochAck { shard, epoch } => {
            p.push(K_EPOCH_ACK);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
        }
        Response::StaleEpochR { shard, epoch } => {
            p.push(K_STALE_EPOCH_R);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *epoch);
        }
    }
    finish_frame(p)
}

/// Split a complete frame into its verified payload: checks the length
/// word against both [`MAX_FRAME`] and the bytes present, then the
/// CRC-32 over the whole payload.
///
/// # Errors
///
/// [`ProtoError::Oversize`], [`ProtoError::Codec`] (truncated /
/// checksum mismatch), or [`ProtoError::TrailingBytes`].
pub fn check_frame(frame: &[u8]) -> Result<&[u8], ProtoError> {
    let mut c = Cursor::new(frame);
    let len = c.u32()? as u64;
    if len > MAX_FRAME as u64 {
        return Err(ProtoError::Oversize { len });
    }
    let stored = c.u32()?;
    if (len as usize) > c.remaining() {
        return Err(ProtoError::Codec(CodecError::Truncated {
            offset: HEADER_LEN,
        }));
    }
    let payload = c.take(len as usize)?;
    if !c.is_empty() {
        return Err(ProtoError::TrailingBytes {
            extra: c.remaining(),
        });
    }
    let computed = crc32(payload);
    if computed != stored {
        return Err(ProtoError::Codec(CodecError::ChecksumMismatch {
            offset: HEADER_LEN,
            stored,
            computed,
        }));
    }
    if payload.is_empty() {
        return Err(ProtoError::Codec(CodecError::Truncated {
            offset: HEADER_LEN,
        }));
    }
    Ok(payload)
}

/// Decode a verified payload (from [`check_frame`]) as a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let req = match kind {
        K_HELLO => Request::Hello { node: c.u64()? },
        K_PING => Request::Ping { nonce: c.u64()? },
        K_INGEST => {
            let req_id = c.u64()?;
            let count = c.u32()? as u64;
            let count = checked_count(&c, "row values", count, 8)?;
            let mut row = Vec::with_capacity(count);
            for _ in 0..count {
                row.push(c.f64()?);
            }
            Request::Ingest { req_id, row }
        }
        K_POINT => Request::Point {
            stream: c.u64()?,
            index: c.u32()?,
        },
        K_RANGE => Request::Range {
            stream: c.u64()?,
            center: c.f64()?,
            radius: c.f64()?,
            newest: c.u32()?,
            oldest: c.u32()?,
        },
        K_TOPK => Request::TopK { k: c.u32()? },
        K_LOCAL_TOPK => Request::LocalTopK { k: c.u32()? },
        K_TOPK_SCAN => Request::TopKScan { tau: c.f64()? },
        K_STATUS => Request::Status,
        K_SHUTDOWN => Request::Shutdown,
        K_FENCED => {
            let term = c.u64()?;
            let leader = c.u64()?;
            let shard = c.u32()?;
            let epoch = c.u64()?;
            let rest = c.take(c.remaining())?;
            let inner = decode_request(rest)?;
            if matches!(inner, Request::Fenced { .. }) {
                return Err(ProtoError::NestedFence);
            }
            Request::Fenced {
                term,
                leader,
                shard,
                epoch,
                inner: Box::new(inner),
            }
        }
        K_NEW_TERM => Request::NewTerm {
            term: c.u64()?,
            leader: c.u64()?,
        },
        K_REPLICATE => {
            let term = c.u64()?;
            let shard = c.u32()?;
            let epoch = c.u64()?;
            let req_id = c.u64()?;
            let count = c.u32()? as u64;
            let count = checked_count(&c, "replicated row values", count, 8)?;
            let mut row = Vec::with_capacity(count);
            for _ in 0..count {
                row.push(c.f64()?);
            }
            Request::Replicate {
                term,
                shard,
                epoch,
                req_id,
                row,
            }
        }
        K_FETCH_SHARD => Request::FetchShard {
            term: c.u64()?,
            shard: c.u32()?,
        },
        K_INSTALL_SHARD => {
            let term = c.u64()?;
            let shard = c.u32()?;
            let epoch = c.u64()?;
            let arrivals = c.u64()?;
            let applied = take_ids(&mut c, "installed write ids")?;
            let snapshot = take_bytes(&mut c, "shard snapshot bytes")?;
            Request::InstallShard {
                term,
                shard,
                epoch,
                arrivals,
                applied,
                snapshot,
            }
        }
        K_PROMOTE => Request::Promote {
            term: c.u64()?,
            shard: c.u32()?,
            epoch: c.u64()?,
        },
        other => return Err(ProtoError::UnknownKind(other)),
    };
    if !c.is_empty() {
        return Err(ProtoError::TrailingBytes {
            extra: c.remaining(),
        });
    }
    Ok(req)
}

/// Decode a verified payload (from [`check_frame`]) as a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let resp = match kind {
        K_HELLO_OK => Response::HelloOk { node: c.u64()? },
        K_PONG => Response::Pong { nonce: c.u64()? },
        K_INGEST_OK => {
            let req_id = c.u64()?;
            let duplicate = c.u8()? != 0;
            let count = c.u32()? as u64;
            let count = checked_count(&c, "failed shards", count, 4)?;
            let mut failed_shards = Vec::with_capacity(count);
            for _ in 0..count {
                failed_shards.push(c.u32()?);
            }
            Response::IngestOk {
                req_id,
                duplicate,
                failed_shards,
            }
        }
        K_POINT_R => Response::PointR {
            answer: WirePointAnswer {
                value: c.f64()?,
                error_bound: c.f64()?,
                level: c.u32()?,
                extrapolated: c.u8()? != 0,
            },
        },
        K_RANGE_R => {
            let count = c.u32()? as u64;
            let count = checked_count(&c, "range matches", count, 12)?;
            let mut matches = Vec::with_capacity(count);
            for _ in 0..count {
                matches.push(WireRangeMatch {
                    index: c.u32()?,
                    value: c.f64()?,
                });
            }
            Response::RangeR { matches }
        }
        K_TOPK_R => Response::TopKR {
            complete: c.u8()? != 0,
            entries: take_coeffs(&mut c)?,
        },
        K_LOCAL_TOPK_R => Response::LocalTopKR {
            threshold: {
                // Infinity is legal here (a k=0 summary prunes all),
                // NaN is not; the cursor rejects NaN.
                c.f64()?
            },
            truncated: c.u8()? != 0,
            entries: take_coeffs(&mut c)?,
        },
        K_SCAN_R => Response::ScanR {
            entries: take_coeffs(&mut c)?,
        },
        K_STATUS_R => {
            let node = c.u64()?;
            let term = c.u64()?;
            let leader = c.u64()?;
            let arrivals = c.u64()?;
            let count = c.u32()? as u64;
            let count = checked_count(&c, "replica health entries", count, 9)?;
            let mut replicas = Vec::with_capacity(count);
            for _ in 0..count {
                let n = c.u64()?;
                let h = c.u8()?;
                let h = WireHealth::from_wire(h).ok_or(ProtoError::UnknownKind(h))?;
                replicas.push((n, h));
            }
            let store = WireStoreHealth::take(&mut c)?;
            Response::StatusR {
                node,
                term,
                leader,
                arrivals,
                replicas,
                store,
            }
        }
        K_SHUTDOWN_OK => Response::ShutdownOk { drained: c.u64()? },
        K_OVERLOADED => Response::Overloaded,
        K_UNAVAILABLE => Response::Unavailable { node: c.u64()? },
        K_ERROR_R => {
            let b = c.u8()?;
            Response::ErrorR {
                code: ErrorCode::from_wire(b).ok_or(ProtoError::UnknownKind(b))?,
            }
        }
        K_STALE_TERM_R => Response::StaleTermR {
            term: c.u64()?,
            leader: c.u64()?,
        },
        K_NOT_LEADER_R => Response::NotLeaderR {
            leader: c.u64()?,
            term: c.u64()?,
        },
        K_SYNC_R => {
            let term = c.u64()?;
            let count = c.u32()? as u64;
            let count = checked_count(&c, "sync holdings", count, 21)?;
            let mut holdings = Vec::with_capacity(count);
            for _ in 0..count {
                holdings.push(WireHolding {
                    shard: c.u32()?,
                    epoch: c.u64()?,
                    primary: c.u8()? != 0,
                    arrivals: c.u64()?,
                });
            }
            Response::SyncR { term, holdings }
        }
        K_SHARD_STATE_R => {
            let shard = c.u32()?;
            let epoch = c.u64()?;
            let arrivals = c.u64()?;
            let applied = take_ids(&mut c, "exported write ids")?;
            let snapshot = take_bytes(&mut c, "shard snapshot bytes")?;
            Response::ShardStateR {
                shard,
                epoch,
                arrivals,
                applied,
                snapshot,
            }
        }
        K_EPOCH_ACK => Response::EpochAck {
            shard: c.u32()?,
            epoch: c.u64()?,
        },
        K_STALE_EPOCH_R => Response::StaleEpochR {
            shard: c.u32()?,
            epoch: c.u64()?,
        },
        other => return Err(ProtoError::UnknownKind(other)),
    };
    if !c.is_empty() {
        return Err(ProtoError::TrailingBytes {
            extra: c.remaining(),
        });
    }
    Ok(resp)
}

/// One representative message of every request kind, exercising every
/// field type — the corpus the frame fuzzer mutates.
pub fn sample_requests() -> Vec<Request> {
    vec![
        Request::Hello { node: 3 },
        Request::Ping { nonce: 0xDEAD_BEEF },
        Request::Ingest {
            req_id: 42,
            row: vec![1.5, -2.25, 0.0],
        },
        Request::Point {
            stream: 7,
            index: 31,
        },
        Request::Range {
            stream: 2,
            center: 10.0,
            radius: 0.5,
            newest: 0,
            oldest: 15,
        },
        Request::TopK { k: 5 },
        Request::LocalTopK { k: 3 },
        Request::TopKScan { tau: 4.75 },
        Request::Status,
        Request::Shutdown,
        Request::Fenced {
            term: 7,
            leader: 2,
            shard: 1,
            epoch: 3,
            inner: Box::new(Request::Ingest {
                req_id: 42,
                row: vec![0.5, -1.0],
            }),
        },
        Request::Fenced {
            term: 9,
            leader: 4,
            shard: NO_SHARD,
            epoch: 0,
            inner: Box::new(Request::Ping { nonce: 17 }),
        },
        Request::NewTerm { term: 5, leader: 1 },
        Request::Replicate {
            term: 5,
            shard: 2,
            epoch: 1,
            req_id: 43,
            row: vec![2.5],
        },
        Request::FetchShard { term: 5, shard: 0 },
        Request::InstallShard {
            term: 5,
            shard: 0,
            epoch: 2,
            arrivals: 4,
            applied: vec![40, 41, 42, 43],
            snapshot: vec![0xAB, 0xCD, 0xEF],
        },
        Request::Promote {
            term: 5,
            shard: 2,
            epoch: 2,
        },
    ]
}

/// One representative message of every response kind; see
/// [`sample_requests`].
pub fn sample_responses() -> Vec<Response> {
    vec![
        Response::HelloOk { node: 1 },
        Response::Pong { nonce: 9 },
        Response::IngestOk {
            req_id: 42,
            duplicate: true,
            failed_shards: vec![1, 3],
        },
        Response::PointR {
            answer: WirePointAnswer {
                value: 3.5,
                error_bound: 0.25,
                level: 2,
                extrapolated: false,
            },
        },
        Response::RangeR {
            matches: vec![
                WireRangeMatch {
                    index: 4,
                    value: 9.75,
                },
                WireRangeMatch {
                    index: 9,
                    value: 10.25,
                },
            ],
        },
        Response::TopKR {
            complete: false,
            entries: vec![TopCoeff {
                stream: 6,
                index: 0,
                value: -12.5,
            }],
        },
        Response::LocalTopKR {
            threshold: 2.5,
            truncated: true,
            entries: vec![TopCoeff {
                stream: 1,
                index: 2,
                value: 2.5,
            }],
        },
        Response::ScanR { entries: vec![] },
        Response::StatusR {
            node: 0,
            term: 4,
            leader: 0,
            arrivals: 1000,
            replicas: vec![(1, WireHealth::Alive), (2, WireHealth::Dead)],
            store: WireStoreHealth::Degraded { parked: 3 },
        },
        Response::ShutdownOk { drained: 3 },
        Response::Overloaded,
        Response::Unavailable { node: 2 },
        Response::ErrorR {
            code: ErrorCode::WrongRole,
        },
        Response::StaleTermR { term: 6, leader: 2 },
        Response::NotLeaderR { leader: 2, term: 6 },
        Response::SyncR {
            term: 6,
            holdings: vec![
                WireHolding {
                    shard: 0,
                    epoch: 1,
                    primary: true,
                    arrivals: 12,
                },
                WireHolding {
                    shard: 1,
                    epoch: 0,
                    primary: false,
                    arrivals: 12,
                },
            ],
        },
        Response::ShardStateR {
            shard: 1,
            epoch: 2,
            arrivals: 12,
            applied: vec![1, 2, 3],
            snapshot: vec![0x01, 0x02],
        },
        Response::EpochAck { shard: 1, epoch: 2 },
        Response::StaleEpochR { shard: 1, epoch: 3 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let frame = encode_request(&req);
            let payload = check_frame(&frame).unwrap();
            assert_eq!(decode_request(payload).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let frame = encode_response(&resp);
            let payload = check_frame(&frame).unwrap();
            assert_eq!(decode_response(payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut frame = encode_request(&Request::Status);
        frame[0..4].copy_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            check_frame(&frame),
            Err(ProtoError::Oversize { .. })
        ));
    }

    #[test]
    fn hostile_count_cannot_allocate() {
        // An Ingest frame whose row count says "u32::MAX values" but
        // whose body holds none: BadCount, not an OOM attempt.
        let mut p = vec![K_INGEST];
        put_u64(&mut p, 1);
        put_u32(&mut p, u32::MAX);
        let frame = finish_frame(p);
        let payload = check_frame(&frame).unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(ProtoError::BadCount { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut p = vec![K_STATUS];
        p.push(0xFF);
        let frame = finish_frame(p);
        let payload = check_frame(&frame).unwrap();
        assert_eq!(
            decode_request(payload),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn nan_values_are_rejected() {
        let mut p = vec![K_TOPK_SCAN];
        p.extend_from_slice(&f64::NAN.to_le_bytes());
        let frame = finish_frame(p);
        let payload = check_frame(&frame).unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(ProtoError::Codec(CodecError::Invalid { .. }))
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            ProtoError::Codec(CodecError::Truncated { offset: 1 }),
            ProtoError::UnknownKind(0x7F),
            ProtoError::Oversize { len: 1 << 40 },
            ProtoError::TrailingBytes { extra: 2 },
            ProtoError::BadCount {
                what: "x",
                count: 5,
            },
            ProtoError::NestedFence,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn nested_fence_is_rejected() {
        // Hand-build Fenced{ Fenced{ Ping } } — the encoder debug-asserts
        // against producing this, so splice the payloads manually.
        let inner = request_payload(&Request::Fenced {
            term: 1,
            leader: 1,
            shard: NO_SHARD,
            epoch: 0,
            inner: Box::new(Request::Ping { nonce: 0 }),
        });
        let mut p = vec![K_FENCED];
        put_u64(&mut p, 2);
        put_u64(&mut p, 2);
        put_u32(&mut p, NO_SHARD);
        put_u64(&mut p, 0);
        p.extend_from_slice(&inner);
        let frame = finish_frame(p);
        let payload = check_frame(&frame).unwrap();
        assert_eq!(decode_request(payload), Err(ProtoError::NestedFence));
    }

    #[test]
    fn fenced_empty_inner_is_truncated_not_a_panic() {
        // A fence whose inner payload is zero bytes: the inner decoder
        // hits end-of-input reading the kind byte.
        let mut p = vec![K_FENCED];
        put_u64(&mut p, 1);
        put_u64(&mut p, 1);
        put_u32(&mut p, 0);
        put_u64(&mut p, 0);
        let frame = finish_frame(p);
        let payload = check_frame(&frame).unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(ProtoError::Codec(CodecError::Truncated { .. }))
        ));
    }

    #[test]
    fn hostile_snapshot_length_cannot_allocate() {
        // An InstallShard whose snapshot length claims 4 GiB: BadCount.
        let mut p = vec![K_INSTALL_SHARD];
        put_u64(&mut p, 1); // term
        put_u32(&mut p, 0); // shard
        put_u64(&mut p, 1); // epoch
        put_u64(&mut p, 0); // arrivals
        put_u32(&mut p, 0); // applied: none
        put_u32(&mut p, u32::MAX); // snapshot: a lie
        let frame = finish_frame(p);
        let payload = check_frame(&frame).unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(ProtoError::BadCount { .. })
        ));
    }
}
