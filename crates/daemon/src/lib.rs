//! `swatd`: a fault-tolerant networked daemon for SWAT clusters.
//!
//! The SWAT paper summarizes streams *in large networks*; everything in
//! this workspace up to now ran inside the discrete-event simulator.
//! This crate promotes the sharded summarization tier to a real
//! deployment shape: one long-running process per node, speaking a
//! small length-framed CRC-checked wire protocol ([`proto`]), with the
//! leader/replica split of the hash-partitioned stream space
//! ([`cluster`], [`replica`]).
//!
//! The robustness surface is the point:
//!
//! * **deadlines** on every socket operation ([`transport`]),
//! * **bounded retries** with exponential backoff (the
//!   `swat_replication::RetryPolicy` discipline) and **load shedding**
//!   (a typed `Overloaded` response when the per-peer in-flight budget
//!   is exhausted — never unbounded queueing),
//! * **heartbeat-driven health** (`Alive`/`Suspect`/`Dead`) feeding the
//!   `DynamicTopology` repair path ([`registry`]),
//! * **duplicate-safe request ids** so retries never double-apply,
//! * **graceful shutdown** that drains in-flight requests and
//!   checkpoints through `swat-store` ([`server`]),
//! * **typed protocol errors** for every malformed frame — the fuzz
//!   tests feed every truncation and bit-flip of valid frames and
//!   require typed errors, never panics.
//!
//! Two transports implement one trait: real TCP ([`transport::
//! TcpTransport`]) and a deterministic in-process adapter over the
//! `swat-net` fault injector ([`transport::SimTransport`]). The
//! simulator is the *tested model* of the daemon: [`sim::SimCluster`]
//! runs the same leader/replica state machines under arbitrary
//! `FaultPlan`s, and the `sim_oracle` property test pins the
//! byte-level wire arm bit-identical to the struct-level model arm —
//! and, under no faults, to the in-process `ShardedStreamSet` oracle.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod cluster;
pub mod failover;
pub mod node;
pub mod proto;
pub mod registry;
pub mod replica;
pub mod server;
pub mod sim;
pub mod transport;

pub use client::{ClientError, DaemonClient, FailoverClient, InflightGuard, PeerPool};
pub use cluster::{stale_term_in, LeaderCore, PeerCall, Plan, ShardMap};
pub use failover::{next_term, successor, term_owner, Assignment, ShardSlot};
pub use node::ClusterNode;
pub use proto::{
    check_frame, decode_request, decode_response, encode_request, encode_response, ErrorCode,
    ProtoError, Request, Response, WireHealth, WireStoreHealth, MAX_FRAME,
};
pub use registry::ReplicaRegistry;
pub use replica::ReplicaNode;
pub use server::{bind, spawn, spawn_on, DaemonConfig, DrainReport, Role, ServerHandle};
pub use sim::{FailoverSim, SimCluster, SimMode, SimOp};
pub use transport::{SimNet, SimTransport, TcpTransport, Transport, TransportError};
