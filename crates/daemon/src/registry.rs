//! The leader's peer registry: heartbeat-driven health states feeding
//! the `swat_net::DynamicTopology` repair path.
//!
//! Health is a three-state machine per tracked peer:
//!
//! ```text
//!            miss                    miss (total ≥ threshold)
//!   Alive ─────────▶ Suspect ─────────────────▶ Dead
//!     ▲                │  ▲                       │
//!     └────────────────┘  └───────────────────────┘
//!          success                 success (rejoin recorded)
//! ```
//!
//! Every transition to `Dead` triggers spanning-tree repair: the dead
//! node's children (none in the star deployment, but the machinery is
//! topology-general) re-parent to their nearest live ancestor, and every
//! recovery is recorded as a rejoin — the same audited
//! [`swat_net::RepairEvent`] log the PR 5 healing layer uses. Since
//! PR 9, role transitions (elections, shard promotions/demotions) land
//! in the same log via [`ReplicaRegistry::note_role_change`].
//!
//! Any node can lead a term, so the registry tracks an explicit peer-id
//! set ([`ReplicaRegistry::tracking`]): a freshly promoted node 2
//! tracks `{0, 1, 3, ...}`, not the bootstrap leader's `1..=shards`.

use swat_net::{DynamicTopology, NodeId, NodeRole, RepairEvent, Topology};

use crate::proto::WireHealth;

/// Per-peer detector state.
#[derive(Debug, Clone, Copy)]
struct ReplicaState {
    health: WireHealth,
    misses: u32,
}

/// Health tracking for the peers of whichever node currently leads.
/// Tracked peers map onto a star topology: the registry owner is the
/// source, peer `i` (ascending id order) is tree node `i + 1`.
#[derive(Debug)]
pub struct ReplicaRegistry {
    topo: DynamicTopology,
    peers: Vec<u64>,
    states: Vec<ReplicaState>,
    miss_threshold: u32,
}

impl ReplicaRegistry {
    /// The bootstrap-leader registry: a star of `replicas` replicas with
    /// ids `1..=replicas` (the node 0 leader tracks everyone else), all
    /// initially [`WireHealth::Alive`]. `miss_threshold` consecutive
    /// heartbeat misses mark a replica [`WireHealth::Dead`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or `miss_threshold == 0`.
    pub fn new(replicas: usize, miss_threshold: u32) -> Self {
        Self::tracking((1..=replicas as u64).collect(), miss_threshold)
    }

    /// A registry over an explicit peer-id set (ascending), for leaders
    /// that are not node 0. Peers start [`WireHealth::Alive`].
    ///
    /// # Panics
    ///
    /// Panics if `peers` is empty, unsorted, or `miss_threshold == 0`.
    pub fn tracking(peers: Vec<u64>, miss_threshold: u32) -> Self {
        assert!(!peers.is_empty(), "need at least one peer");
        assert!(peers.windows(2).all(|w| w[0] < w[1]), "peers ascending");
        assert!(miss_threshold > 0, "need a positive miss threshold");
        let states = vec![
            ReplicaState {
                health: WireHealth::Alive,
                misses: 0,
            };
            peers.len()
        ];
        ReplicaRegistry {
            topo: DynamicTopology::new(Topology::star(peers.len())),
            peers,
            states,
            miss_threshold,
        }
    }

    /// Number of peers tracked.
    pub fn replicas(&self) -> usize {
        self.states.len()
    }

    /// Whether `node` is one of the tracked peers.
    pub fn tracks(&self, node: u64) -> bool {
        self.peers.binary_search(&node).is_ok()
    }

    /// Current health of peer `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not tracked (the registry owner itself, or an
    /// id outside the cluster).
    pub fn health(&self, node: u64) -> WireHealth {
        self.states[self.slot(node)].health
    }

    /// `(node, health)` for every tracked peer, ascending by node id —
    /// the payload of a leader `Status` response.
    pub fn statuses(&self) -> Vec<(u64, WireHealth)> {
        self.peers
            .iter()
            .zip(&self.states)
            .map(|(&n, s)| (n, s.health))
            .collect()
    }

    /// Peers currently not `Dead`.
    pub fn live_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.health != WireHealth::Dead)
            .count()
    }

    /// The audited repair log (re-parents, rejoins, role changes).
    pub fn events(&self) -> &[RepairEvent] {
        self.topo.events()
    }

    /// The repairable tree itself (read-only).
    pub fn topology(&self) -> &DynamicTopology {
        &self.topo
    }

    /// A heartbeat (or any request) succeeded at tick/instant `at`:
    /// reset the miss counter; a dead peer's recovery is recorded as a
    /// rejoin. Returns the new health (always [`WireHealth::Alive`]).
    pub fn record_success(&mut self, at: u64, node: u64) -> WireHealth {
        let slot = self.slot(node);
        if self.states[slot].health == WireHealth::Dead {
            self.topo.note_rejoin(at, NodeId(slot + 1));
        }
        self.states[slot] = ReplicaState {
            health: WireHealth::Alive,
            misses: 0,
        };
        WireHealth::Alive
    }

    /// A heartbeat (or request) to `node` failed at `at`. One miss
    /// makes an `Alive` peer `Suspect`; reaching the threshold makes it
    /// `Dead` and repairs the tree around it. Returns the new health.
    pub fn record_failure(&mut self, at: u64, node: u64) -> WireHealth {
        let slot = self.slot(node);
        let s = &mut self.states[slot];
        s.misses = s.misses.saturating_add(1);
        if s.misses >= self.miss_threshold {
            if s.health != WireHealth::Dead {
                s.health = WireHealth::Dead;
                self.repair_around(at, NodeId(slot + 1));
            }
        } else {
            s.health = WireHealth::Suspect;
        }
        self.states[slot].health
    }

    /// Mark `node` dead outright (election bootstrap: a peer that never
    /// answered the term claim is dead to the new leader, no grace
    /// heartbeats owed). Returns the new health.
    pub fn record_dead(&mut self, at: u64, node: u64) -> WireHealth {
        for _ in 0..self.miss_threshold {
            self.record_failure(at, node);
        }
        self.states[self.slot(node)].health
    }

    /// Record a role transition for `node` in the audited event log
    /// (shard promotion/demotion, leadership adoption).
    pub fn note_role_change(&mut self, at: u64, node: u64, role: NodeRole) {
        let slot = self.slot(node);
        self.topo.note_role_change(at, NodeId(slot + 1), role);
    }

    /// Re-parent every child of the newly dead `node` to its nearest
    /// live ancestor (never inside its own subtree, so never a cycle).
    fn repair_around(&mut self, at: u64, node: NodeId) {
        let children: Vec<NodeId> = self.topo.children(node).to_vec();
        for child in children {
            let dead = |n: NodeId| {
                n != NodeId::SOURCE && self.states[n.index() - 1].health == WireHealth::Dead
            };
            let adopter = self.topo.nearest_live_ancestor(child, dead);
            // `Unchanged` is fine (already under a live parent); any
            // other error would be a bug in the walk.
            let _ = self.topo.reparent(at, child, adopter);
        }
    }

    fn slot(&self, node: u64) -> usize {
        self.peers
            .binary_search(&node)
            // invariant: callers only name peers out of this registry's
            // own statuses()/tracking set; an unknown id is a caller bug,
            // not reachable from network input (ids are checked against
            // `tracks` on every wire-driven path).
            .expect("node id is a tracked peer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions_follow_the_state_machine() {
        let mut r = ReplicaRegistry::new(3, 3);
        assert_eq!(r.health(2), WireHealth::Alive);
        assert_eq!(r.record_failure(1, 2), WireHealth::Suspect);
        assert_eq!(r.record_failure(2, 2), WireHealth::Suspect);
        assert_eq!(r.record_failure(3, 2), WireHealth::Dead);
        assert_eq!(r.live_count(), 2);
        // Staying dead on further misses.
        assert_eq!(r.record_failure(4, 2), WireHealth::Dead);
        // Recovery is a rejoin.
        assert_eq!(r.record_success(9, 2), WireHealth::Alive);
        assert_eq!(r.live_count(), 3);
        assert!(r
            .events()
            .iter()
            .any(|e| matches!(e.kind, swat_net::RepairKind::Rejoin { .. })));
    }

    #[test]
    fn one_success_resets_the_miss_count() {
        let mut r = ReplicaRegistry::new(1, 2);
        r.record_failure(1, 1);
        r.record_success(2, 1);
        assert_eq!(r.record_failure(3, 1), WireHealth::Suspect, "count reset");
    }

    #[test]
    fn statuses_cover_every_replica_in_order() {
        let mut r = ReplicaRegistry::new(2, 1);
        r.record_failure(5, 2);
        assert_eq!(
            r.statuses(),
            vec![(1, WireHealth::Alive), (2, WireHealth::Dead)]
        );
    }

    #[test]
    fn arbitrary_peer_sets_track_by_id() {
        // Node 2 leads a 4-node cluster: it tracks {0, 1, 3}.
        let mut r = ReplicaRegistry::tracking(vec![0, 1, 3], 2);
        assert!(r.tracks(0) && r.tracks(3) && !r.tracks(2));
        assert_eq!(r.record_dead(1, 0), WireHealth::Dead);
        assert_eq!(
            r.statuses(),
            vec![
                (0, WireHealth::Dead),
                (1, WireHealth::Alive),
                (3, WireHealth::Alive)
            ]
        );
        assert_eq!(r.live_count(), 2);
        r.note_role_change(2, 3, NodeRole::Primary);
        assert!(r.events().iter().any(|e| matches!(
            e.kind,
            swat_net::RepairKind::RoleChange {
                role: NodeRole::Primary
            }
        )));
    }
}
