//! The leader's replica registry: heartbeat-driven health states
//! feeding the `swat_net::DynamicTopology` repair path.
//!
//! Health is a three-state machine per replica:
//!
//! ```text
//!            miss                    miss (total ≥ threshold)
//!   Alive ─────────▶ Suspect ─────────────────▶ Dead
//!     ▲                │  ▲                       │
//!     └────────────────┘  └───────────────────────┘
//!          success                 success (rejoin recorded)
//! ```
//!
//! Every transition to `Dead` triggers spanning-tree repair: the dead
//! node's children (none in the star deployment, but the machinery is
//! topology-general) re-parent to their nearest live ancestor, and every
//! recovery is recorded as a rejoin — the same audited
//! [`swat_net::RepairEvent`] log the PR 5 healing layer uses.

use swat_net::{DynamicTopology, NodeId, RepairEvent, Topology};

use crate::proto::WireHealth;

/// Per-replica detector state.
#[derive(Debug, Clone, Copy)]
struct ReplicaState {
    health: WireHealth,
    misses: u32,
}

/// Leader-side health tracking for `replicas` replica nodes (ids
/// `1..=replicas`; the leader is node 0, the tree source).
#[derive(Debug)]
pub struct ReplicaRegistry {
    topo: DynamicTopology,
    states: Vec<ReplicaState>,
    miss_threshold: u32,
}

impl ReplicaRegistry {
    /// A registry over a star of `replicas` replicas, all initially
    /// [`WireHealth::Alive`]. `miss_threshold` consecutive heartbeat
    /// misses mark a replica [`WireHealth::Dead`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or `miss_threshold == 0`.
    pub fn new(replicas: usize, miss_threshold: u32) -> Self {
        assert!(replicas > 0, "need at least one replica");
        assert!(miss_threshold > 0, "need a positive miss threshold");
        ReplicaRegistry {
            topo: DynamicTopology::new(Topology::star(replicas)),
            states: vec![
                ReplicaState {
                    health: WireHealth::Alive,
                    misses: 0,
                };
                replicas
            ],
            miss_threshold,
        }
    }

    /// Number of replicas tracked.
    pub fn replicas(&self) -> usize {
        self.states.len()
    }

    /// Current health of replica `node` (1-based; the leader itself is
    /// not tracked).
    ///
    /// # Panics
    ///
    /// Panics if `node` is 0 or out of range.
    pub fn health(&self, node: u64) -> WireHealth {
        self.states[Self::slot(node)].health
    }

    /// `(node, health)` for every replica, ascending by node id — the
    /// payload of a leader `Status` response.
    pub fn statuses(&self) -> Vec<(u64, WireHealth)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| ((i + 1) as u64, s.health))
            .collect()
    }

    /// Replicas currently not `Dead`.
    pub fn live_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.health != WireHealth::Dead)
            .count()
    }

    /// The audited repair log (re-parents and rejoins).
    pub fn events(&self) -> &[RepairEvent] {
        self.topo.events()
    }

    /// The repairable tree itself (read-only).
    pub fn topology(&self) -> &DynamicTopology {
        &self.topo
    }

    /// A heartbeat (or any request) succeeded at tick/instant `at`:
    /// reset the miss counter; a dead replica's recovery is recorded as
    /// a rejoin. Returns the new health (always [`WireHealth::Alive`]).
    pub fn record_success(&mut self, at: u64, node: u64) -> WireHealth {
        let slot = Self::slot(node);
        if self.states[slot].health == WireHealth::Dead {
            self.topo.note_rejoin(at, NodeId(slot + 1));
        }
        self.states[slot] = ReplicaState {
            health: WireHealth::Alive,
            misses: 0,
        };
        WireHealth::Alive
    }

    /// A heartbeat (or request) to `node` failed at `at`. One miss
    /// makes an `Alive` replica `Suspect`; reaching the threshold makes
    /// it `Dead` and repairs the tree around it. Returns the new
    /// health.
    pub fn record_failure(&mut self, at: u64, node: u64) -> WireHealth {
        let slot = Self::slot(node);
        let s = &mut self.states[slot];
        s.misses = s.misses.saturating_add(1);
        if s.misses >= self.miss_threshold {
            if s.health != WireHealth::Dead {
                s.health = WireHealth::Dead;
                self.repair_around(at, NodeId(slot + 1));
            }
        } else {
            s.health = WireHealth::Suspect;
        }
        self.states[slot].health
    }

    /// Re-parent every child of the newly dead `node` to its nearest
    /// live ancestor (never inside its own subtree, so never a cycle).
    fn repair_around(&mut self, at: u64, node: NodeId) {
        let children: Vec<NodeId> = self.topo.children(node).to_vec();
        for child in children {
            let dead = |n: NodeId| {
                n != NodeId::SOURCE && self.states[n.index() - 1].health == WireHealth::Dead
            };
            let adopter = self.topo.nearest_live_ancestor(child, dead);
            // `Unchanged` is fine (already under a live parent); any
            // other error would be a bug in the walk.
            let _ = self.topo.reparent(at, child, adopter);
        }
    }

    fn slot(node: u64) -> usize {
        let n = usize::try_from(node).expect("node id fits usize");
        assert!(n >= 1, "the leader tracks replicas, not itself");
        n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions_follow_the_state_machine() {
        let mut r = ReplicaRegistry::new(3, 3);
        assert_eq!(r.health(2), WireHealth::Alive);
        assert_eq!(r.record_failure(1, 2), WireHealth::Suspect);
        assert_eq!(r.record_failure(2, 2), WireHealth::Suspect);
        assert_eq!(r.record_failure(3, 2), WireHealth::Dead);
        assert_eq!(r.live_count(), 2);
        // Staying dead on further misses.
        assert_eq!(r.record_failure(4, 2), WireHealth::Dead);
        // Recovery is a rejoin.
        assert_eq!(r.record_success(9, 2), WireHealth::Alive);
        assert_eq!(r.live_count(), 3);
        assert!(r
            .events()
            .iter()
            .any(|e| matches!(e.kind, swat_net::RepairKind::Rejoin { .. })));
    }

    #[test]
    fn one_success_resets_the_miss_count() {
        let mut r = ReplicaRegistry::new(1, 2);
        r.record_failure(1, 1);
        r.record_success(2, 1);
        assert_eq!(r.record_failure(3, 1), WireHealth::Suspect, "count reset");
    }

    #[test]
    fn statuses_cover_every_replica_in_order() {
        let mut r = ReplicaRegistry::new(2, 1);
        r.record_failure(5, 2);
        assert_eq!(
            r.statuses(),
            vec![(1, WireHealth::Alive), (2, WireHealth::Dead)]
        );
    }
}
