//! The blocking frame transport: one trait, two worlds.
//!
//! [`Transport`] moves complete wire frames (header + payload, see
//! [`crate::proto`]) between two endpoints. The daemon logic above it
//! is identical for both implementations:
//!
//! * [`TcpTransport`] — a real `std::net::TcpStream` with **read and
//!   write deadlines on every socket operation** (no call can hang a
//!   connection thread forever) and the [`MAX_FRAME`] bound enforced
//!   before any allocation.
//! * [`SimTransport`] — a deterministic in-process endpoint pair over a
//!   shared [`SimNet`], where every send is adjudicated by the
//!   `swat-net` fault injector ([`swat_net::Link`]): delivered at a
//!   tick, dropped, or refused because an endpoint is inside a crash
//!   window. Same seed, same plan, same call sequence ⇒ same fates —
//!   the property the oracle test builds on.
//!
//! Failures are typed ([`TransportError`]); a timeout is
//! distinguishable from a peer close, and a protocol violation carries
//! the underlying [`ProtoError`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::rc::Rc;
use std::time::Duration;

use swat_net::{Delivery, FaultPlan, Link, NodeId};

use crate::proto::{ProtoError, HEADER_LEN, MAX_FRAME};

/// Why a frame could not cross the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// An OS-level I/O failure.
    Io {
        /// Which operation failed.
        context: &'static str,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// The peer closed the connection (clean EOF).
    Closed,
    /// The read or write deadline expired.
    TimedOut,
    /// The bytes on the wire violate the protocol.
    Proto(ProtoError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io { context, kind } => write!(f, "{context}: {kind}"),
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::TimedOut => write!(f, "deadline expired"),
            TransportError::Proto(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> Self {
        TransportError::Proto(e)
    }
}

/// A blocking, deadline-bounded mover of complete wire frames.
pub trait Transport {
    /// Send one complete frame (header + payload).
    ///
    /// # Errors
    ///
    /// [`TransportError`] on I/O failure, close, or deadline expiry.
    /// A send accepted by a faulty link may still never arrive — that
    /// is the fault model, not an error here.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receive one complete frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::TimedOut`] if no frame arrives within the
    /// deadline, [`TransportError::Closed`] on EOF, or a typed
    /// protocol/I/O failure.
    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError>;
}

fn io_err(context: &'static str, e: &std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => TransportError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => TransportError::Closed,
        kind => TransportError::Io { context, kind },
    }
}

/// A deadline-bounded TCP frame stream.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap `stream`, installing `read`/`write` deadlines on every
    /// subsequent socket operation.
    ///
    /// # Errors
    ///
    /// The underlying `set_read_timeout`/`set_write_timeout` failures.
    pub fn new(stream: TcpStream, read: Duration, write: Duration) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(read))?;
        stream.set_write_timeout(Some(write))?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }

    /// The wrapped stream (for shutdown/addr introspection).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream
            .write_all(frame)
            .map_err(|e| io_err("writing frame", &e))
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut header = [0u8; HEADER_LEN];
        match self.stream.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) => return Err(io_err("reading frame header", &e)),
        }
        // invariant: a 4-byte slice of a fixed-size array always converts.
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Proto(ProtoError::Oversize {
                len: len as u64,
            }));
        }
        let mut frame = vec![0u8; HEADER_LEN + len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.stream
            .read_exact(&mut frame[HEADER_LEN..])
            .map_err(|e| io_err("reading frame payload", &e))?;
        Ok(frame)
    }
}

/// One in-flight simulated frame: arrives at tick `at`.
#[derive(Debug, Clone)]
struct InFlight {
    at: u64,
    frame: Vec<u8>,
}

/// The shared deterministic network: a fault adjudicator, a virtual
/// clock, and one inbox per node. Single-threaded by design (the
/// simulator is a model, not a server).
#[derive(Debug)]
pub struct SimNet {
    link: Link,
    now: u64,
    inboxes: Vec<VecDeque<InFlight>>,
}

impl SimNet {
    /// A network of `nodes` nodes (node 0 = the leader/source) under
    /// `plan`, shared by every [`SimTransport`] endpoint built on it.
    pub fn new(plan: FaultPlan, nodes: usize) -> Rc<RefCell<SimNet>> {
        Rc::new(RefCell::new(SimNet {
            link: Link::new(plan),
            now: 0,
            inboxes: (0..nodes).map(|_| VecDeque::new()).collect(),
        }))
    }

    /// The virtual clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance the clock by `ticks` (backoff waits).
    pub fn advance(&mut self, ticks: u64) {
        self.now += ticks;
    }

    /// Adjudicate one transmission `from → to` at the next tick. The
    /// clock advances by one (every send costs time); the verdict is
    /// the fault injector's. **This is the only consumer of the fault
    /// RNG**, so any two drivers making the same `transmit` sequence
    /// see the same fates — the bit-identity anchor.
    pub fn transmit(&mut self, from: NodeId, to: NodeId) -> Delivery {
        self.now += 1;
        self.link.adjudicate(self.now, from, to)
    }

    /// Queue `frame` for `to`, arriving at tick `at`.
    fn deposit(&mut self, to: NodeId, at: u64, frame: Vec<u8>) {
        let inbox = &mut self.inboxes[to.index()];
        // Keep the inbox sorted by arrival, FIFO within a tick.
        let pos = inbox.partition_point(|m| m.at <= at);
        inbox.insert(pos, InFlight { at, frame });
    }

    /// Discard everything queued for `node` — models the connection
    /// teardown a reconnecting client performs (stale in-flight bytes
    /// never leak into the new connection).
    pub fn purge(&mut self, node: NodeId) {
        self.inboxes[node.index()].clear();
    }

    /// Whether `node` has a frame deliverable within `deadline` ticks;
    /// if so, advance the clock to its arrival and return it.
    fn take_within(&mut self, node: NodeId, deadline: u64) -> Option<Vec<u8>> {
        let limit = self.now + deadline;
        let inbox = &mut self.inboxes[node.index()];
        match inbox.front() {
            Some(m) if m.at <= limit => {
                // invariant: front() just matched Some on this inbox.
                let m = inbox.pop_front().expect("front exists");
                self.now = self.now.max(m.at);
                Some(m.frame)
            }
            _ => None,
        }
    }
}

/// One endpoint of a simulated connection: frames sent here are
/// adjudicated on the `me → peer` edge and received from `me`'s inbox.
pub struct SimTransport {
    net: Rc<RefCell<SimNet>>,
    me: NodeId,
    peer: NodeId,
    /// Ticks a receive may wait before reporting [`TransportError::TimedOut`].
    recv_deadline: u64,
}

impl SimTransport {
    /// An endpoint at `me` talking to `peer`, receives bounded by
    /// `recv_deadline` ticks.
    pub fn new(net: Rc<RefCell<SimNet>>, me: NodeId, peer: NodeId, recv_deadline: u64) -> Self {
        SimTransport {
            net,
            me,
            peer,
            recv_deadline,
        }
    }
}

impl Transport for SimTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        let mut net = self.net.borrow_mut();
        match net.transmit(self.me, self.peer) {
            Delivery::Delivered { at } => {
                net.deposit(self.peer, at, frame.to_vec());
                Ok(())
            }
            // The fault model loses the frame silently — exactly what a
            // real network does to a datagram; the caller's deadline +
            // retry machinery turns silence into a typed timeout.
            Delivery::Dropped => Ok(()),
            // A crashed endpoint refuses the connection outright.
            Delivery::EndpointDown => Err(TransportError::Closed),
        }
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut net = self.net.borrow_mut();
        match net.take_within(self.me, self.recv_deadline) {
            Some(frame) => Ok(frame),
            None => {
                // The deadline elapsed waiting.
                net.advance(self.recv_deadline);
                Err(TransportError::TimedOut)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{check_frame, decode_request, encode_request, Request};

    #[test]
    fn sim_transport_roundtrips_under_an_ideal_plan() {
        let net = SimNet::new(FaultPlan::none(), 2);
        let mut a = SimTransport::new(net.clone(), NodeId(0), NodeId(1), 10);
        let mut b = SimTransport::new(net.clone(), NodeId(1), NodeId(0), 10);
        let req = Request::Ping { nonce: 77 };
        a.send_frame(&encode_request(&req)).unwrap();
        let frame = b.recv_frame().unwrap();
        assert_eq!(decode_request(check_frame(&frame).unwrap()).unwrap(), req);
        assert_eq!(b.recv_frame(), Err(TransportError::TimedOut));
    }

    #[test]
    fn crashed_peer_refuses_sends() {
        let plan = FaultPlan::new(3).with_crash(NodeId(1), 0, 100).unwrap();
        let net = SimNet::new(plan, 2);
        let mut a = SimTransport::new(net, NodeId(0), NodeId(1), 5);
        assert_eq!(
            a.send_frame(&encode_request(&Request::Status)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn purge_discards_stale_frames() {
        let net = SimNet::new(FaultPlan::none(), 2);
        let mut a = SimTransport::new(net.clone(), NodeId(0), NodeId(1), 10);
        let mut b = SimTransport::new(net.clone(), NodeId(1), NodeId(0), 10);
        a.send_frame(&encode_request(&Request::Status)).unwrap();
        net.borrow_mut().purge(NodeId(1));
        assert_eq!(b.recv_frame(), Err(TransportError::TimedOut));
    }

    #[test]
    fn identical_transmit_sequences_get_identical_fates() {
        let plan = FaultPlan::new(42).with_drop(0.4).unwrap();
        let run = || {
            let net = SimNet::new(plan.clone(), 3);
            let mut fates = Vec::new();
            for i in 0..50 {
                let to = NodeId(1 + (i % 2));
                let mut n = net.borrow_mut();
                fates.push(n.transmit(NodeId(0), to));
            }
            fates
        };
        assert_eq!(run(), run());
    }
}
