//! Malformed-frame fuzzing: the acceptance bar is that **no byte
//! sequence** fed to the frame checker/decoder panics — every mutation
//! of a valid frame, every truncation, and arbitrary garbage must
//! produce a typed [`ProtoError`].
//!
//! The frame format puts the kind byte *inside* the CRC, so every
//! single-bit flip anywhere in a frame — length field, CRC field, kind,
//! or body — is detectable; these tests enforce that exhaustively for
//! every sample frame.

use swat_daemon::proto::{
    check_frame, decode_request, decode_response, encode_request, encode_response, sample_requests,
    sample_responses,
};
use swat_daemon::{Request, Response};

/// Every sample frame, both directions, with a tag telling the decoder
/// to use.
fn all_frames() -> Vec<(bool, Vec<u8>)> {
    let mut frames: Vec<(bool, Vec<u8>)> = sample_requests()
        .iter()
        .map(|r| (true, encode_request(r)))
        .collect();
    frames.extend(
        sample_responses()
            .iter()
            .map(|r| (false, encode_response(r))),
    );
    frames
}

/// Run the full receive path on `bytes`: frame check, then the decoder
/// a server (`is_request`) or client would apply. Returns whether the
/// bytes were accepted. Must never panic.
fn accepts(is_request: bool, bytes: &[u8]) -> bool {
    match check_frame(bytes) {
        Ok(payload) => {
            if is_request {
                decode_request(payload).is_ok()
            } else {
                decode_response(payload).is_ok()
            }
        }
        Err(_) => false,
    }
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for (is_request, frame) in all_frames() {
        for n in 0..frame.len() {
            assert!(
                !accepts(is_request, &frame[..n]),
                "truncation to {n} of a {}-byte frame was accepted",
                frame.len()
            );
        }
        // The untruncated frame is the control: it must be accepted.
        assert!(accepts(is_request, &frame));
    }
}

#[test]
fn every_single_bit_flip_of_every_frame_is_a_typed_error() {
    for (is_request, frame) in all_frames() {
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut mutated = frame.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    !accepts(is_request, &mutated),
                    "bit {bit} of byte {byte} flipped in a {}-byte frame was accepted",
                    frame.len()
                );
            }
        }
    }
}

#[test]
fn appended_trailing_bytes_are_a_typed_error() {
    for (is_request, frame) in all_frames() {
        let mut longer = frame.clone();
        longer.push(0);
        assert!(!accepts(is_request, &longer));
    }
}

#[test]
fn random_garbage_never_panics_and_never_parses() {
    // Deterministic xorshift garbage of many lengths, including ones
    // that start with plausible-looking small length prefixes.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in 0..256usize {
        for _ in 0..8 {
            let mut bytes = vec![0u8; len];
            for b in bytes.iter_mut() {
                *b = next() as u8;
            }
            assert!(!accepts(true, &bytes));
            assert!(!accepts(false, &bytes));
            // A consistent length prefix with garbage after it still has
            // to clear the CRC — make the length field plausible.
            if len >= 8 {
                let payload_len = (len - 8) as u32;
                bytes[..4].copy_from_slice(&payload_len.to_le_bytes());
                assert!(!accepts(true, &bytes));
                assert!(!accepts(false, &bytes));
            }
        }
    }
}

#[test]
fn the_sample_set_covers_every_failover_wire_variant() {
    // The truncation/bit-flip sweeps above only protect what the sample
    // set contains; pin the term/epoch-carrying failover messages so a
    // refactor cannot silently drop them from fuzz coverage.
    let reqs = sample_requests();
    assert!(reqs.iter().any(|r| matches!(r, Request::Fenced { .. })));
    assert!(reqs.iter().any(
        |r| matches!(r, Request::Fenced { shard, .. } if *shard == swat_daemon::proto::NO_SHARD)
    ));
    assert!(reqs.iter().any(|r| matches!(r, Request::NewTerm { .. })));
    assert!(reqs.iter().any(|r| matches!(r, Request::Replicate { .. })));
    assert!(reqs.iter().any(|r| matches!(r, Request::FetchShard { .. })));
    assert!(reqs
        .iter()
        .any(|r| matches!(r, Request::InstallShard { .. })));
    assert!(reqs.iter().any(|r| matches!(r, Request::Promote { .. })));
    let resps = sample_responses();
    assert!(resps
        .iter()
        .any(|r| matches!(r, Response::StaleTermR { .. })));
    assert!(resps
        .iter()
        .any(|r| matches!(r, Response::NotLeaderR { .. })));
    assert!(resps.iter().any(|r| matches!(r, Response::SyncR { .. })));
    assert!(resps
        .iter()
        .any(|r| matches!(r, Response::ShardStateR { .. })));
    assert!(resps.iter().any(|r| matches!(r, Response::EpochAck { .. })));
    assert!(resps
        .iter()
        .any(|r| matches!(r, Response::StaleEpochR { .. })));
    assert!(resps
        .iter()
        .any(|r| matches!(r, Response::StatusR { term, .. } if *term > 0)));
}

#[test]
fn hostile_length_fields_are_rejected_without_allocation() {
    // A header claiming a multi-gigabyte payload must be rejected by
    // the MAX_FRAME bound before anyone trusts it.
    for claimed in [u32::MAX, (swat_daemon::MAX_FRAME as u32) + 1] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(!accepts(true, &bytes));
    }
}
