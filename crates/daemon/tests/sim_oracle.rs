//! The simulator-oracle property tests.
//!
//! Two pins, over random fault plans and op scripts:
//!
//! 1. **Wire ≡ Model.** For *any* `FaultPlan`, the byte-path cluster
//!    (encode → `SimTransport` → check → decode on every hop) produces
//!    an observable outcome sequence and final replica digests
//!    **bit-identical** to the struct-path model arm. Outcomes are
//!    compared by their encoded bytes, so `-0.0 == 0.0` coincidences
//!    cannot hide a codec divergence.
//! 2. **Faultless ≡ oracle.** Under `FaultPlan::none()` the cluster's
//!    answers equal the plain in-process `ShardedStreamSet` oracle:
//!    every ingest fully applies (with duplicate write ids absorbed),
//!    every point answer and distributed top-k is bit-identical.

use proptest::prelude::*;
use swat_daemon::{
    encode_response, FailoverSim, Request, Response, ShardMap, SimCluster, SimMode, SimOp,
};
use swat_net::{DelayDist, FaultPlan, NodeId};
use swat_tree::{QueryOptions, ShardedStreamSet, StreamSet, SwatConfig};

const STREAMS: usize = 9;
const SHARDS: usize = 3;

fn cfg() -> SwatConfig {
    SwatConfig::with_coefficients(16, 4).expect("static config")
}

/// An arbitrary seeded fault plan: global drops, uniform delays, and
/// (half the time) one crash window on one replica.
fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000_000,
        prop::sample::select(vec![0.0f64, 0.05, 0.2, 0.5]),
        prop::sample::select(vec![0u64, 2, 6]),
        prop::sample::select(vec![0usize, 1, 2, 3]),
        0u64..300,
        1u64..600,
    )
        .prop_map(|(seed, drop, delay_hi, crash_node, from, len)| {
            let mut p = FaultPlan::new(seed).with_drop(drop).expect("valid p");
            if delay_hi > 0 {
                p = p
                    .with_delay(DelayDist::Uniform {
                        lo: 0,
                        hi: delay_hi,
                    })
                    .expect("valid delay");
            }
            // crash_node 0 = no crash (the leader never crashes here:
            // it is the observer whose outcomes we compare).
            if crash_node > 0 {
                p = p
                    .with_crash(NodeId(crash_node), from, from + len)
                    .expect("valid window");
            }
            p
        })
}

/// A random op script. Ingest ids mostly advance; sometimes the
/// previous id is reused, exercising the duplicate-safe write path.
fn ops() -> impl Strategy<Value = Vec<SimOp>> {
    prop::collection::vec((0u8..12, 0u64..64), 1..30).prop_map(|raw| {
        let mut next_id = 0u64;
        raw.into_iter()
            .map(|(choice, x)| match choice {
                0..=5 => {
                    let id = next_id;
                    next_id += 1;
                    let row: Vec<f64> = (0..STREAMS)
                        .map(|i| ((id as usize * 7 + i * 3 + x as usize) % 19) as f64 - 9.0)
                        .collect();
                    SimOp::Ingest { req_id: id, row }
                }
                6 => {
                    // Duplicate write id: retry of the previous row.
                    let id = next_id.saturating_sub(1);
                    let row: Vec<f64> = (0..STREAMS)
                        .map(|i| ((id as usize * 7 + i * 3) % 19) as f64 - 9.0)
                        .collect();
                    SimOp::Ingest { req_id: id, row }
                }
                7 | 8 => SimOp::Point {
                    stream: x % STREAMS as u64,
                    index: (x % 16) as u32,
                },
                9 => SimOp::TopK { k: (x % 7) as u32 },
                10 => SimOp::Heartbeat,
                _ => SimOp::Status,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wire_arm_is_bit_identical_to_the_model_arm(plan in plan(), ops in ops()) {
        let mut wire = SimCluster::new(SimMode::Wire, plan.clone(), cfg(), STREAMS, SHARDS, 3);
        let mut model = SimCluster::new(SimMode::Model, plan, cfg(), STREAMS, SHARDS, 3);
        let wire_out = wire.run(&ops);
        let model_out = model.run(&ops);
        prop_assert_eq!(wire_out.len(), model_out.len());
        for (i, (w, m)) in wire_out.iter().zip(&model_out).enumerate() {
            // Encoded-byte equality: true bit-identity, f64s included.
            prop_assert_eq!(
                encode_response(w),
                encode_response(m),
                "op {} diverged: wire={:?} model={:?}",
                i,
                w,
                m
            );
        }
        prop_assert_eq!(wire.digests(), model.digests());
    }

    #[test]
    fn faultless_cluster_matches_the_sharded_oracle(ops in ops()) {
        let mut cluster =
            SimCluster::new(SimMode::Wire, FaultPlan::none(), cfg(), STREAMS, SHARDS, 3);
        let out = cluster.run(&ops);
        let mut oracle = ShardedStreamSet::new(cfg(), STREAMS, SHARDS);
        let mut seen = std::collections::HashSet::new();
        for (op, got) in ops.iter().zip(&out) {
            match op {
                SimOp::Ingest { req_id, row } => {
                    let duplicate = !seen.insert(*req_id);
                    if !duplicate {
                        oracle.push_row(row);
                    }
                    prop_assert_eq!(
                        got,
                        &Response::IngestOk {
                            req_id: *req_id,
                            duplicate,
                            failed_shards: vec![],
                        }
                    );
                }
                SimOp::Point { stream, index } => {
                    match (
                        oracle
                            .tree(*stream as usize)
                            .point_with(*index as usize, QueryOptions::default()),
                        got,
                    ) {
                        (Ok(want), Response::PointR { answer }) => {
                            prop_assert_eq!(answer.value.to_bits(), want.value.to_bits());
                            prop_assert_eq!(
                                answer.error_bound.to_bits(),
                                want.error_bound.to_bits()
                            );
                        }
                        // An index the oracle cannot answer (not yet
                        // covered) is a typed error on the wire too.
                        (Err(_), Response::ErrorR { .. }) => {}
                        (want, other) => {
                            prop_assert!(false, "oracle {:?} vs wire {:?}", want, other)
                        }
                    }
                }
                SimOp::TopK { k: 0 } => {
                    // The leader rejects k = 0 outright (the oracle's
                    // global_top_k would panic on it).
                    match got {
                        Response::ErrorR { .. } => {}
                        other => prop_assert!(false, "unexpected {:?}", other),
                    }
                }
                SimOp::TopK { k } => {
                    let (want, _) = oracle.global_top_k(*k as usize, 1);
                    prop_assert_eq!(
                        got,
                        &Response::TopKR {
                            complete: true,
                            entries: want.entries().to_vec(),
                        }
                    );
                }
                SimOp::Heartbeat => prop_assert_eq!(
                    got,
                    &Response::Pong {
                        nonce: SHARDS as u64
                    }
                ),
                SimOp::Status => match got {
                    Response::StatusR { .. } => {}
                    other => prop_assert!(false, "unexpected {:?}", other),
                },
            }
        }
    }
}

/// Run an acked-ingest workload through a [`FailoverSim`] whose fault
/// plan crashes `victim` at `kill_tick`, then check the surviving
/// cluster against a never-crashed oracle over the acked prefix:
/// every acked row is present bit-identically on every shard's current
/// primary, point answers match, and no term ever had two leaders
/// (the sim asserts that invariant on every tick).
fn failover_schedule(victim: u64, kill_tick: u64, rows: usize) {
    let (streams, shards) = (6usize, 2usize);
    let plan = FaultPlan::new(victim ^ (kill_tick << 8))
        .with_crash_any(NodeId(victim as usize), kill_tick, 1_000_000)
        .expect("valid window");
    let mut sim = FailoverSim::new(plan, cfg(), streams, shards, 2, 4);
    let mut oracle = StreamSet::new(cfg(), streams);

    let mut acked = 0u64;
    for r in 0..rows as u64 {
        let row: Vec<f64> = (0..streams)
            .map(|i| (((r as usize * 7 + i * 5 + victim as usize) % 23) as f64) - 11.0)
            .collect();
        if sim.ingest_until_acked(r, &row, 600) {
            oracle.push_row(&row);
            acked += 1;
        }
        sim.tick();
    }
    // With only one crash and generous retry budgets, everything acks.
    assert_eq!(acked, rows as u64, "bounded unavailability, not loss");

    // Post-failover: if the victim was the leader, someone else leads a
    // higher term now; either way exactly one leader per observed term.
    if victim == 0 {
        let leader = sim.live_leader().expect("a survivor leads");
        assert_ne!(leader, 0, "node 0 is down");
        assert!(sim.node(leader).term() > 0, "a real election happened");
    }
    assert!(!sim.leader_terms().is_empty());

    // Every shard's current primary holds the acked prefix
    // bit-identically to the never-crashed oracle.
    let map = ShardMap::new(streams, shards);
    for s in 0..shards {
        let primary = sim.primary_of(s).expect("every shard has a primary");
        assert_ne!(primary, victim, "a dead node cannot be primary");
        let mut want = StreamSet::new(cfg(), map.members(s).len());
        for r in 0..rows as u64 {
            let row: Vec<f64> = (0..streams)
                .map(|i| (((r as usize * 7 + i * 5 + victim as usize) % 23) as f64) - 11.0)
                .collect();
            want.push_row(&map.subrow(&row, s));
        }
        assert_eq!(
            sim.node(primary).holding_digest(s),
            Some(want.answers_digest()),
            "shard {s} digest diverged after killing node {victim}"
        );
    }

    // And the cluster still answers queries on the acked data.
    for g in 0..streams as u64 {
        let want = oracle
            .tree(g as usize)
            .point_with(0, QueryOptions::default())
            .expect("warm index");
        match sim.query_until(
            &Request::Point {
                stream: g,
                index: 0,
            },
            600,
        ) {
            Some(Response::PointR { answer }) => {
                assert_eq!(answer.value.to_bits(), want.value.to_bits());
            }
            other => panic!("stream {g} unanswered after failover: {other:?}"),
        }
    }
}

#[test]
fn leader_kill_schedules_preserve_the_acked_prefix() {
    // Kill the bootstrap leader at several points in the run, including
    // before the first row (tick 0 is mid-bootstrap).
    for kill_tick in [0, 3, 11] {
        failover_schedule(0, kill_tick, 24);
    }
}

#[test]
fn primary_kill_schedules_promote_the_standby() {
    // Kill each replica in turn mid-run: its shard's standby must be
    // promoted under a bumped epoch with no acked row lost.
    for victim in [1u64, 2] {
        failover_schedule(victim, 7, 24);
    }
}
