//! The real-TCP cluster integration tests.
//!
//! 1. A 4-node legacy deployment (static leader + 3 replicas) serving
//!    ingest, point, range, and distributed top-k — with one replica
//!    **killed mid-run**.
//! 2. A 3-node failover cluster (full peer list, standbys armed) whose
//!    **leader** is killed mid-run: a survivor must claim a higher
//!    term, promote standbys, and keep answering — through the real
//!    monitor threads and the real `FailoverClient` redirect path.
//!
//! The acceptance bar: zero wrong answers. Degraded answers (explicit
//! `failed_shards`, `Unavailable`, `complete: false`) are fine; silent
//! loss is not.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use swat_daemon::{
    bind, spawn, spawn_on, DaemonClient, DaemonConfig, FailoverClient, Request, Response, Role,
    ServerHandle,
};
use swat_replication::RetryPolicy;
use swat_store::RecoveryManager;
use swat_tree::{shard_members, shard_of, QueryOptions, ShardedStreamSet, SwatConfig};

const STREAMS: usize = 10;
const SHARDS: usize = 3;

fn cfg() -> SwatConfig {
    SwatConfig::with_coefficients(16, 4).expect("static config")
}

fn row(r: u64) -> Vec<f64> {
    (0..STREAMS)
        .map(|i| ((r as usize * 13 + i * 5) % 29) as f64 - 14.0)
        .collect()
}

/// Spawn `SHARDS` replicas (shard `i` durable under `dirs[i]` when
/// given) and a leader wired to them.
fn spawn_cluster(dirs: &[Option<PathBuf>]) -> (ServerHandle, Vec<ServerHandle>) {
    let mut replicas = Vec::new();
    let mut addrs = Vec::new();
    for (shard, dir) in dirs.iter().enumerate() {
        let mut rc = DaemonConfig::localhost(Role::Replica { shard }, cfg(), STREAMS, SHARDS);
        rc.dir = dir.clone();
        let handle = spawn(rc).expect("replica binds");
        addrs.push(handle.addr());
        replicas.push(handle);
    }
    let mut lc = DaemonConfig::localhost(Role::Leader { replicas: addrs }, cfg(), STREAMS, SHARDS);
    // Fast failure detection so the killed-replica phase settles within
    // the test budget.
    lc.io_timeout = Duration::from_millis(200);
    lc.hb_period = Duration::from_millis(50);
    lc.miss_threshold = 2;
    let leader = spawn(lc).expect("leader binds");
    (leader, replicas)
}

#[test]
fn four_node_cluster_survives_a_killed_replica_and_drains_cleanly() {
    let base = std::env::temp_dir().join(format!("swatd-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // Shard 0's replica is durable (it survives and must checkpoint);
    // the others are in-memory.
    let durable_dir = base.join("replica-0");
    std::fs::create_dir_all(&durable_dir).expect("mkdir");
    let dirs = vec![Some(durable_dir.clone()), None, None];
    let (leader, mut replicas) = spawn_cluster(&dirs);
    let mut client =
        DaemonClient::connect(leader.addr(), Duration::from_secs(2)).expect("client connects");

    // ---- Phase 1: healthy cluster, answers pinned to the oracle. ----
    let mut oracle = ShardedStreamSet::new(cfg(), STREAMS, SHARDS);
    for r in 0..24u64 {
        let resp = client.ingest(r, row(r)).expect("ingest call");
        assert_eq!(
            resp,
            Response::IngestOk {
                req_id: r,
                duplicate: false,
                failed_shards: vec![],
            }
        );
        oracle.push_row(&row(r));
    }
    // A retried write id is absorbed, not re-applied.
    let resp = client.ingest(5, row(5)).expect("dup ingest");
    assert_eq!(
        resp,
        Response::IngestOk {
            req_id: 5,
            duplicate: true,
            failed_shards: vec![],
        }
    );
    for stream in 0..STREAMS as u64 {
        let want = oracle
            .tree(stream as usize)
            .point_with(3, QueryOptions::default())
            .expect("in range");
        match client.point(stream, 3).expect("point call") {
            Response::PointR { answer } => {
                assert_eq!(answer.value.to_bits(), want.value.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // Range against one stream: every match must carry the tree's own
    // approximate value (bit-exact) and the index set must agree.
    let tree = oracle.tree(2);
    let rq = swat_tree::RangeQuery::new(0.0, 10.0, 1, 12);
    let want_matches = tree.range_query(&rq).expect("valid range query");
    match client
        .call(&Request::Range {
            stream: 2,
            center: 0.0,
            radius: 10.0,
            newest: 1,
            oldest: 12,
        })
        .expect("range call")
    {
        Response::RangeR { matches } => {
            assert_eq!(matches.len(), want_matches.len());
            for (got, want) in matches.iter().zip(&want_matches) {
                assert_eq!(got.index as usize, want.index);
                assert_eq!(got.value.to_bits(), want.value.to_bits());
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    // Distributed top-k, bit-identical to the in-process merge.
    let (want_topk, _) = oracle.global_top_k(5, 1);
    match client.top_k(5).expect("topk call") {
        Response::TopKR { complete, entries } => {
            assert!(complete);
            assert_eq!(entries, want_topk.entries().to_vec());
        }
        other => panic!("unexpected {other:?}"),
    }

    // ---- Phase 2: kill shard 1's replica mid-run. ----
    let killed_shard = 1usize;
    replicas.remove(killed_shard).kill();
    let mut saw_degraded = false;
    let mut applied: Vec<u64> = (0..24).collect();
    for r in 100..112u64 {
        match client.ingest(r, row(r)).expect("ingest after kill") {
            Response::IngestOk { failed_shards, .. } => {
                // Explicit degradation only: the one killed shard may
                // fail, nothing else may.
                assert!(
                    failed_shards.is_empty() || failed_shards == vec![killed_shard as u32],
                    "unexpected failed shards {failed_shards:?}"
                );
                if failed_shards == vec![killed_shard as u32] {
                    saw_degraded = true;
                }
                // Surviving shards applied the row: mirror that in the
                // oracle so later point checks stay exact.
                oracle.push_row(&row(r));
                applied.push(r);
            }
            Response::Overloaded => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        saw_degraded,
        "the killed shard must surface in failed_shards"
    );

    // Streams on surviving shards still answer, still exactly.
    let members0 = shard_members(STREAMS, SHARDS, 0);
    let surviving_stream = members0[0] as u64;
    let want = oracle
        .tree(surviving_stream as usize)
        .point_with(0, QueryOptions::default())
        .expect("in range");
    match client.point(surviving_stream, 0).expect("point call") {
        Response::PointR { answer } => {
            assert_eq!(answer.value.to_bits(), want.value.to_bits());
        }
        other => panic!("unexpected {other:?}"),
    }
    // Streams on the killed shard answer `Unavailable` — never silence,
    // never a stale number. (After heartbeats mark the node dead the
    // answer is immediate; before that it is the same after retries.)
    let dead_stream = (0..STREAMS as u64)
        .find(|&s| shard_of(s, SHARDS) == killed_shard)
        .expect("some stream lives on the killed shard");
    match client.point(dead_stream, 0).expect("point call") {
        Response::Unavailable { node } => assert_eq!(node, (killed_shard + 1) as u64),
        other => panic!("unexpected {other:?}"),
    }
    // Distributed top-k degrades explicitly: incomplete, and the
    // entries that are present are a subset computed without invented
    // values.
    match client.top_k(5).expect("topk call") {
        Response::TopKR { complete, .. } => assert!(!complete),
        other => panic!("unexpected {other:?}"),
    }

    // ---- Phase 3: graceful drain + verified durable checkpoint. ----
    match client.shutdown().expect("shutdown call") {
        Response::ShutdownOk { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    assert!(leader.stop_requested());
    let _ = leader.stop();
    let survivors: Vec<ServerHandle> = std::mem::take(&mut replicas);
    for (i, handle) in survivors.into_iter().enumerate() {
        let report = handle.stop();
        if i == 0 {
            assert!(report.checkpointed, "the durable replica must checkpoint");
        }
    }
    // The checkpoint is real: recovery reconstructs shard 0's state.
    let (store, _report) = RecoveryManager::recover(&durable_dir).expect("recovery");
    let mut want_set = swat_tree::StreamSet::new(cfg(), members0.len());
    for r in applied {
        let sub: Vec<f64> = members0.iter().map(|&g| row(r)[g]).collect();
        want_set.push_row(&sub);
    }
    assert_eq!(store.set().answers_digest(), want_set.answers_digest());
    let _ = std::fs::remove_dir_all(&base);
}

/// Spawn a full failover cluster: `shards + 1` nodes that each know the
/// whole peer list, with standbys armed and fast election timers.
fn spawn_failover_cluster(
    streams: usize,
    shards: usize,
) -> (Vec<Option<ServerHandle>>, Vec<SocketAddr>) {
    let nodes = shards + 1;
    let listeners: Vec<_> = (0..nodes)
        .map(|_| bind("127.0.0.1:0".parse().expect("static addr")).expect("binds"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("bound"))
        .collect();
    let mut handles = Vec::new();
    for (id, listener) in listeners.into_iter().enumerate() {
        let role = if id == 0 {
            Role::Leader {
                replicas: Vec::new(),
            }
        } else {
            Role::Replica { shard: id - 1 }
        };
        let mut nc = DaemonConfig::localhost(role, cfg(), streams, shards);
        nc.peers = addrs.clone();
        nc.standbys = true;
        nc.io_timeout = Duration::from_millis(200);
        nc.hb_period = Duration::from_millis(50);
        nc.miss_threshold = 2;
        nc.election_timeout = Duration::from_millis(250);
        handles.push(Some(spawn_on(listener, nc).expect("node comes up")));
    }
    (handles, addrs)
}

/// Retry `id`'s row through the failover client until it fully acks or
/// the deadline passes. Duplicate-safe req_ids make the retries
/// harmless; returns whether the row acked.
fn ingest_until_acked(
    client: &mut FailoverClient,
    id: u64,
    data: &[f64],
    deadline: Instant,
) -> bool {
    loop {
        if let Ok(Response::IngestOk { failed_shards, .. }) =
            client.ingest_acked(id, data.to_vec(), 2)
        {
            if failed_shards.is_empty() {
                return true;
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn failover_cluster_survives_a_killed_leader_mid_run() {
    let (streams, shards) = (6usize, 2usize);
    let (mut handles, addrs) = spawn_failover_cluster(streams, shards);
    let mut client = FailoverClient::new(
        addrs.clone(),
        RetryPolicy {
            max_retries: 3,
            timeout: 30,
        },
        Duration::from_millis(500),
    );
    let row = |r: u64| -> Vec<f64> {
        (0..streams)
            .map(|i| ((r as usize * 11 + i * 3) % 23) as f64 - 11.0)
            .collect()
    };

    // ---- Phase 1: healthy cluster, every row fully acked. ----
    let mut oracle = ShardedStreamSet::new(cfg(), streams, shards);
    let warm_deadline = Instant::now() + Duration::from_secs(20);
    for r in 0..16u64 {
        assert!(
            ingest_until_acked(&mut client, r, &row(r), warm_deadline),
            "row {r} must ack on a healthy cluster"
        );
        oracle.push_row(&row(r));
    }

    // ---- Phase 2: kill the leader abruptly, mid-run. ----
    handles[0].take().expect("spawned above").kill();

    // A survivor must claim a higher term and report itself leader.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut elected: Option<(u64, u64)> = None;
    while Instant::now() < deadline && elected.is_none() {
        for &addr in &addrs[1..] {
            let Ok(mut probe) = DaemonClient::connect(addr, Duration::from_millis(300)) else {
                continue;
            };
            if let Ok(Response::StatusR {
                node, term, leader, ..
            }) = probe.call(&Request::Status)
            {
                if term > 0 && leader == node {
                    elected = Some((node, term));
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let (new_leader, new_term) = elected.expect("a survivor claims leadership");
    assert_ne!(new_leader, 0, "node 0 is dead");
    assert!(new_term > 0, "failover means a new term");

    // ---- Phase 3: post-failover ingest and oracle-exact queries. ----
    let post_deadline = Instant::now() + Duration::from_secs(30);
    for r in 16..28u64 {
        assert!(
            ingest_until_acked(&mut client, r, &row(r), post_deadline),
            "row {r} must ack after failover (bounded unavailability, not loss)"
        );
        oracle.push_row(&row(r));
    }
    for stream in 0..streams as u64 {
        let want = oracle
            .tree(stream as usize)
            .point_with(0, QueryOptions::default())
            .expect("warm index");
        match client
            .call(&Request::Point { stream, index: 0 })
            .expect("point after failover")
        {
            Response::PointR { answer } => {
                assert_eq!(
                    answer.value.to_bits(),
                    want.value.to_bits(),
                    "stream {stream} diverged after failover"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // The merged top-k must be complete again: every shard has a live
    // primary (the dead leader held no shard, and standbys cover the
    // rest), and the merge is bit-identical to the oracle's.
    let (want_topk, _) = oracle.global_top_k(4, 1);
    match client.call(&Request::TopK { k: 4 }).expect("topk call") {
        Response::TopKR { complete, entries } => {
            assert!(complete, "all shards answer after failover");
            assert_eq!(entries, want_topk.entries().to_vec());
        }
        other => panic!("unexpected {other:?}"),
    }

    for h in handles.into_iter().flatten() {
        let _ = h.stop();
    }
}
