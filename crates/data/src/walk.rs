//! Bounded random-walk generator.
//!
//! Useful as a third workload between the extremes the paper evaluates:
//! smoother than i.i.d. uniform, rougher than the seasonal weather series.
//! The paper's error analysis (§2.6) models exactly this kind of stream —
//! "each incoming data point differs by ε from the previous value" — so the
//! walk with a fixed step doubles as the analytical worst case for the
//! error-bound tests in `swat-tree`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Endless reflected random walk within `[lo, hi]`.
#[derive(Debug)]
pub struct RandomWalk {
    rng: StdRng,
    value: f64,
    step: f64,
    lo: f64,
    hi: f64,
}

impl RandomWalk {
    /// A walk starting at the midpoint of `[lo, hi]` with maximum step size
    /// `step` per tick.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `step` is not positive and finite.
    pub fn new(seed: u64, lo: f64, hi: f64, step: f64) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi}]");
        assert!(step > 0.0 && step.is_finite(), "bad step {step}");
        RandomWalk {
            rng: StdRng::seed_from_u64(seed),
            value: (lo + hi) * 0.5,
            step,
            lo,
            hi,
        }
    }

    /// Deterministic ramp: every value exceeds the previous by exactly
    /// `epsilon`, wrapping at `hi` back to `lo` — the stream of the paper's
    /// §2.6 error analysis.
    pub fn ramp(lo: f64, hi: f64, epsilon: f64) -> Ramp {
        assert!(lo < hi && epsilon > 0.0);
        Ramp {
            value: lo,
            lo,
            hi,
            epsilon,
        }
    }
}

impl Iterator for RandomWalk {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let delta = self.rng.gen_range(-self.step..=self.step);
        let mut v = self.value + delta;
        // Reflect at the boundaries.
        if v > self.hi {
            v = 2.0 * self.hi - v;
        }
        if v < self.lo {
            v = 2.0 * self.lo - v;
        }
        self.value = v.clamp(self.lo, self.hi);
        Some(self.value)
    }
}

/// Deterministic ε-increment stream (see [`RandomWalk::ramp`]).
#[derive(Debug)]
pub struct Ramp {
    value: f64,
    lo: f64,
    hi: f64,
    epsilon: f64,
}

impl Iterator for Ramp {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let out = self.value;
        self.value += self.epsilon;
        if self.value > self.hi {
            self.value = self.lo;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_stays_in_bounds_and_respects_step() {
        let mut prev: Option<f64> = None;
        for v in RandomWalk::new(5, 0.0, 100.0, 2.5).take(10_000) {
            assert!((0.0..=100.0).contains(&v));
            if let Some(p) = prev {
                // One reflection can at most double the apparent step.
                assert!((v - p).abs() <= 5.0 + 1e-9);
            }
            prev = Some(v);
        }
    }

    #[test]
    fn walk_is_deterministic() {
        let a: Vec<f64> = RandomWalk::new(9, 0.0, 10.0, 0.5).take(100).collect();
        let b: Vec<f64> = RandomWalk::new(9, 0.0, 10.0, 0.5).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ramp_increments_by_epsilon() {
        let xs: Vec<f64> = RandomWalk::ramp(0.0, 1000.0, 0.25).take(100).collect();
        for w in xs.windows(2) {
            assert!((w[1] - w[0] - 0.25).abs() < 1e-12);
        }
        assert_eq!(xs[0], 0.0);
    }

    #[test]
    fn ramp_wraps() {
        let xs: Vec<f64> = RandomWalk::ramp(0.0, 1.0, 0.6).take(4).collect();
        assert_eq!(xs, vec![0.0, 0.6, 0.0, 0.6]);
    }

    #[test]
    #[should_panic(expected = "bad step")]
    fn walk_rejects_nonpositive_step() {
        let _ = RandomWalk::new(0, 0.0, 1.0, 0.0);
    }
}
