//! Weather-like stand-in for the paper's real dataset.
//!
//! The paper's "real data" is the daily maximum temperature for Santa
//! Barbara, CA, 1994–2001 (~3K points) from the California Weather
//! Database. The generator here models the salient features of such a
//! coastal Mediterranean-climate series:
//!
//! * an annual cycle (period 365.25 days) with mean around 70 °F and a
//!   seasonal swing of roughly ±12 °F,
//! * strongly autocorrelated day-to-day fluctuations (AR(1), ϕ = 0.8),
//!   giving typical consecutive deviations of a degree or two,
//! * occasional short "heat wave" excursions of several degrees (Santa
//!   Ana / sundowner events), decaying over a few days,
//! * everything clamped to a plausible \[45, 105\] °F range.
//!
//! What the paper's experiments exploit is only that real data changes
//! slowly between samples (small ε in the error model of §2.6) and is
//! locally smooth, in contrast to the i.i.d. uniform synthetic data. Those
//! properties are matched; nothing in the evaluation depends on actual
//! 1990s Santa Barbara temperatures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean annual temperature of the simulated series, °F.
pub const MEAN: f64 = 70.0;
/// Seasonal amplitude, °F.
pub const SEASONAL_AMPLITUDE: f64 = 12.0;
/// Length of a year in days.
pub const YEAR: f64 = 365.25;
/// Hard lower clamp, °F.
pub const MIN_TEMP: f64 = 45.0;
/// Hard upper clamp, °F.
pub const MAX_TEMP: f64 = 105.0;

/// Endless deterministic daily-maximum-temperature-like series.
#[derive(Debug)]
pub struct Weather {
    rng: StdRng,
    day: u64,
    ar: f64,
    heat: f64,
}

impl Weather {
    /// A new seeded series starting on day 0 (January 1).
    pub fn new(seed: u64) -> Self {
        Weather {
            rng: StdRng::seed_from_u64(seed),
            day: 0,
            ar: 0.0,
            heat: 0.0,
        }
    }
}

impl Iterator for Weather {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let t = self.day as f64;
        self.day += 1;
        // Annual cycle peaking in late summer (phase shift ~ August).
        let phase = 2.0 * std::f64::consts::PI * (t - 220.0) / YEAR;
        let seasonal = MEAN + SEASONAL_AMPLITUDE * phase.cos();
        // AR(1) day-to-day noise with innovation sd ~ 1.2 degrees F.
        self.ar = 0.8 * self.ar + self.rng.gen_range(-1.2..1.2);
        // Heat waves: ~6 events per year, +6..14 degrees F, decaying 35%/day.
        self.heat *= 0.65;
        if self.rng.gen_bool(6.0 / YEAR) {
            self.heat += self.rng.gen_range(6.0..14.0);
        }
        Some((seasonal + self.ar + self.heat).clamp(MIN_TEMP, MAX_TEMP))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(seed: u64, n: usize) -> Vec<f64> {
        Weather::new(seed).take(n).collect()
    }

    #[test]
    fn values_stay_in_plausible_range() {
        for v in series(0, 5000) {
            assert!(
                (MIN_TEMP..=MAX_TEMP).contains(&v),
                "temperature {v} out of range"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(series(42, 1000), series(42, 1000));
        assert_ne!(series(42, 1000), series(43, 1000));
    }

    #[test]
    fn consecutive_deviations_are_small() {
        let xs = series(1, 3000);
        let deltas: Vec<f64> = xs.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        let mean_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
        assert!(
            mean_delta < 3.0,
            "mean daily change {mean_delta:.2} too large"
        );
        let max_delta = deltas.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_delta < 20.0,
            "max daily change {max_delta:.2} implausible"
        );
    }

    #[test]
    fn annual_cycle_present() {
        // Summer (days 182..273) should be clearly warmer than winter
        // (days 0..90) averaged over several years.
        let xs = series(2, 366 * 4);
        let mut summer = Vec::new();
        let mut winter = Vec::new();
        for (i, &v) in xs.iter().enumerate() {
            let doy = i % 366;
            if (182..273).contains(&doy) {
                summer.push(v);
            } else if doy < 90 {
                winter.push(v);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&summer) > avg(&winter) + 10.0,
            "summer {:.1} vs winter {:.1}",
            avg(&summer),
            avg(&winter)
        );
    }

    #[test]
    fn autocorrelation_is_strong() {
        // Lag-1 autocorrelation of the deseasonalized series should be
        // high (the real dataset's is ~0.8+).
        let xs = series(3, 3000);
        let detrended: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let phase = 2.0 * std::f64::consts::PI * (i as f64 - 220.0) / YEAR;
                v - (MEAN + SEASONAL_AMPLITUDE * phase.cos())
            })
            .collect();
        let mean = detrended.iter().sum::<f64>() / detrended.len() as f64;
        let var: f64 = detrended.iter().map(|x| (x - mean) * (x - mean)).sum();
        let cov: f64 = detrended
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho:.2} too weak");
    }
}
