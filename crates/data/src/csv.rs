//! Minimal CSV/column loader so the genuine datasets (e.g. the Santa
//! Barbara temperature series the paper used) can be dropped into the
//! experiments.
//!
//! The format is deliberately forgiving: one record per line; the *last*
//! comma-separated field of each line is parsed as the value (so both bare
//! `72.5` lines and `1994-01-01,72.5` lines work); blank lines and lines
//! starting with `#` are skipped; a non-numeric first record is treated as
//! a header and skipped.

use std::fs;
use std::io;
use std::path::Path;

/// Parse values from CSV text (see module docs for the accepted shapes).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] if a non-header line's value
/// field fails to parse as `f64`, or parses as a non-finite value
/// (`NaN`/`inf`) — those would poison every wavelet coefficient they
/// touch, so the loader rejects them up front.
pub fn parse_values(text: &str) -> io::Result<Vec<f64>> {
    let mut out = Vec::new();
    let mut first_record = true;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let field = line.rsplit(',').next().unwrap_or(line).trim();
        match field.parse::<f64>() {
            Ok(v) if !v.is_finite() => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: non-finite value {field:?}", lineno + 1),
                ))
            }
            Ok(v) => out.push(v),
            Err(_) if first_record => { /* header line */ }
            Err(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: cannot parse {field:?} as a number", lineno + 1),
                ))
            }
        }
        first_record = false;
    }
    Ok(out)
}

/// Load values from a file at `path`.
///
/// # Errors
///
/// I/O errors from reading the file, plus the parse errors of
/// [`parse_values`].
pub fn load_values<P: AsRef<Path>>(path: P) -> io::Result<Vec<f64>> {
    parse_values(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_values() {
        let v = parse_values("1.5\n2.5\n\n3.5\n").unwrap();
        assert_eq!(v, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn parses_last_field_of_csv_rows() {
        let v = parse_values("1994-01-01,72.5\n1994-01-02,68.0\n").unwrap();
        assert_eq!(v, vec![72.5, 68.0]);
    }

    #[test]
    fn skips_header_and_comments() {
        let v = parse_values("# Santa Barbara\ndate,tmax\n1994-01-01,72.5\n").unwrap();
        assert_eq!(v, vec![72.5]);
    }

    #[test]
    fn rejects_garbage_after_first_record() {
        let e = parse_values("1.0\nnot-a-number\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_non_finite_values() {
        for text in [
            "1.0\nNaN\n",
            "1.0\ninf\n",
            "1.0\n-inf\n",
            "1.0\n2,infinity\n",
        ] {
            let e = parse_values(text).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "input {text:?}");
            assert!(e.to_string().contains("line 2"), "input {text:?}: {e}");
        }
        // Even in first-record (header) position: "NaN" parses as f64, so it
        // is data, not a header, and must be rejected rather than skipped.
        let e = parse_values("NaN\n1.0\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn loads_from_file() {
        let dir = std::env::temp_dir().join("swat-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vals.csv");
        std::fs::write(&path, "10\n20\n30\n").unwrap();
        assert_eq!(load_values(&path).unwrap(), vec![10.0, 20.0, 30.0]);
        assert!(load_values(dir.join("missing.csv")).is_err());
    }
}
