//! Workload data for SWAT experiments.
//!
//! The paper evaluates on two datasets:
//!
//! * **Synthetic** — "obtained by a uniformly distributed random number
//!   generator. The range of data values is \[0, 100\]." Reproduced exactly
//!   by [`uniform`].
//! * **Real** — "the daily measurement of the maximum temperature for the
//!   city of Santa Barbara, CA from 1994 to 2001", ~3K points, from the
//!   California Weather Database. That archive is no longer retrievable, so
//!   [`weather`] generates a faithful stand-in: a seasonal sinusoid with
//!   AR(1) day-to-day noise and occasional heat-wave excursions. The
//!   properties the paper's experiments rely on — bounded range, *small
//!   consecutive deviations*, smooth local structure (explicitly contrasted
//!   with the synthetic data's "large deviations") — are preserved. Use
//!   [`csv::load_values`] to substitute the genuine dataset if you have it.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod walk;
pub mod weather;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Infinite iterator of i.i.d. uniform values in `[lo, hi)`.
#[derive(Debug)]
pub struct Uniform {
    rng: StdRng,
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// A new seeded uniform source over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(seed: u64, lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        Uniform {
            rng: StdRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }
}

impl Iterator for Uniform {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.rng.gen_range(self.lo..self.hi))
    }
}

/// The paper's synthetic workload: uniform values in `[0, 100)`.
pub fn uniform(seed: u64) -> Uniform {
    Uniform::new(seed, 0.0, 100.0)
}

/// First `n` values of the paper's synthetic workload.
pub fn uniform_series(seed: u64, n: usize) -> Vec<f64> {
    uniform(seed).take(n).collect()
}

/// The weather-like stand-in for the paper's real dataset (see module
/// docs); `n` daily values.
pub fn weather_series(seed: u64, n: usize) -> Vec<f64> {
    weather::Weather::new(seed).take(n).collect()
}

/// The two datasets of the paper's evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Uniform values in `[0, 100)` ("Synthetic data" in the paper).
    Synthetic,
    /// Seasonal daily-max-temperature-like series ("Real data").
    Weather,
}

impl Dataset {
    /// Generate `n` values of this dataset with the given seed.
    pub fn series(self, seed: u64, n: usize) -> Vec<f64> {
        match self {
            Dataset::Synthetic => uniform_series(seed, n),
            Dataset::Weather => weather_series(seed, n),
        }
    }

    /// An endless iterator over this dataset.
    pub fn stream(self, seed: u64) -> Box<dyn Iterator<Item = f64>> {
        match self {
            Dataset::Synthetic => Box::new(uniform(seed)),
            Dataset::Weather => Box::new(weather::Weather::new(seed)),
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Synthetic => "synthetic",
            Dataset::Weather => "real (weather)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_range_and_seed() {
        let xs = uniform_series(7, 10_000);
        assert!(xs.iter().all(|&x| (0.0..100.0).contains(&x)));
        assert_eq!(xs, uniform_series(7, 10_000), "determinism");
        assert_ne!(xs, uniform_series(8, 10_000), "seed sensitivity");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean} far from 50");
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn uniform_rejects_inverted_range() {
        let _ = Uniform::new(0, 10.0, 5.0);
    }

    #[test]
    fn dataset_dispatch() {
        assert_eq!(Dataset::Synthetic.series(1, 5).len(), 5);
        assert_eq!(Dataset::Weather.series(1, 5).len(), 5);
        assert_eq!(Dataset::Synthetic.name(), "synthetic");
        let s: Vec<f64> = Dataset::Weather.stream(3).take(4).collect();
        assert_eq!(s, Dataset::Weather.series(3, 4));
    }

    #[test]
    fn synthetic_has_larger_consecutive_deviations_than_weather() {
        // The paper's key contrast: synthetic data has large deviations,
        // real data small ones. Our stand-in must preserve this.
        let syn = uniform_series(11, 3000);
        let wea = weather_series(11, 3000);
        let mean_abs_delta = |xs: &[f64]| {
            xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64
        };
        let ds = mean_abs_delta(&syn);
        let dw = mean_abs_delta(&wea);
        assert!(
            ds > 5.0 * dw,
            "synthetic deviations ({ds:.2}) should dwarf weather's ({dw:.2})"
        );
    }
}
