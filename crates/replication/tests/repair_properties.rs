//! Property-based tests for the self-healing layer.
//!
//! Three guarantees from the robustness design, checked over random
//! topologies (including [`Topology::random_tree`]), workloads, and
//! fault plans:
//!
//! 1. **Crash-free healing is free.** With healing enabled but no crash
//!    windows in the plan, failure detection never arms: the run is
//!    bit-identical to the synchronous harness — same ledgers, same
//!    answer digest, zero heartbeat messages, zero repairs.
//! 2. **Healing never costs correctness.** Under arbitrary fault plans
//!    with crashes, every answer a healed run produces still meets its
//!    `δ` bound, every non-stale cached range still encloses the truth,
//!    and the run replays bit-identically (repairs included).
//! 3. **Backoff is safe arithmetic.** `RetryPolicy::backoff` is monotone
//!    nondecreasing in the attempt number, bounded by
//!    `timeout * 2^MAX_DOUBLINGS`, and never wraps — for any timeout,
//!    including `u64::MAX`.

use proptest::prelude::*;
use swat_data::Dataset;
use swat_net::{DelayDist, FaultPlan, MsgKind, NodeId, Topology};
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::{run_chaos, ChaosOptions, HealPolicy, RetryPolicy, SchemeKind};

/// Random small trees: half from explicit parent lists (as in
/// `chaos_properties`), half from the seeded [`Topology::random_tree`]
/// generator the repair layer is benchmarked on.
fn topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        prop::collection::vec(0usize..64, 1..7).prop_map(|seeds| {
            let mut parents: Vec<Option<usize>> = vec![None];
            for (i, s) in seeds.iter().enumerate() {
                let child = i + 1;
                parents.push(Some(s % child));
            }
            Topology::from_parents(parents).expect("parents precede children")
        }),
        (1usize..8, 0u64..1000).prop_map(|(n, seed)| Topology::random_tree(n, seed)),
    ]
}

fn config() -> impl Strategy<Value = WorkloadConfig> {
    (
        prop::sample::select(vec![8usize, 16, 32]),
        1u64..4,
        1u64..4,
        prop::sample::select(vec![2.0f64, 20.0, 200.0]),
        5u64..40,
        0u64..1000,
    )
        .prop_map(
            |(window, t_data, t_query, delta, phase, seed)| WorkloadConfig {
                window,
                t_data,
                t_query,
                delta,
                horizon: 500,
                warmup: 100,
                seed,
                phase,
                ..WorkloadConfig::default()
            },
        )
}

fn heal_policy() -> impl Strategy<Value = HealPolicy> {
    (2u64..9, 1u32..5).prop_map(|(period, miss_threshold)| HealPolicy {
        period,
        miss_threshold,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Healing enabled, nothing can crash: bit-identical to the
    /// synchronous harness, with zero healing overhead.
    #[test]
    fn crash_free_healing_is_bit_identical(
        topo in topology(),
        cfg in config(),
        heal in heal_policy(),
        dataset_seed in 0u64..100,
    ) {
        let data = Dataset::Weather.series(dataset_seed, 600);
        let sync = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let options = ChaosOptions {
            heal: Some(heal),
            check_invariants: true,
            ..ChaosOptions::default() // FaultPlan::none()
        };
        let healed = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &options)
            .expect("null plan is always valid");
        prop_assert_eq!(&healed.run.ledger, &sync.ledger);
        prop_assert_eq!(&healed.run.warmup_ledger, &sync.warmup_ledger);
        prop_assert_eq!(healed.run.answers_digest, sync.answers_digest);
        prop_assert_eq!(healed.run.approximations, sync.approximations);
        prop_assert_eq!(healed.run.ledger.count(MsgKind::Heartbeat), 0);
        prop_assert!(healed.repairs.is_empty(), "{:?}", healed.repairs);
        prop_assert!(healed.violations.is_empty(), "{:?}", healed.violations);
    }

    /// Arbitrary crashes + drops + delays with healing on: no wrong
    /// answers, no phantom answers, and bit-identical replays (the
    /// repair log included).
    #[test]
    fn healing_never_costs_correctness(
        topo in topology(),
        cfg in config(),
        heal in heal_policy(),
        dataset_seed in 0u64..100,
        plan_seed in 0u64..1000,
        drop in prop::sample::select(vec![0.0f64, 0.05, 0.2]),
        delay in prop::sample::select(vec![
            DelayDist::Instant,
            DelayDist::Const(1),
            DelayDist::Uniform { lo: 0, hi: 2 },
        ]),
        node in 1usize..8,
        crash_from in 120u64..300,
        crash_len in 10u64..150,
    ) {
        let data = Dataset::Weather.series(dataset_seed, 600);
        let node = 1 + (node % (topo.len() - 1)); // a client, never the source
        let plan = FaultPlan::new(plan_seed)
            .with_drop(drop)
            .expect("valid probability")
            .with_delay(delay)
            .expect("valid delay")
            .with_crash(NodeId(node), crash_from, crash_from + crash_len)
            .expect("valid crash window");
        let options = ChaosOptions {
            plan,
            heal: Some(heal),
            check_invariants: true,
            ..ChaosOptions::default()
        };
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &options)
            .expect("plan is in range");
        prop_assert!(
            out.violations.is_empty(),
            "correctness violations under healing: {:?}",
            out.violations
        );
        prop_assert!(
            out.net.counter("net.queries_answered") <= out.run.metrics.counter("queries"),
            "more answers than measured queries"
        );
        let replay = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &options)
            .expect("plan is in range");
        prop_assert_eq!(&replay.run.ledger, &out.run.ledger);
        prop_assert_eq!(replay.run.answers_digest, out.run.answers_digest);
        prop_assert_eq!(replay.repairs.len(), out.repairs.len());
        for (a, b) in replay.repairs.iter().zip(out.repairs.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Backoff delays are monotone in the attempt number, capped at
    /// `timeout * 2^MAX_DOUBLINGS` (saturating), and never panic or
    /// wrap — even at `attempt = u32::MAX` with `timeout = u64::MAX`.
    #[test]
    fn backoff_is_monotone_bounded_and_saturating(
        timeout in prop_oneof![1u64..1_000_000, Just(u64::MAX), Just(u64::MAX / 2)],
        max_retries in 0u32..10,
    ) {
        let policy = RetryPolicy { timeout, max_retries };
        let cap = timeout.saturating_mul(1u64 << RetryPolicy::MAX_DOUBLINGS);
        let mut prev = 0u64;
        for attempt in 0..=(RetryPolicy::MAX_DOUBLINGS + 3) {
            let d = policy.backoff(attempt);
            prop_assert!(d >= prev, "backoff({attempt}) = {d} < backoff({}) = {prev}", attempt - 1);
            prop_assert!(d <= cap, "backoff({attempt}) = {d} exceeds cap {cap}");
            prop_assert!(d >= timeout.min(cap), "backoff never undershoots the base timeout");
            prev = d;
        }
        prop_assert_eq!(policy.backoff(u32::MAX), cap);
        prop_assert_eq!(
            policy.backoff(RetryPolicy::MAX_DOUBLINGS),
            policy.backoff(RetryPolicy::MAX_DOUBLINGS + 1)
        );
    }
}
