//! Property-based tests for the replication stack: the ASR invariants
//! and determinism must hold under arbitrary topologies and workloads.

use proptest::prelude::*;
use swat_data::Dataset;
use swat_net::{MessageLedger, NodeId, Topology};
use swat_replication::asr::SwatAsr;
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::workload::{QueryGenerator, QueryShape};
use swat_replication::{ReplicationScheme, SchemeKind};

/// A random small tree topology (1..=7 clients), valid by construction:
/// each client's parent is an earlier node.
fn topology() -> impl Strategy<Value = Topology> {
    prop::collection::vec(0usize..64, 1..7).prop_map(|seeds| {
        let mut parents: Vec<Option<usize>> = vec![None];
        for (i, s) in seeds.iter().enumerate() {
            let child = i + 1;
            parents.push(Some(s % child));
        }
        Topology::from_parents(parents).expect("parents precede children")
    })
}

fn config() -> impl Strategy<Value = WorkloadConfig> {
    (
        prop::sample::select(vec![8usize, 16, 32]),
        1u64..4,
        1u64..4,
        prop::sample::select(vec![2.0f64, 20.0, 200.0]),
        5u64..40,
        0u64..1000,
    )
        .prop_map(
            |(window, t_data, t_query, delta, phase, seed)| WorkloadConfig {
                window,
                t_data,
                t_query,
                delta,
                horizon: 500,
                warmup: 100,
                seed,
                phase,
                ..WorkloadConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical inputs replay identically, for every scheme, on random
    /// topologies and workloads.
    #[test]
    fn determinism(topo in topology(), cfg in config(), dataset_seed in 0u64..100) {
        let data = Dataset::Weather.series(dataset_seed, 600);
        for kind in SchemeKind::ALL {
            let a = run(kind, &topo, &data, &cfg);
            let b = run(kind, &topo, &data, &cfg);
            prop_assert_eq!(a.ledger, b.ledger);
            prop_assert_eq!(a.approximations, b.approximations);
        }
    }

    /// ASR invariants under random event interleavings (driven manually,
    /// not through the harness, to hit odd phase/data/query orders):
    /// connectivity of every segment's replication scheme and enclosure
    /// of true values by every cached range.
    #[test]
    fn asr_invariants(
        topo in topology(),
        ops in prop::collection::vec(0u8..10, 50..300),
        seed in 0u64..1000,
    ) {
        let window = 16usize;
        let mut asr = SwatAsr::new(topo.clone(), window);
        let mut ledger = MessageLedger::new();
        let mut data = Dataset::Weather.stream(seed);
        let mut gens: Vec<QueryGenerator> = topo
            .clients()
            .map(|c| QueryGenerator::new(seed, c.index(), window, 50.0, QueryShape::Linear))
            .collect();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            match op {
                // Weighted mix: data arrivals, queries, phase ends.
                0..=3 => asr.on_data(t, data.next().expect("endless"), &mut ledger),
                4..=8 => {
                    let c = 1 + (op as usize + t as usize) % topo.client_count();
                    let q = gens[c - 1].next_query();
                    let out = asr.on_query(t, NodeId(c), &q, &mut ledger);
                    prop_assert!(out.value.is_finite());
                }
                _ => asr.on_phase_end(t, &mut ledger),
            }
            // Invariant 1: every segment's replica set is a connected
            // subtree containing the source.
            for seg in 0..asr.segments().len() {
                let holders = asr.replica_holders(seg);
                if holders.is_empty() {
                    // The stream has not reached this segment yet.
                    continue;
                }
                prop_assert!(holders.contains(&NodeId::SOURCE));
                for &h in &holders {
                    if let Some(p) = topo.parent(h) {
                        prop_assert!(
                            holders.contains(&p),
                            "segment {} holder {} parentless in scheme", seg, h
                        );
                    }
                }
                // Invariant 2: cached ranges enclose the truth.
                if let Some(truth) = asr.exact_segment_range(seg) {
                    for node in topo.nodes() {
                        if let Some(cached) = asr.cached_range(node, seg) {
                            prop_assert!(
                                cached.encloses(&truth),
                                "node {} seg {}: {} !⊇ {}", node, seg, cached, truth
                            );
                        }
                    }
                }
            }
        }
    }

    /// The query generator always produces queries inside the window,
    /// whatever the seed and client.
    #[test]
    fn generated_queries_in_window(seed in any::<u64>(), client in 0usize..100, window_log in 1u32..8) {
        let window = 1usize << window_log;
        let mut g = QueryGenerator::new(seed, client, window, 1.0, QueryShape::Exponential);
        for _ in 0..50 {
            let q = g.next_query();
            prop_assert!(*q.indices().iter().max().expect("nonempty") < window);
        }
    }

    /// Message ledgers only grow, and the weighted total is consistent
    /// with per-kind counts for unit-cost schemes (ASR/APS charge 1 per
    /// message).
    #[test]
    fn ledger_consistency(topo in topology(), cfg in config(), dataset_seed in 0u64..50) {
        let data = Dataset::Synthetic.series(dataset_seed, 600);
        for kind in [SchemeKind::SwatAsr, SchemeKind::AdaptivePrecision] {
            let out = run(kind, &topo, &data, &cfg);
            prop_assert!(
                (out.ledger.weighted_total() - out.ledger.total() as f64).abs() < 1e-6,
                "{}: unit costs must match counts", kind.name()
            );
        }
        // DC's weighted total differs from the raw count only by its
        // control-message discount.
        let out = run(SchemeKind::DivergenceCaching, &topo, &data, &cfg);
        prop_assert!(out.ledger.weighted_total() <= out.ledger.total() as f64 + 1e-6);
    }
}
