//! Property-based tests for the fault-aware chaos driver.
//!
//! Two guarantees from the robustness design, checked over random
//! topologies, workloads, and fault plans:
//!
//! 1. **Null-plan identity.** Under `FaultPlan::none()` the chaos driver
//!    is bit-identical to the synchronous harness — same ledgers, same
//!    metrics, same answer digest — for every scheme. The fault layer
//!    costs nothing when there are no faults.
//! 2. **Zero correctness loss.** Under arbitrary seeded fault plans
//!    (drops, delays, crashes), every query that *is* answered meets its
//!    `δ` bound and every cached range still encloses the truth; faults
//!    are paid for in messages and unanswered queries, never in wrong
//!    answers.

use proptest::prelude::*;
use swat_data::Dataset;
use swat_net::{DelayDist, FaultPlan, NodeId, Topology};
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::{run_chaos, ChaosOptions, SchemeKind};

/// A random small tree topology (1..=7 clients), valid by construction:
/// each client's parent is an earlier node.
fn topology() -> impl Strategy<Value = Topology> {
    prop::collection::vec(0usize..64, 1..7).prop_map(|seeds| {
        let mut parents: Vec<Option<usize>> = vec![None];
        for (i, s) in seeds.iter().enumerate() {
            let child = i + 1;
            parents.push(Some(s % child));
        }
        Topology::from_parents(parents).expect("parents precede children")
    })
}

fn config() -> impl Strategy<Value = WorkloadConfig> {
    (
        prop::sample::select(vec![8usize, 16, 32]),
        1u64..4,
        1u64..4,
        prop::sample::select(vec![2.0f64, 20.0, 200.0]),
        5u64..40,
        0u64..1000,
    )
        .prop_map(
            |(window, t_data, t_query, delta, phase, seed)| WorkloadConfig {
                window,
                t_data,
                t_query,
                delta,
                horizon: 500,
                warmup: 100,
                seed,
                phase,
                ..WorkloadConfig::default()
            },
        )
}

/// An arbitrary seeded fault plan: global drop rate, global delay
/// distribution, and (when the gate bit is set) one crash window on a
/// client node. Node indices are taken modulo the topology size by the
/// caller.
type PlanParams = (u64, f64, DelayDist, (bool, usize, u64, u64));

fn fault_plan() -> impl Strategy<Value = PlanParams> {
    (
        0u64..1000,
        prop::sample::select(vec![0.0f64, 0.05, 0.2, 0.4]),
        prop::sample::select(vec![
            DelayDist::Instant,
            DelayDist::Const(1),
            DelayDist::Const(3),
            DelayDist::Uniform { lo: 0, hi: 2 },
            DelayDist::Uniform { lo: 1, hi: 5 },
        ]),
        (any::<bool>(), 1usize..8, 120u64..350, 10u64..120),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under the null fault plan the chaos driver reproduces the
    /// synchronous harness bit for bit, for every scheme.
    #[test]
    fn null_plan_is_bit_identical(topo in topology(), cfg in config(), dataset_seed in 0u64..100) {
        let data = Dataset::Weather.series(dataset_seed, 600);
        let options = ChaosOptions::default(); // FaultPlan::none()
        for kind in SchemeKind::ALL {
            let sync = run(kind, &topo, &data, &cfg);
            let chaos = run_chaos(kind, &topo, &data, &cfg, &options)
                .expect("ideal plans support every scheme");
            prop_assert_eq!(&chaos.run.ledger, &sync.ledger, "{} ledger", kind.name());
            prop_assert_eq!(
                &chaos.run.warmup_ledger,
                &sync.warmup_ledger,
                "{} warmup ledger",
                kind.name()
            );
            prop_assert_eq!(
                chaos.run.answers_digest,
                sync.answers_digest,
                "{} answers",
                kind.name()
            );
            prop_assert_eq!(chaos.run.approximations, sync.approximations);
            for key in ["queries", "local_hits", "data_arrivals", "phases"] {
                prop_assert_eq!(
                    chaos.run.metrics.counter(key),
                    sync.metrics.counter(key),
                    "{} {}",
                    kind.name(),
                    key
                );
            }
        }
    }

    /// Under arbitrary fault plans, SWAT-ASR never returns a wrong
    /// answer: the invariant checker (δ bound at every answer, enclosure
    /// of truth by every non-stale cached range after every event) finds
    /// nothing, answered queries never exceed issued ones, and the run
    /// replays identically.
    #[test]
    fn faults_never_cost_correctness(
        topo in topology(),
        cfg in config(),
        dataset_seed in 0u64..100,
        (plan_seed, drop, delay, crash) in fault_plan(),
    ) {
        let data = Dataset::Weather.series(dataset_seed, 600);
        let mut plan = FaultPlan::new(plan_seed)
            .with_drop(drop)
            .expect("valid probability")
            .with_delay(delay)
            .expect("valid delay");
        let (crashes, node, from, len) = crash;
        if crashes {
            let node = 1 + (node % (topo.len() - 1)); // a client, never the source
            plan = plan
                .with_crash(NodeId(node), from, from + len)
                .expect("valid crash window");
        }
        let options = ChaosOptions {
            plan,
            check_invariants: true,
            ..ChaosOptions::default()
        };
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &options)
            .expect("plan is in range");
        prop_assert!(
            out.violations.is_empty(),
            "correctness violations under faults: {:?}",
            out.violations
        );
        prop_assert!(
            out.net.counter("net.queries_answered") <= out.run.metrics.counter("queries"),
            "more answers than measured queries"
        );
        let replay = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &options)
            .expect("plan is in range");
        prop_assert_eq!(&replay.run.ledger, &out.run.ledger);
        prop_assert_eq!(replay.run.answers_digest, out.run.answers_digest);
    }
}
