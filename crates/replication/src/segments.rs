//! The window partition SWAT-ASR replicates — the paper's Table 1.
//!
//! "Our stream caching algorithm partitions the window into segments and
//! runs the replication algorithm for each segment independently." The
//! directory has "one row for every level (except level 0 which has two
//! rows)": for `N = 16` the segments are `(0,1) (2,3) (4,7) (8,15)` —
//! `log N` segments, dyadic, finer toward the recent end of the window.

/// One window segment: indices `lo..=hi` (0 = newest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Most recent index covered (inclusive).
    pub lo: usize,
    /// Oldest index covered (inclusive).
    pub hi: usize,
}

impl Segment {
    /// Number of indices covered.
    pub fn width(&self) -> usize {
        self.hi - self.lo + 1
    }

    /// Whether `idx` falls inside the segment.
    pub fn contains(&self, idx: usize) -> bool {
        (self.lo..=self.hi).contains(&idx)
    }
}

/// The paper's directory partition of a window of size `n` (a power of
/// two >= 2): `(0,1), (2,3), (4,7), (8,15), …, (n/2, n−1)`.
///
/// # Panics
///
/// Panics unless `n` is a power of two >= 2.
pub fn window_segments(n: usize) -> Vec<Segment> {
    assert!(n >= 2 && n.is_power_of_two(), "bad window {n}");
    let mut segs = vec![Segment { lo: 0, hi: 1 }];
    if n >= 4 {
        segs.push(Segment { lo: 2, hi: 3 });
    }
    let mut lo = 4;
    while lo < n {
        let hi = 2 * lo - 1;
        segs.push(Segment { lo, hi });
        lo *= 2;
    }
    segs
}

/// Index of the segment containing window index `idx` within
/// [`window_segments`]`(n)`.
///
/// # Panics
///
/// Panics if `idx >= n`.
pub fn segment_of(n: usize, idx: usize) -> usize {
    assert!(idx < n, "index {idx} outside window {n}");
    match idx {
        0 | 1 => 0,
        2 | 3 => 1,
        // Segment (2^k, 2^(k+1)-1) sits at position k for k >= 2.
        _ => usize::BITS as usize - 1 - idx.leading_zeros() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_1() {
        // Table 1 (N = 16): (0,1), (2,3), (4,7), (8,15).
        let segs = window_segments(16);
        assert_eq!(
            segs,
            vec![
                Segment { lo: 0, hi: 1 },
                Segment { lo: 2, hi: 3 },
                Segment { lo: 4, hi: 7 },
                Segment { lo: 8, hi: 15 },
            ]
        );
    }

    #[test]
    fn log_n_segments_tile_the_window() {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let segs = window_segments(n);
            assert_eq!(segs.len(), log_n.max(1) as usize, "n = {n}");
            // Contiguous tiling of 0..n.
            let mut expect = 0;
            for s in &segs {
                assert_eq!(s.lo, expect);
                expect = s.hi + 1;
            }
            assert_eq!(expect, n);
        }
    }

    #[test]
    fn segment_of_agrees_with_partition() {
        for n in [2usize, 4, 16, 64, 1024] {
            let segs = window_segments(n);
            for idx in 0..n {
                let si = segment_of(n, idx);
                assert!(segs[si].contains(idx), "n={n} idx={idx} got segment {si}");
            }
        }
    }

    #[test]
    fn widths_double() {
        let segs = window_segments(64);
        let widths: Vec<usize> = segs.iter().map(Segment::width).collect();
        assert_eq!(widths, vec![2, 2, 4, 8, 16, 32]);
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn rejects_non_power_of_two() {
        let _ = window_segments(12);
    }
}
