//! Per-node durable state through the `swat-store` checksummed image
//! codec.
//!
//! The chaos driver models some node state as surviving a crash. Before
//! this module, that state ("the subscription directory") simply stayed
//! in the simulator's memory — durable by fiat, with no on-media format
//! at all. Now every byte that survives a crash round-trips through
//! [`swat_store::image`], the same checksummed container the durability
//! layer uses on disk, so the simulation exercises a real codec path and
//! the durability choice is explicit:
//!
//! * [`Durability::Directory`] — the seed model: only the subscription
//!   directory survives; approximations, epochs, and staleness are
//!   rebuilt from the network.
//! * [`Durability::Checkpointed`] — the node additionally persists each
//!   segment's approximation, epoch, and staleness mark, as a node
//!   running a [`swat_store::DurableStore`] would. Encoding at the crash
//!   instant is equivalent to write-through persistence because every
//!   mutation precedes the crash. Soundness is preserved by the driver's
//!   write-time stale marking, which keeps running against the rows of a
//!   down node: by the time the node restarts, any restored
//!   approximation the world moved past is already marked stale.
//!
//! Restoring tolerates corrupt images by falling back to total loss of
//! the volatile-or-damaged portion — degraded, never unsound.

use swat_net::NodeId;
use swat_store::{read_image, ImageWriter};

use crate::approx::SegmentApprox;
use crate::asr::SwatAsr;

/// What survives a node crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Subscription directory only (the original chaos model).
    #[default]
    Directory,
    /// Directory plus per-segment approximation, epoch, and staleness —
    /// the state a checkpointed durable store recovers locally.
    Checkpointed,
}

/// Record tag: a segment's durable directory entry (subscribers only).
const TAG_DIRECTORY: u8 = 1;
/// Record tag: a segment's full durable row.
const TAG_FULL: u8 = 2;

/// Encode the durable portion of `node`'s per-segment state, one image
/// record per segment in segment order.
pub(crate) fn encode_node<A: SegmentApprox>(
    asr: &SwatAsr<A>,
    node: NodeId,
    durability: Durability,
) -> Vec<u8> {
    let mut image = ImageWriter::new();
    for seg in 0..asr.segments().len() {
        let row = asr.row(node, seg);
        let mut payload = Vec::new();
        payload.extend_from_slice(&(row.subscribed.len() as u64).to_le_bytes());
        for &child in &row.subscribed {
            payload.extend_from_slice(&(child.index() as u64).to_le_bytes());
        }
        match durability {
            Durability::Directory => {
                image.record(TAG_DIRECTORY, &payload);
            }
            Durability::Checkpointed => {
                payload.extend_from_slice(&row.seq.to_le_bytes());
                payload.push(row.stale as u8);
                match &row.approx {
                    Some(a) => {
                        payload.push(1);
                        a.write_bytes(&mut payload);
                    }
                    None => payload.push(0),
                }
                image.record(TAG_FULL, &payload);
            }
        }
    }
    image.finish()
}

/// Restore `node`'s durable state from `bytes` into zeroed rows. Returns
/// `false` (leaving the rows in their crash-zeroed state) if the image or
/// any record fails to verify or parse — corruption costs the replicas,
/// never correctness.
pub(crate) fn restore_node<A: SegmentApprox>(
    asr: &mut SwatAsr<A>,
    node: NodeId,
    bytes: &[u8],
) -> bool {
    let Ok(records) = read_image(bytes) else {
        return false;
    };
    if records.len() != asr.segments().len() {
        return false;
    }
    // Parse everything before mutating anything, so a bad record cannot
    // leave the node half-restored.
    let mut parsed = Vec::with_capacity(records.len());
    for (tag, payload) in &records {
        let Some(row) = parse_record::<A>(*tag, payload) else {
            return false;
        };
        parsed.push(row);
    }
    for (seg, (subscribed, full)) in parsed.into_iter().enumerate() {
        let row = asr.row_mut(node, seg);
        row.subscribed = subscribed;
        if let Some((seq, stale, approx)) = full {
            row.seq = seq;
            row.stale = stale;
            row.approx = approx;
        }
    }
    true
}

type ParsedRow<A> = (Vec<NodeId>, Option<(u64, bool, Option<A>)>);

fn parse_record<A: SegmentApprox>(tag: u8, payload: &[u8]) -> Option<ParsedRow<A>> {
    let u64_at = |at: usize| -> Option<u64> {
        Some(u64::from_le_bytes(
            payload.get(at..at + 8)?.try_into().ok()?,
        ))
    };
    let count = usize::try_from(u64_at(0)?).ok()?;
    if count > payload.len() / 8 {
        return None;
    }
    let mut subscribed = Vec::with_capacity(count);
    for i in 0..count {
        let id = usize::try_from(u64_at(8 + 8 * i)?).ok()?;
        subscribed.push(NodeId(id));
    }
    let mut at = 8 + 8 * count;
    match tag {
        TAG_DIRECTORY => {
            if at != payload.len() {
                return None;
            }
            Some((subscribed, None))
        }
        TAG_FULL => {
            let seq = u64_at(at)?;
            at += 8;
            let stale = match payload.get(at)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            at += 1;
            let approx = match payload.get(at)? {
                0 => {
                    if at + 1 != payload.len() {
                        return None;
                    }
                    None
                }
                1 => Some(A::from_bytes(&payload[at + 1..])?),
                _ => return None,
            };
            Some((subscribed, Some((seq, stale, approx))))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::RangeApprox;
    use swat_net::Topology;
    use swat_tree::ValueRange;

    fn asr() -> SwatAsr<RangeApprox> {
        let topo = Topology::from_parents(vec![None, Some(0), Some(1)]).unwrap();
        let mut asr = SwatAsr::new(topo, 16);
        for i in 0..40 {
            asr.ingest((i as f64 * 0.3).sin() * 4.0);
        }
        asr
    }

    #[test]
    fn checkpointed_image_roundtrips_every_durable_field() {
        let mut asr = asr();
        let node = NodeId(1);
        {
            let row = asr.row_mut(node, 0);
            row.subscribed = vec![NodeId(2)];
            row.seq = 9;
            row.stale = true;
            row.approx = Some(RangeApprox(ValueRange::new(-1.0, 3.0)));
        }
        let image = encode_node(&asr, node, Durability::Checkpointed);
        let (want_subs, want_seq, want_approx) = {
            let row = asr.row(node, 0);
            (row.subscribed.clone(), row.seq, row.approx.clone())
        };
        // Crash-zero, then restore.
        for seg in 0..asr.segments().len() {
            let row = asr.row_mut(node, seg);
            row.subscribed.clear();
            row.approx = None;
            row.stale = false;
            row.seq = 0;
        }
        assert!(restore_node(&mut asr, node, &image));
        let row = asr.row(node, 0);
        assert_eq!(row.subscribed, want_subs);
        assert_eq!(row.seq, want_seq);
        assert!(row.stale);
        assert_eq!(row.approx, want_approx);
    }

    #[test]
    fn directory_image_restores_only_subscriptions() {
        let mut asr = asr();
        let node = NodeId(1);
        asr.row_mut(node, 0).subscribed = vec![NodeId(2)];
        asr.row_mut(node, 0).seq = 5;
        let image = encode_node(&asr, node, Durability::Directory);
        for seg in 0..asr.segments().len() {
            let row = asr.row_mut(node, seg);
            row.subscribed.clear();
            row.seq = 0;
        }
        assert!(restore_node(&mut asr, node, &image));
        assert_eq!(asr.row(node, 0).subscribed, vec![NodeId(2)]);
        assert_eq!(
            asr.row(node, 0).seq,
            0,
            "epochs are volatile in Directory mode"
        );
    }

    #[test]
    fn corrupt_images_restore_nothing_and_never_panic() {
        let mut asr = asr();
        let node = NodeId(1);
        asr.row_mut(node, 0).subscribed = vec![NodeId(2)];
        let image = encode_node(&asr, node, Durability::Checkpointed);
        for cut in 0..image.len() {
            assert!(!restore_node(&mut asr, node, &image[..cut]), "cut {cut}");
        }
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1 << bit;
                assert!(!restore_node(&mut asr, node, &bad), "flip {byte}.{bit}");
            }
        }
    }
}
