//! Query workload generation for the replication experiments.
//!
//! The paper's §5 setup: "a number of clients asking linear inner product
//! queries at regular intervals. … The sizes of the queries and the
//! specific data points of interest are chosen uniformly (random query
//! mode)." Each client gets an independent, seeded generator so runs are
//! reproducible and schemes see identical query sequences.

use rand::Rng;

use swat_tree::InnerProductQuery;

/// The weight profile of generated queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// Linearly decaying weights — the paper's distributed experiments.
    Linear,
    /// Exponentially decaying weights.
    Exponential,
}

/// Deterministic per-client query source (random query mode).
#[derive(Debug)]
pub struct QueryGenerator {
    rng: rand::rngs::StdRng,
    window: usize,
    delta: f64,
    shape: QueryShape,
}

impl QueryGenerator {
    /// A generator for `client` under master seed `seed`, over a window
    /// of `window` items, producing queries with precision requirement
    /// `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `delta < 0`.
    pub fn new(seed: u64, client: usize, window: usize, delta: f64, shape: QueryShape) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(delta >= 0.0, "delta must be nonnegative");
        QueryGenerator {
            rng: swat_sim::rng_stream(seed, 0x9E3779B9 ^ client as u64),
            window,
            delta,
            shape,
        }
    }

    /// Draw the next query: uniform start offset, uniform length.
    pub fn next_query(&mut self) -> InnerProductQuery {
        let mut q = InnerProductQuery::point(0, self.delta);
        self.next_query_into(&mut q);
        q
    }

    /// Draw the next query **in place**, reusing `q`'s index and weight
    /// buffers — the same random draws in the same order as
    /// [`Self::next_query`], so interleaving the two never changes the
    /// sequence. This is what lets the replication harness serve each
    /// client from one long-lived query without allocating per draw.
    pub fn next_query_into(&mut self, q: &mut InnerProductQuery) {
        let start = self.rng.gen_range(0..self.window);
        let len = self.rng.gen_range(1..=self.window - start);
        match self.shape {
            QueryShape::Linear => q.set_linear_at(start, len, self.delta),
            QueryShape::Exponential => q.set_exponential_at(start, len, self.delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_stay_inside_window() {
        let mut g = QueryGenerator::new(1, 3, 32, 5.0, QueryShape::Linear);
        for _ in 0..500 {
            let q = g.next_query();
            assert!(!q.is_empty());
            assert!(*q.indices().iter().max().unwrap() < 32);
            assert_eq!(q.delta(), 5.0);
        }
    }

    #[test]
    fn deterministic_per_seed_and_client() {
        let draw = |seed, client| {
            let mut g = QueryGenerator::new(seed, client, 16, 1.0, QueryShape::Linear);
            (0..10)
                .map(|_| g.next_query().indices().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7, 1), draw(7, 1));
        assert_ne!(draw(7, 1), draw(7, 2));
        assert_ne!(draw(7, 1), draw(8, 1));
    }

    #[test]
    fn next_query_into_matches_next_query() {
        for shape in [QueryShape::Linear, QueryShape::Exponential] {
            let mut fresh = QueryGenerator::new(11, 4, 64, 2.5, shape);
            let mut reused = QueryGenerator::new(11, 4, 64, 2.5, shape);
            let mut q = InnerProductQuery::point(0, 2.5);
            for _ in 0..200 {
                reused.next_query_into(&mut q);
                assert_eq!(q, fresh.next_query());
            }
        }
    }

    #[test]
    fn shapes_produce_expected_weights() {
        let mut g = QueryGenerator::new(2, 0, 8, 1.0, QueryShape::Exponential);
        let q = g.next_query();
        for w in q.weights().windows(2) {
            assert!((w[1] / w[0] - 0.5).abs() < 1e-12, "halving weights");
        }
        let mut g = QueryGenerator::new(2, 0, 8, 1.0, QueryShape::Linear);
        let q = g.next_query();
        assert_eq!(q.weights()[0], 1.0);
    }
}
