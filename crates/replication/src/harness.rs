//! Deterministic simulation driver for the replication experiments.
//!
//! Mirrors the paper's §5 environment: "a server site processing a single
//! data stream, and a number of clients asking linear inner product
//! queries at regular intervals. … We schedule periodic tasks to initiate
//! data and query arrivals. The system is allowed to warm up initially
//! before measurements are made."
//!
//! The driver runs one [`ReplicationScheme`] over a shared event schedule
//! (data every `t_data`, one query per client every `t_query`, a
//! replication phase boundary every `phase`) and reports the post-warmup
//! message ledger plus workload metrics. Identical configurations replay
//! identically, and all three schemes see the same data and query
//! sequences.

use std::fmt;

use crate::aps::AdaptivePrecision;
use crate::asr::SwatAsr;
use crate::divergence::DivergenceCaching;
use crate::scheme::{ReplicationScheme, SchemeKind};
use crate::workload::{QueryGenerator, QueryShape};
use swat_net::{MessageLedger, Topology};
use swat_sim::{Metrics, Periodic, Scheduler};

/// Parameters of one replication experiment run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Sliding-window size `N` (power of two for SWAT-ASR).
    pub window: usize,
    /// Data arrival period `T_d` in ticks.
    pub t_data: u64,
    /// Per-client query period `T_q` in ticks.
    pub t_query: u64,
    /// Query precision requirement `δ`.
    pub delta: f64,
    /// Simulation end (exclusive), in ticks.
    pub horizon: u64,
    /// Ticks before message counting starts.
    pub warmup: u64,
    /// Master seed for query generation.
    pub seed: u64,
    /// Replication phase length in ticks (SWAT-ASR's ADR tests).
    pub phase: u64,
    /// Divergence Caching's control-message weight `w`.
    pub control_weight: f64,
    /// Full data value span (DC's width discretization scale).
    pub value_span: f64,
    /// Weight profile of generated queries.
    pub shape: QueryShape,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            window: 32,
            t_data: 1,
            t_query: 1,
            delta: 10.0,
            horizon: 2_000,
            warmup: 400,
            seed: 42,
            phase: 20,
            control_weight: 0.1,
            value_span: 100.0,
            shape: QueryShape::Linear,
        }
    }
}

/// Typed validation error for a [`WorkloadConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadConfigError {
    /// A periodic task period (`t_data`, `t_query`, or `phase`) is zero.
    ZeroPeriod(&'static str),
    /// `warmup >= horizon`: nothing would ever be measured.
    WarmupBeyondHorizon {
        /// The configured warmup.
        warmup: u64,
        /// The configured horizon.
        horizon: u64,
    },
    /// `window` is not a power of two `>= 2` (SWAT's dyadic segments
    /// require one).
    WindowNotPowerOfTwo(usize),
    /// `delta` is not finite and nonnegative.
    BadDelta(f64),
}

impl fmt::Display for WorkloadConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadConfigError::ZeroPeriod(field) => {
                write!(f, "{field} must be nonzero")
            }
            WorkloadConfigError::WarmupBeyondHorizon { warmup, horizon } => {
                write!(f, "warmup {warmup} must be < horizon {horizon}")
            }
            WorkloadConfigError::WindowNotPowerOfTwo(w) => {
                write!(f, "window {w} must be a power of two >= 2")
            }
            WorkloadConfigError::BadDelta(d) => {
                write!(f, "delta {d} must be finite and nonnegative")
            }
        }
    }
}

impl std::error::Error for WorkloadConfigError {}

impl WorkloadConfig {
    /// Validate the configuration, reporting the first problem as a typed
    /// error (instead of the scattered panics the periods, window
    /// segmentation, and query generator would otherwise raise downstream).
    ///
    /// # Errors
    ///
    /// See [`WorkloadConfigError`].
    pub fn validate(&self) -> Result<(), WorkloadConfigError> {
        if self.t_data == 0 {
            return Err(WorkloadConfigError::ZeroPeriod("t_data"));
        }
        if self.t_query == 0 {
            return Err(WorkloadConfigError::ZeroPeriod("t_query"));
        }
        if self.phase == 0 {
            return Err(WorkloadConfigError::ZeroPeriod("phase"));
        }
        if self.warmup >= self.horizon {
            return Err(WorkloadConfigError::WarmupBeyondHorizon {
                warmup: self.warmup,
                horizon: self.horizon,
            });
        }
        if self.window < 2 || !self.window.is_power_of_two() {
            return Err(WorkloadConfigError::WindowNotPowerOfTwo(self.window));
        }
        if !self.delta.is_finite() || self.delta < 0.0 {
            return Err(WorkloadConfigError::BadDelta(self.delta));
        }
        Ok(())
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Messages after warm-up — the paper's cost measure.
    pub ledger: MessageLedger,
    /// Messages during warm-up (reported separately).
    pub warmup_ledger: MessageLedger,
    /// Workload metrics: `queries`, `local_hits`, `data_arrivals`, ….
    pub metrics: Metrics,
    /// Approximations cached across all sites at the end (§5.1 space).
    pub approximations: usize,
    /// Scheme name.
    pub scheme: &'static str,
    /// Order-sensitive FNV-1a digest of every measured query outcome
    /// `(tick, client, value bits, answering node, local hit)` — two runs
    /// answered bit-identically iff their digests match.
    pub answers_digest: u64,
}

/// FNV-1a offset basis for [`RunOutput::answers_digest`].
pub(crate) const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one 64-bit word into an FNV-1a digest, byte by byte.
pub(crate) fn digest_word(h: u64, word: u64) -> u64 {
    word.to_le_bytes().iter().fold(h, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Fold one measured query outcome into the digest.
pub(crate) fn digest_outcome(
    h: u64,
    issued: u64,
    client: usize,
    value: f64,
    answered_at: usize,
    local_hit: bool,
) -> u64 {
    let h = digest_word(h, issued);
    let h = digest_word(h, client as u64);
    let h = digest_word(h, value.to_bits());
    let h = digest_word(h, answered_at as u64);
    digest_word(h, local_hit as u64)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Data,
    Query { client: usize },
    PhaseEnd,
}

/// Instantiate a scheme by kind.
pub fn make_scheme(
    kind: SchemeKind,
    topo: &Topology,
    cfg: &WorkloadConfig,
) -> Box<dyn ReplicationScheme> {
    match kind {
        SchemeKind::SwatAsr => Box::new(SwatAsr::new(topo.clone(), cfg.window)),
        SchemeKind::DivergenceCaching => Box::new(DivergenceCaching::new(
            topo.clone(),
            cfg.window,
            cfg.value_span,
            cfg.control_weight,
        )),
        SchemeKind::AdaptivePrecision => Box::new(AdaptivePrecision::new(topo.clone(), cfg.window)),
    }
}

/// Run `kind` over `topo` with stream `values` (cycled if shorter than
/// the horizon needs) under `cfg`.
///
/// # Panics
///
/// Panics if `values` is empty or the topology has no clients.
pub fn run(kind: SchemeKind, topo: &Topology, values: &[f64], cfg: &WorkloadConfig) -> RunOutput {
    // Validate before constructing the scheme: schemes assert their own
    // invariants (e.g. dyadic windows) with less helpful messages.
    if let Err(e) = cfg.validate() {
        panic!("invalid workload config: {e}");
    }
    let mut scheme = make_scheme(kind, topo, cfg);
    run_scheme(scheme.as_mut(), topo, values, cfg)
}

/// Run an already-constructed scheme (useful for ablations).
///
/// # Panics
///
/// Panics if `values` is empty, the topology has no clients, or the
/// configuration fails [`WorkloadConfig::validate`].
pub fn run_scheme(
    scheme: &mut dyn ReplicationScheme,
    topo: &Topology,
    values: &[f64],
    cfg: &WorkloadConfig,
) -> RunOutput {
    assert!(!values.is_empty(), "need stream data");
    assert!(topo.client_count() > 0, "need at least one client");
    if let Err(e) = cfg.validate() {
        panic!("invalid workload config: {e}");
    }

    let mut sched: Scheduler<Event> = Scheduler::new();
    let mut data_task = Periodic::starting_at(0, cfg.t_data);
    sched
        .try_schedule(data_task.next_fire(), Event::Data)
        .expect("initial schedule is never in the past");
    let mut query_tasks: Vec<Periodic> = topo
        .clients()
        .map(|c| Periodic::starting_at(1 + (c.index() as u64 % cfg.t_query), cfg.t_query))
        .collect();
    for (i, c) in topo.clients().enumerate() {
        sched
            .try_schedule(
                query_tasks[i].next_fire(),
                Event::Query { client: c.index() },
            )
            .expect("initial schedule is never in the past");
    }
    let mut phase_task = Periodic::starting_at(cfg.phase, cfg.phase);
    sched
        .try_schedule(phase_task.next_fire(), Event::PhaseEnd)
        .expect("initial schedule is never in the past");

    let mut generators: Vec<QueryGenerator> = topo
        .clients()
        .map(|c| QueryGenerator::new(cfg.seed, c.index(), cfg.window, cfg.delta, cfg.shape))
        .collect();
    // One long-lived query per client, refilled in place each draw —
    // identical draw sequence to allocating a fresh query per event.
    let mut queries: Vec<swat_tree::InnerProductQuery> = topo
        .clients()
        .map(|_| swat_tree::InnerProductQuery::point(0, cfg.delta))
        .collect();

    let mut warmup_ledger = MessageLedger::new();
    let mut ledger = MessageLedger::new();
    let mut metrics = Metrics::new();
    let mut data_idx = 0usize;
    let mut digest = DIGEST_SEED;

    while let Some(at) = sched.peek_time() {
        if at >= cfg.horizon {
            break;
        }
        let (now, event) = sched.next().expect("peeked");
        let measuring = now >= cfg.warmup;
        let target = if measuring {
            &mut ledger
        } else {
            &mut warmup_ledger
        };
        match event {
            Event::Data => {
                let v = values[data_idx % values.len()];
                data_idx += 1;
                scheme.on_data(now, v, target);
                if measuring {
                    metrics.incr("data_arrivals");
                }
                sched
                    .try_schedule(data_task.advance(), Event::Data)
                    .expect("periodic advance is monotone");
            }
            Event::Query { client } => {
                let gen_idx = client - 1;
                generators[gen_idx].next_query_into(&mut queries[gen_idx]);
                let out = scheme.on_query(now, swat_net::NodeId(client), &queries[gen_idx], target);
                if measuring {
                    metrics.incr("queries");
                    if out.local_hit {
                        metrics.incr("local_hits");
                    }
                    metrics.record("answer_depth", topo.depth(out.answered_at) as f64);
                    digest = digest_outcome(
                        digest,
                        now,
                        client,
                        out.value,
                        out.answered_at.index(),
                        out.local_hit,
                    );
                }
                sched
                    .try_schedule(query_tasks[gen_idx].advance(), Event::Query { client })
                    .expect("periodic advance is monotone");
            }
            Event::PhaseEnd => {
                scheme.on_phase_end(now, target);
                if measuring {
                    metrics.incr("phases");
                }
                sched
                    .try_schedule(phase_task.advance(), Event::PhaseEnd)
                    .expect("periodic advance is monotone");
            }
        }
    }

    let approximations = scheme.approximation_count();
    metrics.record("approximations", approximations as f64);
    RunOutput {
        ledger,
        warmup_ledger,
        metrics,
        approximations,
        scheme: scheme.name(),
        answers_digest: digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather(n: usize) -> Vec<f64> {
        swat_data::weather_series(5, n)
    }

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            window: 16,
            horizon: 600,
            warmup: 150,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let topo = Topology::complete_binary(2);
        let data = weather(700);
        let cfg = small_cfg();
        let a = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let b = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.approximations, b.approximations);
        assert_eq!(a.metrics.counter("queries"), b.metrics.counter("queries"));
        assert_eq!(a.answers_digest, b.answers_digest);
    }

    #[test]
    fn answer_digest_distinguishes_workloads() {
        let topo = Topology::single_client();
        let data = weather(700);
        let a = run(SchemeKind::SwatAsr, &topo, &data, &small_cfg());
        let b = run(
            SchemeKind::SwatAsr,
            &topo,
            &data,
            &WorkloadConfig {
                seed: 43,
                ..small_cfg()
            },
        );
        assert_ne!(a.answers_digest, b.answers_digest);
    }

    #[test]
    fn config_validation_catches_each_field() {
        assert!(WorkloadConfig::default().validate().is_ok());
        let base = WorkloadConfig::default();
        let cases = [
            (
                WorkloadConfig { t_data: 0, ..base },
                WorkloadConfigError::ZeroPeriod("t_data"),
            ),
            (
                WorkloadConfig { t_query: 0, ..base },
                WorkloadConfigError::ZeroPeriod("t_query"),
            ),
            (
                WorkloadConfig { phase: 0, ..base },
                WorkloadConfigError::ZeroPeriod("phase"),
            ),
            (
                WorkloadConfig {
                    warmup: 500,
                    horizon: 500,
                    ..base
                },
                WorkloadConfigError::WarmupBeyondHorizon {
                    warmup: 500,
                    horizon: 500,
                },
            ),
            (
                WorkloadConfig { window: 24, ..base },
                WorkloadConfigError::WindowNotPowerOfTwo(24),
            ),
            (
                WorkloadConfig { window: 1, ..base },
                WorkloadConfigError::WindowNotPowerOfTwo(1),
            ),
            (
                WorkloadConfig {
                    delta: -1.0,
                    ..base
                },
                WorkloadConfigError::BadDelta(-1.0),
            ),
            (
                WorkloadConfig {
                    delta: f64::INFINITY,
                    ..base
                },
                WorkloadConfigError::BadDelta(f64::INFINITY),
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want));
            assert!(!want.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload config")]
    fn run_rejects_invalid_config() {
        let cfg = WorkloadConfig {
            window: 24,
            ..WorkloadConfig::default()
        };
        run(
            SchemeKind::SwatAsr,
            &Topology::single_client(),
            &[1.0],
            &cfg,
        );
    }

    #[test]
    fn all_schemes_complete_and_count_messages() {
        let topo = Topology::single_client();
        let data = weather(700);
        let cfg = small_cfg();
        for kind in SchemeKind::ALL {
            let out = run(kind, &topo, &data, &cfg);
            assert!(out.metrics.counter("queries") > 0, "{}", out.scheme);
            assert!(
                out.ledger.total() > 0,
                "{} produced no messages at all",
                out.scheme
            );
        }
    }

    #[test]
    fn asr_space_is_logarithmic_vs_linear_baselines() {
        let topo = Topology::complete_binary(2);
        let data = weather(1500);
        // Read-heavy so both schemes actually cache (DC adaptively stops
        // caching altogether under write-heavy loads).
        let cfg = WorkloadConfig {
            window: 64,
            t_data: 8,
            horizon: 1200,
            warmup: 300,
            delta: 30.0,
            ..WorkloadConfig::default()
        };
        let asr = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let dc = run(SchemeKind::DivergenceCaching, &topo, &data, &cfg);
        // SWAT-ASR: at most (clients + 1) * log2(64) = 7 * 6 = 42 ranges.
        assert!(
            asr.approximations <= (topo.len()) * 6,
            "ASR approximations {} exceed O(M log N)",
            asr.approximations
        );
        // DC caches per item; with loose-ish precision and heavy reads it
        // holds far more.
        assert!(
            dc.approximations > asr.approximations,
            "DC {} should exceed ASR {}",
            dc.approximations,
            asr.approximations
        );
    }

    #[test]
    fn read_heavy_workload_favors_asr_messages() {
        // T_d >> T_q: caching pays off; ASR's segment-granular caching
        // should use fewer messages than the per-item baselines — the
        // regime of Figure 9(a) left side.
        let topo = Topology::single_client();
        let data = weather(3000);
        let cfg = WorkloadConfig {
            window: 32,
            t_data: 8,
            t_query: 1,
            delta: 20.0,
            horizon: 2500,
            warmup: 500,
            ..WorkloadConfig::default()
        };
        let asr = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let dc = run(SchemeKind::DivergenceCaching, &topo, &data, &cfg);
        let aps = run(SchemeKind::AdaptivePrecision, &topo, &data, &cfg);
        assert!(
            asr.ledger.total() < dc.ledger.total(),
            "ASR {} !< DC {}",
            asr.ledger.total(),
            dc.ledger.total()
        );
        assert!(
            asr.ledger.total() < aps.ledger.total(),
            "ASR {} !< APS {}",
            asr.ledger.total(),
            aps.ledger.total()
        );
    }

    #[test]
    fn queries_get_answered_with_high_hit_rate_once_cached() {
        let topo = Topology::single_client();
        let data = weather(3000);
        let cfg = WorkloadConfig {
            window: 32,
            t_data: 8,
            t_query: 1,
            delta: 50.0,
            horizon: 2500,
            warmup: 500,
            ..WorkloadConfig::default()
        };
        let out = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let hits = out.metrics.counter("local_hits") as f64;
        let queries = out.metrics.counter("queries") as f64;
        assert!(
            hits / queries > 0.5,
            "hit rate {:.2} too low for a read-heavy smooth workload",
            hits / queries
        );
    }
}
