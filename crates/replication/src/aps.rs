//! Adaptive Precision Setting (Olston, Loo & Widom, SIGMOD'01) — §4.2.
//!
//! One cached interval `[L, H]` per *(client, window item)* pair, with the
//! paper's recommended settings `α = 1, τ∞ = ∞, τ0 = 2, p = 1`:
//!
//! * **Value-initiated refresh**: when a write moves the item's value
//!   outside `[L, H]`, the server sends a new interval centered at the
//!   new value, *enlarged*: `W' = W·(1+α)` (one data message per edge).
//! * **Query-initiated refresh**: when a read's precision requirement
//!   `δ < W`, the query goes to the server (one message per edge up),
//!   which replies with a *shrunk* interval `W' = W/(1+α)` — further
//!   capped at the read's requirement so the read is satisfied — centered
//!   at the current value (one message per edge down). If `W' < τ0` the
//!   interval collapses to the exact value.
//!
//! Implementation note: growing from the exact state (`W = 0`) would be
//! stuck at zero under a bare `W·(1+α)`; we grow from `max(W, τ0/2)` so a
//! value-initiated refresh escapes exact caching, matching the intent of
//! the original algorithm's bounded adaptivity.

use crate::scheme::{per_item_tolerance, QueryOutcome, ReplicationScheme};
use swat_net::{MessageLedger, MsgKind, NodeId, Topology};
use swat_tree::{ExactWindow, InnerProductQuery, ValueRange};

/// The adaptivity parameter α (the paper uses 1).
pub const ALPHA: f64 = 1.0;
/// Width floor τ0 below which caching becomes exact (the paper uses 2).
pub const TAU_0: f64 = 2.0;

/// Per-(client, item) cached interval.
#[derive(Debug, Clone, Copy, Default)]
struct ItemState {
    interval: Option<ValueRange>,
}

/// Adaptive Precision Setting over a topology: per-item caching for every
/// client against the source (intermediate tree nodes relay).
#[derive(Debug)]
pub struct AdaptivePrecision {
    topo: Topology,
    window: ExactWindow,
    /// `items[client - 1][item]`.
    items: Vec<Vec<ItemState>>,
    depths: Vec<usize>,
}

impl AdaptivePrecision {
    /// A fresh scheme over `topo` with a window of `window` items.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(topo: Topology, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        let items = topo
            .clients()
            .map(|_| vec![ItemState::default(); window])
            .collect();
        let depths = topo.nodes().map(|v| topo.depth(v)).collect();
        AdaptivePrecision {
            topo,
            window: ExactWindow::new(window),
            items,
            depths,
        }
    }

    /// Client-side cached interval for `(client, item)`, if any.
    pub fn cached_interval(&self, client: NodeId, item: usize) -> Option<ValueRange> {
        self.items[client.index() - 1][item].interval
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn interval_of(value: f64, width: f64) -> ValueRange {
        if width < TAU_0 {
            ValueRange::point(value) // exact caching
        } else {
            ValueRange::new(value - width * 0.5, value + width * 0.5)
        }
    }
}

impl ReplicationScheme for AdaptivePrecision {
    fn on_data(&mut self, _now: u64, value: f64, ledger: &mut MessageLedger) {
        self.window.push(value);
        let filled = self.window.len();
        for client in self.topo.clients() {
            let hops = self.depths[client.index()];
            for item in 0..filled {
                let truth = self.window.get(item).expect("within filled range");
                let st = &mut self.items[client.index() - 1][item];
                let Some(interval) = st.interval else {
                    continue;
                };
                if !interval.contains(truth) {
                    // Value-initiated refresh: enlarge (W' = W·(1+α)),
                    // escaping exact caching via the τ0/2 growth floor.
                    let width = interval.width().max(TAU_0 * 0.5) * (1.0 + ALPHA);
                    st.interval = Some(Self::interval_of(truth, width));
                    ledger.charge_hops(MsgKind::Update, hops);
                }
            }
        }
    }

    fn on_query(
        &mut self,
        _now: u64,
        client: NodeId,
        query: &InnerProductQuery,
        ledger: &mut MessageLedger,
    ) -> QueryOutcome {
        let hops = self.depths[client.index()];
        let mut value = 0.0;
        let mut all_local = true;
        for (pos, &item) in query.indices().iter().enumerate() {
            let tol = per_item_tolerance(query, pos);
            let truth = self.window.get(item).unwrap_or(0.0);
            let st = &mut self.items[client.index() - 1][item];
            if let Some(interval) = st.interval {
                if interval.width() <= tol {
                    value += query.weights()[pos] * interval.midpoint();
                    continue;
                }
            }
            // Query-initiated refresh: shrink toward (and below) the
            // requested precision.
            all_local = false;
            ledger.charge_hops(MsgKind::QueryForward, hops);
            ledger.charge_hops(MsgKind::Answer, hops);
            let width = match st.interval {
                Some(iv) => (iv.width() / (1.0 + ALPHA)).min(tol),
                None => tol,
            };
            st.interval = Some(Self::interval_of(truth, width));
            value += query.weights()[pos] * truth;
        }
        QueryOutcome {
            answered_at: if all_local { client } else { NodeId::SOURCE },
            value,
            local_hit: all_local,
        }
    }

    fn on_phase_end(&mut self, _now: u64, _ledger: &mut MessageLedger) {
        // APS has no phase structure.
    }

    fn approximation_count(&self) -> usize {
        self.items
            .iter()
            .flat_map(|per_client| per_client.iter())
            .filter(|st| st.interval.is_some())
            .count()
    }

    fn name(&self) -> &'static str {
        "APS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(window: usize) -> AdaptivePrecision {
        AdaptivePrecision::new(Topology::single_client(), window)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut aps = scheme(8);
        let mut ledger = MessageLedger::new();
        for t in 0..16 {
            aps.on_data(t, 50.0, &mut ledger);
        }
        let q = InnerProductQuery::linear(2, 40.0);
        let out = aps.on_query(16, NodeId(1), &q, &mut ledger);
        assert!(!out.local_hit);
        let cost = ledger.total();
        let out = aps.on_query(17, NodeId(1), &q, &mut ledger);
        assert!(out.local_hit, "installed intervals satisfy the same query");
        assert_eq!(ledger.total(), cost);
    }

    #[test]
    fn intervals_widen_on_escaping_writes() {
        let mut aps = scheme(4);
        let mut ledger = MessageLedger::new();
        for t in 0..8 {
            aps.on_data(t, 50.0, &mut ledger);
        }
        let q = InnerProductQuery::linear(2, 20.0);
        aps.on_query(8, NodeId(1), &q, &mut ledger);
        let w_before = aps.cached_interval(NodeId(1), 0).unwrap().width();
        // A jump outside the interval triggers a value-initiated refresh
        // with a wider interval.
        aps.on_data(9, 90.0, &mut ledger);
        let w_after = aps.cached_interval(NodeId(1), 0).unwrap().width();
        assert!(
            w_after > w_before,
            "width must grow: {w_before} -> {w_after}"
        );
        assert!(ledger.count(MsgKind::Update) > 0);
    }

    #[test]
    fn intervals_shrink_on_query_refresh() {
        let mut aps = scheme(4);
        let mut ledger = MessageLedger::new();
        for t in 0..8 {
            aps.on_data(t, 50.0, &mut ledger);
        }
        // Loose query installs a wide interval.
        let loose = InnerProductQuery::linear(2, 200.0);
        aps.on_query(8, NodeId(1), &loose, &mut ledger);
        let w_wide = aps.cached_interval(NodeId(1), 0).unwrap().width();
        // Tight query forces a shrink.
        let tight = InnerProductQuery::linear(2, 8.0);
        aps.on_query(9, NodeId(1), &tight, &mut ledger);
        let w_narrow = aps.cached_interval(NodeId(1), 0).unwrap().width();
        assert!(w_narrow < w_wide, "{w_narrow} !< {w_wide}");
    }

    #[test]
    fn tau0_floor_gives_exact_caching() {
        let mut aps = scheme(4);
        let mut ledger = MessageLedger::new();
        for t in 0..8 {
            aps.on_data(t, 50.0, &mut ledger);
        }
        // Demand a width below τ0 = 2: the interval collapses to exact.
        let q = InnerProductQuery::new(vec![0], vec![1.0], 0.5).unwrap();
        aps.on_query(8, NodeId(1), &q, &mut ledger);
        let iv = aps.cached_interval(NodeId(1), 0).unwrap();
        assert_eq!(iv.width(), 0.0);
        assert_eq!(iv.midpoint(), 50.0);
        // And escapes exactness on the next differing write.
        aps.on_data(9, 51.0, &mut ledger);
        let iv = aps.cached_interval(NodeId(1), 0).unwrap();
        assert!(iv.width() >= TAU_0 - 1e-12, "grew to {}", iv.width());
    }

    #[test]
    fn no_traffic_without_caching() {
        let mut aps = scheme(4);
        let mut ledger = MessageLedger::new();
        for t in 0..100 {
            aps.on_data(t, (t % 71) as f64, &mut ledger);
        }
        assert_eq!(ledger.total(), 0, "uncached items cost nothing on writes");
        assert_eq!(aps.approximation_count(), 0);
    }
}
