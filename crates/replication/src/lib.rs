//! Adaptive replication of stream summaries in large networks.
//!
//! The second half of the SWAT paper (§3–§5): a central source site `S`
//! summarizes a data stream; clients across a spanning-tree network issue
//! inner-product queries with precision requirements; cached
//! approximations — ranges `[d_L, d_H]` — are replicated adaptively so
//! that the total number of inter-site messages is minimized.
//!
//! Three schemes are implemented behind one trait ([`ReplicationScheme`]):
//!
//! * [`asr::SwatAsr`] — the paper's contribution, **SWAT-ASR**: the window
//!   is partitioned into `O(log N)` dyadic *segments* (Table 1); each
//!   segment independently runs an ADR-style replication scheme (Wolfson,
//!   Jajodia & Huang) with *expansion* and *contraction* tests at the end
//!   of every phase, and updates are suppressed whenever the old cached
//!   range encloses the new one (Figure 8).
//! * [`divergence::DivergenceCaching`] — Huang, Sloan & Wolfson's
//!   divergence caching adapted to precision tolerances exactly as the
//!   paper's §4.1 prescribes: per-item cached intervals whose width (the
//!   "refresh rate") is chosen to minimize an expected message cost
//!   derived from windowed read/write rate estimates (window = 23 events).
//! * [`aps::AdaptivePrecision`] — Olston, Loo & Widom's adaptive precision
//!   setting with the paper's settings (α = 1, τ∞ = ∞, τ0 = 2, p = 1):
//!   value-initiated refreshes grow per-item intervals, query-initiated
//!   refreshes shrink them.
//!
//! The deterministic simulation driver lives in [`harness`]; the shared
//! query workload in [`workload`]. Message accounting charges **one unit
//! per tree edge traversed** for every scheme (see
//! `swat_net::MessageLedger`); DC's control messages carry its weight
//! `w`.
//!
//! The fault-aware driver lives in [`chaos`]: it runs SWAT-ASR with every
//! message adjudicated by a `swat_net::FaultPlan` (drops, delays,
//! crashes), acks + bounded retries for replication traffic, and
//! staleness-based graceful degradation — under `FaultPlan::none()` it is
//! bit-identical to [`harness::run`]. Crash durability is modeled through
//! [`durable`]: the state that survives a crash round-trips through the
//! `swat-store` checksummed image codec, and
//! [`Durability::Checkpointed`] lets nodes restore replicas from local
//! durable state instead of re-fetching them over the network.
//!
//! Self-healing is opt-in via [`HealPolicy`]: heartbeat-based failure
//! detection, spanning-tree repair on a `swat_net::DynamicTopology`
//! (orphans adopt their nearest live ancestor), and write-id duplicate
//! suppression that keeps replication exactly-once across retries and
//! repaired edges. Detection arms only when the plan can crash nodes, so
//! crash-free healing runs stay bit-identical to static ones.
//!
//! ```
//! use swat_net::Topology;
//! use swat_replication::harness::{run, WorkloadConfig};
//! use swat_replication::SchemeKind;
//!
//! let cfg = WorkloadConfig {
//!     window: 32,
//!     t_data: 2,
//!     t_query: 1,
//!     delta: 50.0,
//!     horizon: 400,
//!     warmup: 100,
//!     seed: 7,
//!     phase: 10,
//!     ..WorkloadConfig::default()
//! };
//! let values: Vec<f64> = (0..500).map(|i| (i % 40) as f64).collect();
//! let out = run(SchemeKind::SwatAsr, &Topology::single_client(), &values, &cfg);
//! assert!(out.ledger.total() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod aps;
pub mod asr;
pub mod chaos;
pub mod divergence;
pub mod durable;
pub mod harness;
pub mod scheme;
pub mod segments;
pub mod workload;

pub use approx::{CoeffApprox, RangeApprox, SegmentApprox};
pub use chaos::{run_chaos, ChaosError, ChaosOptions, ChaosOutput, HealPolicy, RetryPolicy};
pub use durable::Durability;
pub use harness::WorkloadConfigError;
pub use scheme::{QueryOutcome, ReplicationScheme, SchemeKind};
pub use segments::Segment;
