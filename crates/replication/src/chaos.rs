//! Fault-aware SWAT-ASR: the replication protocol of §3 run over an
//! adjudicated network instead of an ideal one.
//!
//! The synchronous driver in [`crate::harness`] mutates receiver state
//! the instant a message is charged. Here every message instead passes
//! through a [`swat_net::Link`], which rules it delivered-at-tick,
//! dropped, or endpoint-down ([`swat_net::FaultPlan`]); delayed
//! deliveries become future [`swat_sim::Scheduler`] events. On top of
//! that transport the driver runs the robustness protocol the paper's
//! ideal network never needed:
//!
//! * **Acks + bounded retry.** When the plan can lose messages, every
//!   `Insert`/`Update` is acknowledged (a `Control` message) and
//!   unacknowledged sends are retried with exponential backoff up to a
//!   cap, after which the sender unsubscribes the unreachable child.
//!   Plans that only *delay* run ack-free — nothing can be lost, so the
//!   protocol (and its ledger) stays exactly the synchronous one.
//! * **Epochs + staleness.** The source stamps each segment write with a
//!   sequence number; replicas record the epoch they adopted. The moment
//!   a write makes a held approximation unsound (it no longer
//!   [`SegmentApprox::suppresses`] the new truth), that replica is marked
//!   *stale* and stops answering — in a deployment it learns this from
//!   the epoch gap on its next heartbeat/lease; the simulation applies
//!   the mark at write time so the soundness invariant is exact, not
//!   eventually-consistent. Queries over stale rows forward toward the
//!   source: degradation costs messages, never correctness. Freshness
//!   returns when a delivery's adopted approximation soundly stands in
//!   for the source's current one.
//! * **Crash windows.** A crashing node loses its cached approximations
//!   (directory metadata is modeled durable); while down it neither
//!   sends nor receives, and its periodic queries go unanswered. It
//!   self-heals after recovery through re-delivered updates and phase
//!   expansion.
//! * **Self-healing** (opt-in via [`ChaosOptions::heal`]). The static
//!   tree silently partitions a crashed interior node's subtree. With a
//!   [`HealPolicy`] set, every client pings its parent on a periodic
//!   heartbeat task; after `miss_threshold` unanswered periods the
//!   parent is suspect and the child re-parents to its nearest live
//!   ancestor on the [`swat_net::DynamicTopology`] (grandparent
//!   fallback, walking the path to the source — cycles impossible by
//!   construction), then asks the adopter to take over its segment
//!   subscriptions. A recovered node rejoins where it stands (typically
//!   as a leaf, its orphans having re-parented away) and re-syncs its
//!   segment directory against the current tree. All heartbeat/probe
//!   traffic is charged to the ledger under [`MsgKind::Heartbeat`], so
//!   the robustness cost is measurable; every repair is a typed
//!   [`RepairEvent`] in [`ChaosOutput::repairs`]. Re-parenting plus
//!   retries can deliver one replication message twice along different
//!   paths, so each carries a write id and receivers deduplicate
//!   per-(segment, epoch, write id) — application is idempotent.
//!   Failure detection only arms when the plan actually crashes nodes;
//!   under [`FaultPlan::none`] a healing run keeps the original static
//!   tree — and the synchronous ledger — bit-identically.
//!
//! Under [`FaultPlan::none`] zero-delay deliveries execute inline in the
//! originating event — the same call structure as the synchronous path —
//! so [`run_chaos`] is **bit-identical** to [`crate::harness::run`]:
//! same ledgers, same metrics, same [`RunOutput::answers_digest`]. The
//! property tests in `tests/chaos_properties.rs` and
//! `tests/repair_properties.rs` enforce this, the zero-correctness-loss
//! guarantees under arbitrary fault plans, and the healing guarantees.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::approx::{RangeApprox, SegmentApprox};
use crate::asr::SwatAsr;
use crate::durable::{self, Durability};
use crate::harness::{
    digest_outcome, run, RunOutput, WorkloadConfig, WorkloadConfigError, DIGEST_SEED,
};
use crate::scheme::{ReplicationScheme, SchemeKind};
use crate::workload::QueryGenerator;
use swat_net::{
    Delivery, DynamicTopology, FaultPlan, Link, MessageLedger, MsgKind, NodeId, RepairEvent,
    Topology,
};
use swat_sim::{Metrics, PastTickError, Periodic, Scheduler};
use swat_tree::InnerProductQuery;

/// Retry protocol for replication (`Insert`/`Update`) messages when the
/// fault plan can lose them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial send before the child is written off.
    pub max_retries: u32,
    /// Ticks before the first retry; attempt `n` waits
    /// `timeout * 2^min(n, MAX_DOUBLINGS)`.
    pub timeout: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            timeout: 3,
        }
    }
}

impl RetryPolicy {
    /// Exponential backoff stops doubling after this many attempts, so
    /// the delay is bounded by `timeout * 2^MAX_DOUBLINGS` for any
    /// attempt count.
    pub const MAX_DOUBLINGS: u32 = 6;

    /// Backoff delay before retry number `attempt` (1-based): monotone
    /// nondecreasing in `attempt`, capped at
    /// `timeout * 2^`[`RetryPolicy::MAX_DOUBLINGS`], and saturating
    /// (never wraps) for any `timeout`/`attempt` combination.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let factor = 1u64
            .checked_shl(attempt.min(Self::MAX_DOUBLINGS))
            .unwrap_or(u64::MAX);
        self.timeout.saturating_mul(factor)
    }
}

/// Failure detection and tree repair parameters
/// ([`ChaosOptions::heal`]).
///
/// Detection only arms when the fault plan actually crashes nodes: a
/// healing run under a crash-free plan is bit-identical to the static
/// one (no heartbeat traffic, no repairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealPolicy {
    /// Ticks between heartbeat pings from each client to its parent.
    pub period: u64,
    /// Consecutive unanswered heartbeat periods before the parent is
    /// declared suspect and the client re-parents.
    pub miss_threshold: u32,
}

impl Default for HealPolicy {
    fn default() -> Self {
        HealPolicy {
            period: 5,
            miss_threshold: 3,
        }
    }
}

/// Options of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// The fault plan to adjudicate every message against.
    pub plan: FaultPlan,
    /// Ack/retry protocol parameters (active only when the plan can lose
    /// messages).
    pub retry: RetryPolicy,
    /// Verify the soundness invariants after every event and the `δ`
    /// bound at every answer, collecting violations (costs an exact
    /// sweep per event; meant for tests).
    pub check_invariants: bool,
    /// What survives a node crash. [`Durability::Directory`] (the
    /// default) reproduces the original chaos model bit-for-bit;
    /// [`Durability::Checkpointed`] models nodes running the `swat-store`
    /// durability layer, which restore their replicas locally instead of
    /// re-fetching them — measured as recovery messages saved.
    pub durability: Durability,
    /// Self-healing: heartbeat failure detection plus dynamic-tree
    /// repair. `None` (the default) keeps the static tree — crashed
    /// interior nodes partition their subtree, as in the original
    /// model.
    pub heal: Option<HealPolicy>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            check_invariants: false,
            durability: Durability::default(),
            heal: None,
        }
    }
}

/// Errors from [`run_chaos`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The workload configuration is invalid.
    InvalidConfig(WorkloadConfigError),
    /// The stream is empty.
    NoData,
    /// The topology has no clients.
    NoClients,
    /// The plan names a node the topology does not have.
    PlanOutOfRange {
        /// Largest node index the plan references.
        node: usize,
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// Only SWAT-ASR implements the fault-aware protocol; the per-item
    /// baselines run through [`run_chaos`] only under an ideal plan.
    UnsupportedScheme(&'static str),
    /// The healing policy is malformed (zero period or threshold).
    InvalidHealPolicy(&'static str),
    /// The driver asked the scheduler for a tick already in the past —
    /// a protocol bug surfaced as a typed error instead of a panic.
    PastTick(PastTickError),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::InvalidConfig(e) => write!(f, "invalid workload config: {e}"),
            ChaosError::NoData => write!(f, "need stream data"),
            ChaosError::NoClients => write!(f, "need at least one client"),
            ChaosError::PlanOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault plan names node {node}, topology has {nodes} nodes"
                )
            }
            ChaosError::UnsupportedScheme(s) => {
                write!(f, "{s} has no fault-aware protocol; use an ideal plan")
            }
            ChaosError::InvalidHealPolicy(why) => write!(f, "invalid heal policy: {why}"),
            ChaosError::PastTick(e) => write!(f, "driver scheduling bug: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<WorkloadConfigError> for ChaosError {
    fn from(e: WorkloadConfigError) -> Self {
        ChaosError::InvalidConfig(e)
    }
}

impl From<PastTickError> for ChaosError {
    fn from(e: PastTickError) -> Self {
        ChaosError::PastTick(e)
    }
}

/// Result of a chaos run: the standard harness output (directly
/// comparable with a fault-free [`run`]) plus transport metrics and any
/// invariant violations found.
#[derive(Debug, Clone)]
pub struct ChaosOutput {
    /// Ledgers, workload metrics, approximation count, answer digest —
    /// the same shape [`run`] reports.
    pub run: RunOutput,
    /// Transport metrics, whole-run (not warmup-split): per-kind
    /// `net.delivered.*` / `net.dropped.*` / `net.down.*` /
    /// `net.retried.*` counters, `net.latency.*` statistics,
    /// `net.queries_answered`, `net.queries_lost`, `net.queries_down`,
    /// `net.retry_exhausted`, `net.crashes`, and (with
    /// `check_invariants`) the `net.answer_abs_err` statistic.
    pub net: Metrics,
    /// Soundness/precision violations found by `check_invariants`
    /// (always empty unless the driver is buggy — asserted by tests).
    pub violations: Vec<String>,
    /// Every tree repair the self-healing layer performed, in order —
    /// re-parentings and post-crash rejoins. Empty without
    /// [`ChaosOptions::heal`] (or when nothing crashed).
    pub repairs: Vec<RepairEvent>,
}

impl ChaosOutput {
    /// Measured queries that got an answer, over measured queries issued.
    pub fn answer_rate(&self) -> f64 {
        let q = self.run.metrics.counter("queries");
        if q == 0 {
            return 1.0;
        }
        self.net.counter("net.queries_answered") as f64 / q as f64
    }
}

/// Run `kind` over `topo` and stream `values` under `cfg`, with every
/// message adjudicated against `options.plan`.
///
/// SWAT-ASR runs the full fault-aware protocol. The per-item baselines
/// (DC, APS) charge their messages inside their own synchronous logic
/// and are accepted only under an ideal plan (where the adjudicated and
/// synchronous paths coincide); a faulty plan yields
/// [`ChaosError::UnsupportedScheme`].
///
/// # Errors
///
/// See [`ChaosError`].
pub fn run_chaos(
    kind: SchemeKind,
    topo: &Topology,
    values: &[f64],
    cfg: &WorkloadConfig,
    options: &ChaosOptions,
) -> Result<ChaosOutput, ChaosError> {
    cfg.validate()?;
    if values.is_empty() {
        return Err(ChaosError::NoData);
    }
    if topo.client_count() == 0 {
        return Err(ChaosError::NoClients);
    }
    if let Some(node) = options.plan.max_node() {
        if node >= topo.len() {
            return Err(ChaosError::PlanOutOfRange {
                node,
                nodes: topo.len(),
            });
        }
    }
    if let Some(heal) = &options.heal {
        if heal.period == 0 {
            return Err(ChaosError::InvalidHealPolicy(
                "heartbeat period must be positive",
            ));
        }
        if heal.miss_threshold == 0 {
            return Err(ChaosError::InvalidHealPolicy(
                "miss threshold must be positive",
            ));
        }
    }
    match kind {
        SchemeKind::SwatAsr => drive(topo, values, cfg, options),
        other if options.plan.is_ideal() => Ok(ChaosOutput {
            run: run(other, topo, values, cfg),
            net: Metrics::new(),
            violations: Vec::new(),
            repairs: Vec::new(),
        }),
        other => Err(ChaosError::UnsupportedScheme(other.name())),
    }
}

/// A message in flight on the tree.
#[derive(Debug, Clone)]
enum Msg<A> {
    /// An `Insert`/`Update`: adopt `approx` for `seg` at epoch `seq`.
    /// `install` distinguishes Insert (ledger kind, no write count);
    /// `repropagate` is false for phase-end refreshes, which the
    /// synchronous protocol does not cascade. `wid` identifies this
    /// logical write for duplicate suppression: a retry of the same
    /// payload reuses it, so receivers can apply per-(segment, epoch,
    /// write id) exactly once even if the message arrives twice along
    /// different paths.
    Replicate {
        from: NodeId,
        seg: usize,
        seq: u64,
        wid: u64,
        approx: A,
        install: bool,
        repropagate: bool,
    },
    /// Heartbeat ping from a child probing its parent's liveness.
    Ping { from: NodeId },
    /// Heartbeat response; `from` is the responding parent, so a late
    /// pong from a replaced parent is not misread as the new parent
    /// answering.
    Pong { from: NodeId },
    /// After a repair: `from` (re-parented onto the receiver) asks it
    /// to take over the subscription for `seg`.
    Resub { from: NodeId, seg: usize },
    /// Receipt acknowledgement of epoch `seq` for `seg` (fallible plans
    /// only).
    Ack { from: NodeId, seg: usize, seq: u64 },
    /// Contraction notice: `from` decached `seg`; drop it from the
    /// subscription list.
    Unsub { from: NodeId, seg: usize },
    /// A query climbing toward the source, hop by hop.
    QueryUp {
        origin: NodeId,
        from: NodeId,
        query: InnerProductQuery,
        issued: u64,
    },
    /// The answer descending the unique tree path back to the origin.
    AnswerDown {
        origin: NodeId,
        value: f64,
        answered_at: NodeId,
        issued: u64,
    },
}

/// Scheduler events: the harness periodics plus transport arrivals,
/// retry timers, and crash onsets.
#[derive(Debug)]
enum Ev<A> {
    Data,
    Query {
        client: usize,
    },
    PhaseEnd,
    Deliver {
        to: NodeId,
        msg: Msg<A>,
    },
    Retry {
        from: NodeId,
        to: NodeId,
        seg: usize,
        seq: u64,
    },
    Crash {
        node: NodeId,
    },
    /// Periodic heartbeat task of one client (healing only).
    Heartbeat {
        client: usize,
    },
    /// End of a crash window (healing only): the node rejoins and
    /// re-syncs its segment directory against the current tree.
    Recover {
        node: NodeId,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    wid: u64,
    attempt: u32,
    kind: MsgKind,
}

struct Driver<'a, A: SegmentApprox> {
    asr: SwatAsr<A>,
    topo: DynamicTopology,
    cfg: &'a WorkloadConfig,
    values: &'a [f64],
    link: Link,
    retry: RetryPolicy,
    /// Acks/retries run only when messages can actually be lost; under
    /// delay-only or ideal plans the protocol (and ledger) must match
    /// the synchronous one exactly.
    fallible: bool,
    /// Failure detection + tree repair; `Some` only when healing is
    /// requested AND the plan can crash nodes (otherwise there is
    /// nothing to detect and the run must stay bit-identical).
    heal: Option<HealPolicy>,
    /// Per-node consecutive unanswered heartbeat periods.
    hb_misses: Vec<u32>,
    /// Whether a pong arrived since the node's last ping.
    hb_pong: Vec<bool>,
    /// Unacked replication sends, keyed `(from, to, seg)`.
    pending: BTreeMap<(usize, usize, usize), Pending>,
    /// Write ids already applied, keyed `(node, seg)` — the
    /// duplicate-suppression set (tracked only on fallible plans, where
    /// duplicates are possible).
    applied: BTreeMap<(usize, usize), BTreeSet<u64>>,
    next_wid: u64,
    /// First scheduling failure, surfaced as [`ChaosError::PastTick`].
    sched_error: Option<PastTickError>,
    warmup_ledger: MessageLedger,
    ledger: MessageLedger,
    metrics: Metrics,
    net: Metrics,
    generators: Vec<QueryGenerator>,
    data_idx: usize,
    digest: u64,
    check: bool,
    durability: Durability,
    violations: Vec<String>,
}

type Sched<A> = Scheduler<Ev<A>>;

fn drive(
    topo: &Topology,
    values: &[f64],
    cfg: &WorkloadConfig,
    options: &ChaosOptions,
) -> Result<ChaosOutput, ChaosError> {
    // Failure detection only arms when something can actually crash;
    // otherwise a healing run must stay bit-identical to a static one,
    // so no heartbeat tasks may exist at all.
    let heal = options.heal.filter(|_| !options.plan.crashes().is_empty());
    let mut d: Driver<'_, RangeApprox> = Driver {
        asr: SwatAsr::new(topo.clone(), cfg.window),
        topo: DynamicTopology::new(topo.clone()),
        cfg,
        values,
        link: Link::new(options.plan.clone()),
        retry: options.retry,
        fallible: options.plan.can_lose(),
        heal,
        hb_misses: vec![0; topo.len()],
        hb_pong: vec![true; topo.len()],
        pending: BTreeMap::new(),
        applied: BTreeMap::new(),
        next_wid: 0,
        sched_error: None,
        warmup_ledger: MessageLedger::new(),
        ledger: MessageLedger::new(),
        metrics: Metrics::new(),
        net: Metrics::new(),
        generators: topo
            .clients()
            .map(|c| QueryGenerator::new(cfg.seed, c.index(), cfg.window, cfg.delta, cfg.shape))
            .collect(),
        data_idx: 0,
        digest: DIGEST_SEED,
        check: options.check_invariants,
        durability: options.durability,
        violations: Vec::new(),
    };

    // Periodic tasks in the exact construction order of the synchronous
    // harness, so event sequence numbers (and thus same-tick ordering)
    // coincide under an ideal plan.
    let mut sched: Sched<RangeApprox> = Scheduler::new();
    let mut data_task = Periodic::starting_at(0, cfg.t_data);
    sched.try_schedule(data_task.next_fire(), Ev::Data)?;
    let mut query_tasks: Vec<Periodic> = topo
        .clients()
        .map(|c| Periodic::starting_at(1 + (c.index() as u64 % cfg.t_query), cfg.t_query))
        .collect();
    for (i, c) in topo.clients().enumerate() {
        sched.try_schedule(query_tasks[i].next_fire(), Ev::Query { client: c.index() })?;
    }
    let mut phase_task = Periodic::starting_at(cfg.phase, cfg.phase);
    sched.try_schedule(phase_task.next_fire(), Ev::PhaseEnd)?;
    for w in options.plan.crashes() {
        if w.from < cfg.horizon {
            sched.try_schedule(w.from, Ev::Crash { node: w.node })?;
        }
    }
    // Heartbeat tasks (staggered like query tasks) and recovery marks,
    // scheduled only when detection is armed.
    let mut hb_tasks: Vec<Periodic> = Vec::new();
    if let Some(hp) = heal {
        hb_tasks = topo
            .clients()
            .map(|c| Periodic::starting_at(hp.period + (c.index() as u64 % hp.period), hp.period))
            .collect();
        for (i, c) in topo.clients().enumerate() {
            sched.try_schedule(hb_tasks[i].next_fire(), Ev::Heartbeat { client: c.index() })?;
        }
        for w in options.plan.crashes() {
            if w.from < cfg.horizon && w.until < cfg.horizon {
                sched.try_schedule(w.until, Ev::Recover { node: w.node })?;
            }
        }
    }

    while let Some(at) = sched.peek_time() {
        if at >= cfg.horizon {
            break;
        }
        let (now, event) = sched.next().expect("peeked");
        match event {
            Ev::Data => {
                d.handle_data(&mut sched, now);
                sched.try_schedule(data_task.advance(), Ev::Data)?;
            }
            Ev::Query { client } => {
                d.handle_query(&mut sched, now, client);
                let gen_idx = client - 1;
                sched.try_schedule(query_tasks[gen_idx].advance(), Ev::Query { client })?;
            }
            Ev::PhaseEnd => {
                d.handle_phase_end(&mut sched, now);
                sched.try_schedule(phase_task.advance(), Ev::PhaseEnd)?;
            }
            Ev::Deliver { to, msg } => d.deliver(&mut sched, now, to, msg),
            Ev::Retry { from, to, seg, seq } => d.handle_retry(&mut sched, now, from, to, seg, seq),
            Ev::Crash { node } => d.handle_crash(node),
            Ev::Heartbeat { client } => {
                d.handle_heartbeat(&mut sched, now, client);
                sched.try_schedule(hb_tasks[client - 1].advance(), Ev::Heartbeat { client })?;
            }
            Ev::Recover { node } => d.handle_recover(now, node),
        }
        if let Some(e) = d.sched_error {
            return Err(ChaosError::PastTick(e));
        }
        if d.check {
            d.check_soundness(now);
        }
    }

    let approximations = d.asr.approximation_count();
    d.metrics.record("approximations", approximations as f64);
    Ok(ChaosOutput {
        run: RunOutput {
            ledger: d.ledger,
            warmup_ledger: d.warmup_ledger,
            metrics: d.metrics,
            approximations,
            scheme: d.asr.name(),
            answers_digest: d.digest,
        },
        net: d.net,
        violations: d.violations,
        repairs: d.topo.events().to_vec(),
    })
}

impl<A: SegmentApprox> Driver<'_, A> {
    fn measuring(&self, t: u64) -> bool {
        t >= self.cfg.warmup
    }

    fn ledger_mut(&mut self, t: u64) -> &mut MessageLedger {
        if t >= self.cfg.warmup {
            &mut self.ledger
        } else {
            &mut self.warmup_ledger
        }
    }

    /// The child of `node` on the unique tree path down to `origin`, or
    /// `None` when `node` is no longer an ancestor of `origin` — a
    /// repair can re-parent the origin's subtree away while an answer is
    /// in flight, leaving the answer holder off the return path.
    fn next_hop_down(&self, node: NodeId, origin: NodeId) -> Option<NodeId> {
        let mut cur = origin;
        while let Some(p) = self.topo.parent(cur) {
            if p == node {
                return Some(cur);
            }
            cur = p;
        }
        None
    }

    /// An answer stranded off the return path by a mid-flight repair:
    /// the query is lost (the healing layer restores routing, not
    /// in-flight payloads).
    fn note_misrouted_answer(&mut self) {
        self.net.incr("net.answer_misrouted");
        self.net.incr("net.queries_lost");
    }

    /// Charge one message of `kind` and submit it to the link. Zero-delay
    /// deliveries execute inline (the synchronous call structure);
    /// delayed ones become scheduler events.
    fn send(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        from: NodeId,
        to: NodeId,
        kind: MsgKind,
        msg: Msg<A>,
    ) {
        self.ledger_mut(now).charge(kind);
        match self.link.adjudicate(now, from, to) {
            Delivery::Delivered { at } => {
                self.net.incr(&format!("net.delivered.{}", kind.name()));
                self.net
                    .record(&format!("net.latency.{}", kind.name()), (at - now) as f64);
                if at == now {
                    self.deliver(sched, now, to, msg);
                } else {
                    sched
                        .try_schedule(at, Ev::Deliver { to, msg })
                        .expect("delivery tick is never in the past");
                }
            }
            Delivery::Dropped => {
                self.net.incr(&format!("net.dropped.{}", kind.name()));
                self.note_query_loss(&msg);
            }
            Delivery::EndpointDown => {
                self.net.incr(&format!("net.down.{}", kind.name()));
                self.note_query_loss(&msg);
            }
        }
    }

    /// A lost query or answer means one query will never complete.
    fn note_query_loss(&mut self, msg: &Msg<A>) {
        if matches!(msg, Msg::QueryUp { .. } | Msg::AnswerDown { .. }) {
            self.net.incr("net.queries_lost");
        }
    }

    /// Arm (or re-arm) a retry timer `delay` ticks out. The deadline
    /// saturates instead of wrapping (a `u64::MAX` timeout is legal and
    /// simply never fires inside the horizon), and a scheduler refusal —
    /// a driver bug, not a workload condition — is recorded once and
    /// surfaced as [`ChaosError::PastTick`] instead of panicking
    /// mid-run.
    #[allow(clippy::too_many_arguments)] // one flattened transport tuple
    fn arm_retry(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        delay: u64,
        from: NodeId,
        to: NodeId,
        seg: usize,
        seq: u64,
    ) {
        let deadline = now.saturating_add(delay);
        if let Err(e) = sched.try_schedule(deadline, Ev::Retry { from, to, seg, seq }) {
            self.sched_error.get_or_insert(e);
        }
    }

    /// Allocate a fresh write id: one per logical replication send, so
    /// receivers can tell a retry (same id) from a genuinely new write
    /// of the same epoch (different id).
    fn fresh_wid(&mut self) -> u64 {
        let wid = self.next_wid;
        self.next_wid += 1;
        wid
    }

    /// Send a replication message, arming the ack/retry protocol when
    /// the plan can lose it.
    #[allow(clippy::too_many_arguments)] // one flattened transport tuple
    fn send_replicate(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        from: NodeId,
        to: NodeId,
        seg: usize,
        seq: u64,
        approx: A,
        kind: MsgKind,
        repropagate: bool,
    ) {
        let wid = self.fresh_wid();
        if self.fallible {
            self.pending.insert(
                (from.index(), to.index(), seg),
                Pending {
                    seq,
                    wid,
                    attempt: 0,
                    kind,
                },
            );
            self.arm_retry(sched, now, self.retry.timeout, from, to, seg, seq);
        }
        let install = kind == MsgKind::Insert;
        self.send(
            sched,
            now,
            from,
            to,
            kind,
            Msg::Replicate {
                from,
                seg,
                seq,
                wid,
                approx,
                install,
                repropagate,
            },
        );
    }

    fn deliver(&mut self, sched: &mut Sched<A>, now: u64, to: NodeId, msg: Msg<A>) {
        // A node can crash between a message's send and its (delayed)
        // arrival; the link only rules on the send tick.
        if self.link.plan().is_down(to, now) {
            self.net.incr("net.arrived_down");
            self.note_query_loss(&msg);
            return;
        }
        match msg {
            Msg::Replicate {
                from,
                seg,
                seq,
                wid,
                approx,
                install,
                repropagate,
            } => self.deliver_replicate(
                sched,
                now,
                to,
                from,
                seg,
                seq,
                wid,
                approx,
                install,
                repropagate,
            ),
            Msg::Ping { from } => {
                // Answer with our own id: a late pong from a replaced
                // parent must not vouch for the new one.
                self.send(
                    sched,
                    now,
                    to,
                    from,
                    MsgKind::Heartbeat,
                    Msg::Pong { from: to },
                );
            }
            Msg::Pong { from } => {
                if self.topo.parent(to) == Some(from) {
                    self.hb_pong[to.index()] = true;
                }
            }
            Msg::Resub { from, seg } => self.handle_resub(sched, now, to, from, seg),
            Msg::Ack { from, seg, seq } => {
                let key = (to.index(), from.index(), seg);
                if let Some(p) = self.pending.get(&key) {
                    if seq >= p.seq {
                        self.pending.remove(&key);
                    }
                }
            }
            Msg::Unsub { from, seg } => {
                self.asr.row_mut(to, seg).subscribed.retain(|&v| v != from);
                self.pending.remove(&(to.index(), from.index(), seg));
            }
            Msg::QueryUp {
                origin,
                from,
                query,
                issued,
            } => self.query_at(sched, now, to, origin, Some(from), &query, issued),
            Msg::AnswerDown {
                origin,
                value,
                answered_at,
                issued,
            } => {
                if to == origin {
                    self.finish_query(issued, origin, answered_at, value, false);
                } else if let Some(next) = self.next_hop_down(to, origin) {
                    self.send(
                        sched,
                        now,
                        to,
                        next,
                        MsgKind::Answer,
                        Msg::AnswerDown {
                            origin,
                            value,
                            answered_at,
                            issued,
                        },
                    );
                } else {
                    self.note_misrouted_answer();
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // transport tuple, flattened once
    fn deliver_replicate(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        to: NodeId,
        from: NodeId,
        seg: usize,
        seq: u64,
        wid: u64,
        approx: A,
        install: bool,
        repropagate: bool,
    ) {
        if self.fallible {
            // Exactly-once application: a write id the receiver already
            // applied (the original arrived and a retry of it landed
            // later) is suppressed before it can double-count a write or
            // re-cascade down the subtree. Re-ack so the sender stops.
            let dup = self
                .applied
                .get(&(to.index(), seg))
                .is_some_and(|set| set.contains(&wid));
            if dup {
                self.net.incr("net.dup_suppressed");
                self.send_ack(sched, now, to, from, seg, seq);
                return;
            }
        }
        {
            let row = self.asr.row(to, seg);
            if row.approx.is_some() && seq < row.seq {
                // Stale duplicate (a retry that lost a race with a newer
                // epoch): the receiver is already ahead, just re-ack so
                // the sender stops retrying. Equal epochs are NOT
                // duplicates — a phase-end refresh re-sends the epoch the
                // child already holds and must still count as a write,
                // exactly as in the synchronous protocol.
                if self.fallible {
                    self.send_ack(sched, now, to, from, seg, seq);
                }
                return;
            }
        }
        let quiet = {
            let suppress = self.asr.suppression_enabled();
            let row = self.asr.row_mut(to, seg);
            let old = row.approx.take();
            let quiet = match &old {
                Some(o) if suppress => A::suppresses(o, &approx),
                Some(o) => *o == approx,
                None => false,
            };
            row.approx = Some(approx.clone());
            row.seq = seq;
            if !install {
                row.writes += 1;
            }
            quiet
        };
        if self.fallible {
            self.applied
                .entry((to.index(), seg))
                .or_default()
                .insert(wid);
        }
        // Fresh iff the adopted approximation soundly stands in for the
        // source's current one (an even newer write may be in flight).
        let fresh = match self.asr.cached_approx(NodeId::SOURCE, seg) {
            Some(cur) => A::suppresses(&approx, cur),
            None => true,
        };
        self.asr.row_mut(to, seg).stale = !fresh;
        if self.fallible {
            self.send_ack(sched, now, to, from, seg, seq);
        }
        if repropagate && !quiet {
            for child in self.asr.row(to, seg).subscribed.clone() {
                self.send_replicate(
                    sched,
                    now,
                    to,
                    child,
                    seg,
                    seq,
                    approx.clone(),
                    MsgKind::Update,
                    true,
                );
            }
        }
    }

    fn send_ack(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        from: NodeId,
        to: NodeId,
        seg: usize,
        seq: u64,
    ) {
        self.send(
            sched,
            now,
            from,
            to,
            MsgKind::Control,
            Msg::Ack { from, seg, seq },
        );
    }

    fn handle_retry(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        from: NodeId,
        to: NodeId,
        seg: usize,
        seq: u64,
    ) {
        let key = (from.index(), to.index(), seg);
        let Some(p) = self.pending.get(&key).copied() else {
            return; // acked (or unsubscribed) in the meantime
        };
        if p.seq != seq {
            return; // superseded by a newer send, which armed its own timer
        }
        if self.link.plan().is_down(from, now) {
            // The sender itself is crashed; try again after recovery.
            self.arm_retry(sched, now, self.retry.timeout, from, to, seg, seq);
            return;
        }
        if p.attempt >= self.retry.max_retries {
            // Write the child off: unsubscribe it locally. Its subtree
            // re-joins through interest + phase expansion.
            self.pending.remove(&key);
            self.net.incr("net.retry_exhausted");
            self.asr.row_mut(from, seg).subscribed.retain(|&v| v != to);
            return;
        }
        let Some(approx) = self.asr.cached_approx(from, seg).cloned() else {
            // The sender decached the segment (contraction); nothing left
            // to deliver.
            self.pending.remove(&key);
            return;
        };
        // Resend the sender's *current* state under its current epoch.
        // The same payload keeps its write id (so the receiver can
        // suppress a duplicate); a newer epoch is a new logical write and
        // gets a fresh one.
        let cur_seq = self.asr.row(from, seg).seq;
        let wid = if cur_seq == p.seq {
            p.wid
        } else {
            self.fresh_wid()
        };
        let attempt = p.attempt + 1;
        self.pending.insert(
            key,
            Pending {
                seq: cur_seq,
                wid,
                attempt,
                kind: p.kind,
            },
        );
        self.net.incr(&format!("net.retried.{}", p.kind.name()));
        self.arm_retry(
            sched,
            now,
            self.retry.backoff(attempt),
            from,
            to,
            seg,
            cur_seq,
        );
        self.send(
            sched,
            now,
            from,
            to,
            p.kind,
            Msg::Replicate {
                from,
                seg,
                seq: cur_seq,
                wid,
                approx,
                install: p.kind == MsgKind::Insert,
                repropagate: true,
            },
        );
    }

    fn handle_crash(&mut self, node: NodeId) {
        self.net.incr("net.crashes");
        // Everything that survives a crash round-trips through the
        // durability layer's checksummed image codec — encoding at the
        // crash instant is equivalent to write-through persistence, since
        // every mutation preceded the crash. Under `Directory` that is
        // the subscription directory alone (the original model); under
        // `Checkpointed` the node also restores each segment's
        // approximation, epoch, and staleness mark from its local store.
        // Phase counters are volatile either way.
        let image = durable::encode_node(&self.asr, node, self.durability);
        for seg in 0..self.asr.segments().len() {
            let row = self.asr.row_mut(node, seg);
            row.approx = None;
            row.stale = false;
            row.seq = 0;
            row.subscribed.clear();
            row.reset_phase();
        }
        if !durable::restore_node(&mut self.asr, node, &image) {
            // Unreachable for an image we just encoded; a failure here
            // models durable-media loss and degrades to a cold restart.
            self.net.incr("net.durable_image_lost");
        }
        // The node's applied-write-id memory dies with it: after the
        // wipe above, re-applying a previously seen write is correct
        // (and required), not a duplicate.
        self.applied.retain(|&(n, _), _| n != node.index());
        self.hb_misses[node.index()] = 0;
        self.hb_pong[node.index()] = true;
    }

    /// One heartbeat period at `client`: score the previous period's
    /// pong, then either declare the parent suspect and repair, or ping
    /// it again.
    fn handle_heartbeat(&mut self, sched: &mut Sched<A>, now: u64, client: usize) {
        let Some(heal) = self.heal else { return };
        let node = NodeId(client);
        if self.link.plan().is_down(node, now) {
            // A crashed node neither pings nor accumulates suspicion.
            self.hb_misses[client] = 0;
            self.hb_pong[client] = true;
            return;
        }
        if self.hb_pong[client] {
            self.hb_misses[client] = 0;
        } else {
            self.hb_misses[client] += 1;
        }
        self.hb_pong[client] = false;
        if self.hb_misses[client] >= heal.miss_threshold {
            // Suspicion confirmed. Reset the detector (a fresh parent
            // gets a full grace window) and repair.
            self.hb_misses[client] = 0;
            self.hb_pong[client] = true;
            self.repair_node(sched, now, node);
        } else if let Some(parent) = self.topo.parent(node) {
            self.send(
                sched,
                now,
                node,
                parent,
                MsgKind::Heartbeat,
                Msg::Ping { from: node },
            );
        }
    }

    /// The parent of `node` is suspect: probe up the current path to the
    /// source and adopt the nearest live ancestor. Each probe is charged
    /// as heartbeat traffic — repair is not free. Adopting an ancestor
    /// can never create a cycle ([`DynamicTopology::reparent`] enforces
    /// it regardless).
    fn repair_node(&mut self, sched: &mut Sched<A>, now: u64, node: NodeId) {
        let Some(old_parent) = self.topo.parent(node) else {
            return;
        };
        let path = self.topo.path_to_source(node);
        let mut chosen = NodeId::SOURCE;
        for cand in path {
            self.ledger_mut(now).charge(MsgKind::Heartbeat);
            self.net.incr("net.probes");
            if !self.link.plan().is_down(cand, now) {
                chosen = cand;
                break;
            }
        }
        if chosen == old_parent {
            // False alarm (pongs were dropped, not the parent): the
            // probe found it live, so keep the tree as is.
            self.net.incr("net.false_suspicions");
            return;
        }
        if self.topo.reparent(now, node, chosen).is_err() {
            return; // no-op repair (already adopted concurrently)
        }
        self.net.incr("net.repairs");
        // Hand the adopter every segment this node still serves, so
        // update flow resumes on the repaired edge.
        for seg in 0..self.asr.segments().len() {
            if self.asr.row(node, seg).approx.is_some() {
                self.send(
                    sched,
                    now,
                    node,
                    chosen,
                    MsgKind::Control,
                    Msg::Resub { from: node, seg },
                );
            }
        }
    }

    /// A re-parented child asks its new parent to carry `seg`. If the
    /// adopter holds the segment it subscribes the child and pushes its
    /// current state; otherwise it records interest so the next phase
    /// expansion can pull the segment down the repaired edge.
    fn handle_resub(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        to: NodeId,
        from: NodeId,
        seg: usize,
    ) {
        if self.asr.row(to, seg).approx.is_some() {
            let row = self.asr.row_mut(to, seg);
            if !row.subscribed.contains(&from) {
                row.subscribed.push(from);
            }
            let approx = self.asr.row(to, seg).approx.clone().expect("checked above");
            let seq = self.asr.row(to, seg).seq;
            self.send_replicate(
                sched,
                now,
                to,
                from,
                seg,
                seq,
                approx,
                MsgKind::Update,
                true,
            );
        } else {
            let row = self.asr.row_mut(to, seg);
            if !row.interested.contains(&from) {
                row.interested.push(from);
            }
        }
    }

    /// End of a crash window (healing runs only): the node rejoins the
    /// tree in place — typically as a leaf, since its orphaned children
    /// re-parented away during the outage — and re-syncs its directory
    /// against the current tree.
    fn handle_recover(&mut self, now: u64, node: NodeId) {
        self.net.incr("net.rejoins");
        self.hb_misses[node.index()] = 0;
        self.hb_pong[node.index()] = true;
        let children: BTreeSet<usize> =
            self.topo.children(node).iter().map(|c| c.index()).collect();
        // Drop subscriptions (and their retry state) for children that
        // were adopted elsewhere while this node was down; they are
        // served on their repaired edges now.
        for seg in 0..self.asr.segments().len() {
            self.asr
                .row_mut(node, seg)
                .subscribed
                .retain(|c| children.contains(&c.index()));
        }
        self.pending
            .retain(|&(from, to, _), _| from != node.index() || children.contains(&to));
        self.topo.note_rejoin(now, node);
    }

    fn handle_data(&mut self, sched: &mut Sched<A>, now: u64) {
        let v = self.values[self.data_idx % self.values.len()];
        self.data_idx += 1;
        let updates = self.asr.ingest(v);
        for (seg, approx) in updates {
            let seq = {
                let row = self.asr.row_mut(NodeId::SOURCE, seg);
                row.seq += 1;
                row.seq
            };
            // The write epoch: every replica whose held approximation can
            // no longer soundly stand in for the new truth is stale as of
            // this tick, whether or not its update survives the network.
            for node in self.topo.nodes() {
                if node == NodeId::SOURCE {
                    continue;
                }
                let row = self.asr.row_mut(node, seg);
                let unsound = matches!(&row.approx, Some(held) if !A::suppresses(held, &approx));
                if unsound {
                    row.stale = true;
                    self.net.incr("net.stale_marks");
                }
            }
            for child in self.asr.row(NodeId::SOURCE, seg).subscribed.clone() {
                self.send_replicate(
                    sched,
                    now,
                    NodeId::SOURCE,
                    child,
                    seg,
                    seq,
                    approx.clone(),
                    MsgKind::Update,
                    true,
                );
            }
        }
        if self.measuring(now) {
            self.metrics.incr("data_arrivals");
        }
    }

    fn handle_query(&mut self, sched: &mut Sched<A>, now: u64, client: usize) {
        let q = self.generators[client - 1].next_query();
        if self.measuring(now) {
            self.metrics.incr("queries");
        }
        let origin = NodeId(client);
        if self.link.plan().is_down(origin, now) {
            self.net.incr("net.queries_down");
            return;
        }
        self.query_at(sched, now, origin, origin, None, &q, now);
    }

    /// One hop of query resolution at `node`: answer from local cache
    /// (stale rows never answer) or forward to the parent.
    #[allow(clippy::too_many_arguments)] // routing context, flattened once
    fn query_at(
        &mut self,
        sched: &mut Sched<A>,
        now: u64,
        node: NodeId,
        origin: NodeId,
        from: Option<NodeId>,
        query: &InnerProductQuery,
        issued: u64,
    ) {
        if let Some(value) = self.asr.try_answer(node, query) {
            for seg in self.asr.touched_segments(query) {
                self.asr.row_mut(node, seg).note_read(from);
            }
            // While the window is still filling, exact answers treat
            // absent indices as zero but approximations extrapolate, so
            // the δ guarantee is only checkable on a full window.
            if self.check && self.asr.window_full() {
                let exact = self.asr.answer_exact(query);
                let err = (value - exact).abs();
                self.net.record("net.answer_abs_err", err);
                if err > query.delta() + 1e-6 {
                    self.violations.push(format!(
                        "t={now}: answer at node {node} errs {err:.6} > delta {}",
                        query.delta()
                    ));
                }
            }
            if node == origin {
                self.finish_query(issued, origin, node, value, from.is_none());
            } else if let Some(next) = self.next_hop_down(node, origin) {
                self.send(
                    sched,
                    now,
                    node,
                    next,
                    MsgKind::Answer,
                    Msg::AnswerDown {
                        origin,
                        value,
                        answered_at: node,
                        issued,
                    },
                );
            } else {
                self.note_misrouted_answer();
            }
        } else {
            let parent = self.topo.parent(node).expect("the source always answers");
            self.send(
                sched,
                now,
                node,
                parent,
                MsgKind::QueryForward,
                Msg::QueryUp {
                    origin,
                    from: node,
                    query: query.clone(),
                    issued,
                },
            );
        }
    }

    /// The answer reached its origin: record outcome metrics against the
    /// issue tick (the synchronous harness resolves queries at issue
    /// time, so this keeps measured windows aligned).
    fn finish_query(
        &mut self,
        issued: u64,
        origin: NodeId,
        answered_at: NodeId,
        value: f64,
        local_hit: bool,
    ) {
        if self.measuring(issued) {
            if local_hit {
                self.metrics.incr("local_hits");
            }
            self.metrics
                .record("answer_depth", self.topo.depth(answered_at) as f64);
            self.digest = digest_outcome(
                self.digest,
                issued,
                origin.index(),
                value,
                answered_at.index(),
                local_hit,
            );
            self.net.incr("net.queries_answered");
        }
    }

    /// Mirrors the synchronous `on_phase_end` with sends in place of
    /// direct receiver mutation. Crashed nodes sit the phase out.
    fn handle_phase_end(&mut self, sched: &mut Sched<A>, now: u64) {
        let n_segs = self.asr.segments().len();
        // Contraction first, deepest nodes first.
        let mut order: Vec<NodeId> = self.topo.nodes().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.topo.depth(v)));
        for &u in &order {
            if self.topo.is_source(u) || self.link.plan().is_down(u, now) {
                continue;
            }
            for seg in 0..n_segs {
                let row = self.asr.row(u, seg);
                let is_fringe = row.approx.is_some() && row.subscribed.is_empty();
                if is_fringe && row.reads_served() < row.writes {
                    let row = self.asr.row_mut(u, seg);
                    row.approx = None;
                    row.stale = false;
                    let parent = self.topo.parent(u).expect("non-source has a parent");
                    self.send(
                        sched,
                        now,
                        u,
                        parent,
                        MsgKind::Control,
                        Msg::Unsub { from: u, seg },
                    );
                }
            }
        }
        // Expansion, top-down.
        order.sort_by_key(|&v| self.topo.depth(v));
        for &u in &order {
            if self.link.plan().is_down(u, now) {
                continue;
            }
            for seg in 0..n_segs {
                if self.asr.row(u, seg).approx.is_none() {
                    continue;
                }
                let approx = self.asr.row(u, seg).approx.clone().expect("checked above");
                let seq = self.asr.row(u, seg).seq;
                let writes = self.asr.row(u, seg).writes;
                // Refresh subscribed children that kept missing.
                let subscribed = self.asr.row(u, seg).subscribed.clone();
                for v in subscribed {
                    let reads = self
                        .asr
                        .row(u, seg)
                        .read_counts
                        .get(&v)
                        .copied()
                        .unwrap_or(0);
                    if writes < reads {
                        self.send_replicate(
                            sched,
                            now,
                            u,
                            v,
                            seg,
                            seq,
                            approx.clone(),
                            MsgKind::Update,
                            false,
                        );
                    }
                }
                // Promote interested children that read enough.
                let interested = std::mem::take(&mut self.asr.row_mut(u, seg).interested);
                for v in interested {
                    let reads = self
                        .asr
                        .row(u, seg)
                        .read_counts
                        .get(&v)
                        .copied()
                        .unwrap_or(0);
                    if writes < reads {
                        self.asr.row_mut(u, seg).subscribed.push(v);
                        self.send_replicate(
                            sched,
                            now,
                            u,
                            v,
                            seg,
                            seq,
                            approx.clone(),
                            MsgKind::Insert,
                            false,
                        );
                    }
                }
            }
        }
        for node in self.topo.nodes() {
            for seg in 0..n_segs {
                self.asr.row_mut(node, seg).reset_phase();
            }
        }
        if self.measuring(now) {
            self.metrics.incr("phases");
        }
    }

    /// Every non-stale cached approximation must honor its advertised
    /// uncertainty against the segment's true current values.
    fn check_soundness(&mut self, now: u64) {
        for seg in 0..self.asr.segments().len() {
            let Some(values) = self.asr.segment_values(seg) else {
                continue;
            };
            for node in self.topo.nodes() {
                if self.topo.is_source(node) {
                    continue;
                }
                let row = self.asr.row(node, seg);
                if row.stale {
                    continue;
                }
                let Some(a) = &row.approx else {
                    continue;
                };
                for (offset, &truth) in values.iter().enumerate() {
                    let err = (truth - a.value_at(offset)).abs();
                    if err > a.uncertainty() / 2.0 + 1e-6 {
                        self.violations.push(format!(
                            "t={now}: node {node} seg {seg} offset {offset}: |{truth} - {}| > {}/2",
                            a.value_at(offset),
                            a.uncertainty()
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_net::{DelayDist, RepairKind};

    fn weather(n: usize) -> Vec<f64> {
        swat_data::weather_series(5, n)
    }

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            window: 16,
            horizon: 600,
            warmup: 150,
            ..WorkloadConfig::default()
        }
    }

    fn checked(plan: FaultPlan) -> ChaosOptions {
        ChaosOptions {
            plan,
            check_invariants: true,
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn ideal_plan_is_bit_identical_to_sync_harness() {
        let topo = Topology::complete_binary(2);
        let data = weather(700);
        let cfg = cfg();
        let sync = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let chaos = run_chaos(
            SchemeKind::SwatAsr,
            &topo,
            &data,
            &cfg,
            &checked(FaultPlan::none()),
        )
        .unwrap();
        assert_eq!(chaos.run.ledger, sync.ledger);
        assert_eq!(chaos.run.warmup_ledger, sync.warmup_ledger);
        assert_eq!(chaos.run.answers_digest, sync.answers_digest);
        assert_eq!(chaos.run.approximations, sync.approximations);
        for key in ["queries", "local_hits", "data_arrivals", "phases"] {
            assert_eq!(
                chaos.run.metrics.counter(key),
                sync.metrics.counter(key),
                "{key}"
            );
        }
        assert!(chaos.violations.is_empty(), "{:?}", chaos.violations);
        assert_eq!(chaos.answer_rate(), 1.0);
    }

    #[test]
    fn delay_only_plans_keep_every_query_correct() {
        let topo = Topology::complete_binary(2);
        let data = weather(700);
        let plan = FaultPlan::new(11)
            .with_delay(DelayDist::Uniform { lo: 0, hi: 3 })
            .unwrap();
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &checked(plan)).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // Delay-only plans lose nothing: no retries, no ack traffic.
        assert_eq!(out.net.counter("net.retry_exhausted"), 0);
        assert_eq!(out.net.counter("net.dropped.update"), 0);
        assert!(out.net.counter("net.queries_answered") > 0);
    }

    #[test]
    fn drops_trigger_retries_and_preserve_correctness() {
        let topo = Topology::chain(3);
        let data = weather(900);
        let plan = FaultPlan::new(5).with_drop(0.25).unwrap();
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &checked(plan)).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let retried: u64 = MsgKind::ALL
            .iter()
            .map(|k| out.net.counter(&format!("net.retried.{}", k.name())))
            .sum();
        assert!(retried > 0, "25% drop must force retries");
        assert!(out.net.counter("net.queries_answered") > 0);
    }

    #[test]
    fn dead_edge_exhausts_retries_but_queries_still_resolve() {
        // The edge to the client drops everything: replication to it is
        // written off after max_retries, and its queries must fail or
        // forward — never return a wrong answer.
        let topo = Topology::chain(2);
        let data = weather(900);
        let plan = FaultPlan::new(5)
            .with_edge_drop(NodeId(1), NodeId(2), 1.0)
            .unwrap();
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &checked(plan)).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // Queries from node 2 die on the dead edge; node 1 (if it ever
        // subscribes) can be retried into. Whatever happens, no wrong
        // answers and the run completes.
        assert!(out.run.metrics.counter("queries") > 0);
    }

    #[test]
    fn crash_loses_replicas_then_heals() {
        let topo = Topology::chain(2);
        let data = weather(900);
        let plan = FaultPlan::new(7).with_crash(NodeId(1), 200, 260).unwrap();
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &checked(plan)).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.net.counter("net.crashes"), 1);
        // Queries issued by the crashed node while down are skipped.
        assert!(out.net.counter("net.queries_answered") > 0);
    }

    #[test]
    fn checkpointed_durability_is_inert_without_crashes() {
        // With no crash windows the durable path is never taken, so both
        // durability models must be bit-identical — to each other and to
        // the synchronous harness.
        let topo = Topology::complete_binary(2);
        let data = weather(700);
        let cfg = cfg();
        let sync = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let mut opts = checked(FaultPlan::none());
        opts.durability = Durability::Checkpointed;
        let chaos = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &opts).unwrap();
        assert_eq!(chaos.run.ledger, sync.ledger);
        assert_eq!(chaos.run.answers_digest, sync.answers_digest);
        assert!(chaos.violations.is_empty(), "{:?}", chaos.violations);
    }

    #[test]
    fn checkpointed_recovery_saves_messages_and_stays_sound() {
        // A crashed node that restores its replicas from local durable
        // state answers locally again right after recovery, instead of
        // forwarding queries until the network re-replicates — fewer
        // QueryForward/Answer messages, zero soundness violations. The
        // stream goes quiet before the crash so the restored
        // approximations are still fresh: source-side enclosure
        // suppression emits no updates, which is exactly the regime where
        // Directory mode has nothing to rebuild replicas from until a
        // phase-end expansion.
        let topo = Topology::chain(2);
        let mut data = weather(300);
        let last = *data.last().unwrap();
        data.resize(900, last);
        let plan = FaultPlan::new(7).with_crash(NodeId(1), 400, 460).unwrap();
        let directory = run_chaos(
            SchemeKind::SwatAsr,
            &topo,
            &data,
            &cfg(),
            &checked(plan.clone()),
        )
        .unwrap();
        let mut opts = checked(plan);
        opts.durability = Durability::Checkpointed;
        let checkpointed = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();

        assert!(
            directory.violations.is_empty(),
            "{:?}",
            directory.violations
        );
        assert!(
            checkpointed.violations.is_empty(),
            "{:?}",
            checkpointed.violations
        );
        assert_eq!(checkpointed.net.counter("net.crashes"), 1);
        let fetch = |out: &ChaosOutput| {
            out.run.ledger.count(MsgKind::QueryForward) + out.run.ledger.count(MsgKind::Answer)
        };
        assert!(
            fetch(&checkpointed) < fetch(&directory),
            "local recovery must save query traffic: checkpointed {} vs directory {}",
            fetch(&checkpointed),
            fetch(&directory)
        );
        assert!(
            checkpointed.run.ledger.total() < directory.run.ledger.total(),
            "checkpointed {} vs directory {}",
            checkpointed.run.ledger.total(),
            directory.run.ledger.total()
        );
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let topo = Topology::complete_binary(2);
        let data = weather(700);
        let plan = FaultPlan::new(3)
            .with_drop(0.15)
            .unwrap()
            .with_delay(DelayDist::Uniform { lo: 0, hi: 2 })
            .unwrap();
        let opts = checked(plan);
        let a = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();
        let b = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();
        assert_eq!(a.run.ledger, b.run.ledger);
        assert_eq!(a.run.answers_digest, b.run.answers_digest);
        assert_eq!(
            a.net.counter("net.queries_answered"),
            b.net.counter("net.queries_answered")
        );
    }

    #[test]
    fn baselines_run_only_under_ideal_plans() {
        let topo = Topology::single_client();
        let data = weather(700);
        let ideal = ChaosOptions::default();
        for kind in [SchemeKind::DivergenceCaching, SchemeKind::AdaptivePrecision] {
            let out = run_chaos(kind, &topo, &data, &cfg(), &ideal).unwrap();
            let sync = run(kind, &topo, &data, &cfg());
            assert_eq!(out.run.ledger, sync.ledger);
            assert_eq!(out.run.answers_digest, sync.answers_digest);
        }
        let faulty = ChaosOptions {
            plan: FaultPlan::new(1).with_drop(0.1).unwrap(),
            ..ChaosOptions::default()
        };
        assert_eq!(
            run_chaos(SchemeKind::DivergenceCaching, &topo, &data, &cfg(), &faulty).unwrap_err(),
            ChaosError::UnsupportedScheme("DC")
        );
    }

    #[test]
    fn input_validation() {
        let topo = Topology::single_client();
        let data = weather(100);
        let bad_cfg = WorkloadConfig {
            window: 24,
            ..cfg()
        };
        assert!(matches!(
            run_chaos(
                SchemeKind::SwatAsr,
                &topo,
                &data,
                &bad_cfg,
                &ChaosOptions::default()
            ),
            Err(ChaosError::InvalidConfig(_))
        ));
        assert_eq!(
            run_chaos(
                SchemeKind::SwatAsr,
                &topo,
                &[],
                &cfg(),
                &ChaosOptions::default()
            )
            .unwrap_err(),
            ChaosError::NoData
        );
        let out_of_range = ChaosOptions {
            plan: FaultPlan::new(1).with_crash(NodeId(9), 0, 5).unwrap(),
            ..ChaosOptions::default()
        };
        assert_eq!(
            run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &out_of_range).unwrap_err(),
            ChaosError::PlanOutOfRange { node: 9, nodes: 2 }
        );
        for e in [
            ChaosError::NoData,
            ChaosError::NoClients,
            ChaosError::UnsupportedScheme("DC"),
            ChaosError::PlanOutOfRange { node: 9, nodes: 2 },
            ChaosError::InvalidConfig(WorkloadConfigError::ZeroPeriod("phase")),
            ChaosError::InvalidHealPolicy("heartbeat period must be positive"),
            ChaosError::PastTick(PastTickError { at: 3, now: 7 }),
        ] {
            assert!(!e.to_string().is_empty());
        }
        let bad_heal = ChaosOptions {
            heal: Some(HealPolicy {
                period: 0,
                ..HealPolicy::default()
            }),
            ..ChaosOptions::default()
        };
        assert!(matches!(
            run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &bad_heal),
            Err(ChaosError::InvalidHealPolicy(_))
        ));
        let bad_heal = ChaosOptions {
            heal: Some(HealPolicy {
                miss_threshold: 0,
                ..HealPolicy::default()
            }),
            ..ChaosOptions::default()
        };
        assert!(matches!(
            run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &bad_heal),
            Err(ChaosError::InvalidHealPolicy(_))
        ));
    }

    #[test]
    fn huge_retry_timeout_completes_without_panic() {
        // `now + timeout` used to overflow (and the retry-timer expect
        // used to abort the run); a saturating deadline simply never
        // fires inside the horizon.
        let topo = Topology::chain(3);
        let data = weather(900);
        let plan = FaultPlan::new(5).with_drop(0.25).unwrap();
        let opts = ChaosOptions {
            plan,
            retry: RetryPolicy {
                timeout: u64::MAX,
                max_retries: 4,
            },
            check_invariants: true,
            ..ChaosOptions::default()
        };
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn healing_is_inert_without_crash_windows() {
        // Healing requested but nothing can crash: detection must not
        // arm, so the run is bit-identical to the synchronous harness —
        // zero heartbeat traffic, zero repairs.
        let topo = Topology::complete_binary(2);
        let data = weather(700);
        let cfg = cfg();
        let sync = run(SchemeKind::SwatAsr, &topo, &data, &cfg);
        let mut opts = checked(FaultPlan::none());
        opts.heal = Some(HealPolicy::default());
        let healed = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg, &opts).unwrap();
        assert_eq!(healed.run.ledger, sync.ledger);
        assert_eq!(healed.run.warmup_ledger, sync.warmup_ledger);
        assert_eq!(healed.run.answers_digest, sync.answers_digest);
        assert_eq!(healed.run.ledger.count(MsgKind::Heartbeat), 0);
        assert!(healed.repairs.is_empty());
        assert!(healed.violations.is_empty(), "{:?}", healed.violations);
    }

    #[test]
    fn duplicate_deliveries_are_suppressed() {
        // Fixed 2-tick links with a 3-tick retry timeout: every ack is
        // still in flight when the timer fires, so the receiver sees the
        // same write id twice and must suppress the second copy. The
        // crash window sits beyond the horizon — it only makes the plan
        // fallible, nothing is actually lost, so suppression alone keeps
        // the protocol exactly-once.
        let topo = Topology::chain(2);
        let data = weather(900);
        let horizon = cfg().horizon;
        let plan = FaultPlan::new(3)
            .with_delay(DelayDist::Const(2))
            .unwrap()
            .with_crash(NodeId(1), horizon + 1, horizon + 2)
            .unwrap();
        let opts = ChaosOptions {
            plan,
            retry: RetryPolicy {
                timeout: 3,
                max_retries: 3,
            },
            check_invariants: true,
            ..ChaosOptions::default()
        };
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            out.net.counter("net.dup_suppressed") > 0,
            "2-tick acks against a 3-tick timeout must force duplicates"
        );
    }

    #[test]
    fn healing_restores_answers_under_interior_crash() {
        // Crash the interior node of a chain for most of the measured
        // span. Statically its whole subtree is cut off from the source;
        // with healing the orphan re-parents to the source and keeps
        // being served.
        let topo = Topology::chain(3);
        let data = weather(900);
        let plan = FaultPlan::new(7).with_crash(NodeId(1), 200, 550).unwrap();
        let static_out = run_chaos(
            SchemeKind::SwatAsr,
            &topo,
            &data,
            &cfg(),
            &checked(plan.clone()),
        )
        .unwrap();
        let mut opts = checked(plan);
        opts.heal = Some(HealPolicy::default());
        let healed = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();
        assert!(healed.violations.is_empty(), "{:?}", healed.violations);
        assert!(
            !healed.repairs.is_empty(),
            "a 350-tick interior outage must trigger at least one repair"
        );
        assert!(
            healed
                .repairs
                .iter()
                .any(|r| r.kind == RepairKind::Reparent),
            "{:?}",
            healed.repairs
        );
        assert_eq!(healed.net.counter("net.rejoins"), 1);
        assert!(healed.run.ledger.count(MsgKind::Heartbeat) > 0);
        assert!(
            healed.net.counter("net.queries_answered")
                > static_out.net.counter("net.queries_answered"),
            "healed {} must answer strictly more than static {}",
            healed.net.counter("net.queries_answered"),
            static_out.net.counter("net.queries_answered")
        );
        // Same plan twice: the healed run is as deterministic as the
        // static one.
        let again = run_chaos(SchemeKind::SwatAsr, &topo, &data, &cfg(), &opts).unwrap();
        assert_eq!(again.run.answers_digest, healed.run.answers_digest);
        assert_eq!(again.repairs.len(), healed.repairs.len());
    }
}
