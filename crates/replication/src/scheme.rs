//! The interface every replication scheme implements, so the harness and
//! the experiments treat SWAT-ASR, Divergence Caching and Adaptive
//! Precision Setting uniformly.

use swat_net::{MessageLedger, NodeId};
use swat_tree::InnerProductQuery;

/// Which scheme to run (used by the harness and the benchmark binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// The paper's SWAT-ASR (adaptive stream replication over segments).
    SwatAsr,
    /// Divergence Caching (Huang, Sloan & Wolfson), adapted per §4.1.
    DivergenceCaching,
    /// Adaptive Precision Setting (Olston, Loo & Widom), per §4.2.
    AdaptivePrecision,
}

impl SchemeKind {
    /// All three schemes, in the paper's presentation order.
    pub const ALL: [SchemeKind; 3] = [
        SchemeKind::SwatAsr,
        SchemeKind::DivergenceCaching,
        SchemeKind::AdaptivePrecision,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::SwatAsr => "SWAT-ASR",
            SchemeKind::DivergenceCaching => "DC",
            SchemeKind::AdaptivePrecision => "APS",
        }
    }
}

/// What happened to one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// The node that ultimately answered.
    pub answered_at: NodeId,
    /// The answer value (weighted sum of per-item estimates).
    pub value: f64,
    /// Whether the issuing client's cache satisfied it without any
    /// message (a pure local hit).
    pub local_hit: bool,
}

/// A replication scheme driven by the simulation harness.
///
/// The harness calls [`ReplicationScheme::on_data`] for every stream
/// arrival at the source, [`ReplicationScheme::on_query`] for every query
/// issued at a client, and [`ReplicationScheme::on_phase_end`] at every
/// phase boundary (only SWAT-ASR acts on phases). All message costs are
/// charged to the supplied ledger, one unit per tree edge traversed.
pub trait ReplicationScheme {
    /// A new stream value arrives at the source at tick `now`.
    fn on_data(&mut self, now: u64, value: f64, ledger: &mut MessageLedger);

    /// A client issues a query at tick `now`; returns how it was resolved.
    fn on_query(
        &mut self,
        now: u64,
        client: NodeId,
        query: &InnerProductQuery,
        ledger: &mut MessageLedger,
    ) -> QueryOutcome;

    /// A replication phase ends at tick `now` (ADR expansion/contraction
    /// for SWAT-ASR; a no-op for the per-item baselines).
    fn on_phase_end(&mut self, now: u64, ledger: &mut MessageLedger);

    /// Number of approximations currently cached across all sites — the
    /// space comparison of §5.1 (`O(M log N)` for SWAT-ASR vs `O(M N)`
    /// for the baselines).
    fn approximation_count(&self) -> usize;

    /// Scheme name for reporting.
    fn name(&self) -> &'static str;
}

/// Per-item tolerance allocation for the item-granular baselines: a query
/// `(I, W, δ)` is satisfied iff `Σ w_i · width_i ≤ δ`, which holds if each
/// item's cached width obeys `width_i ≤ δ / (M · w_i)`.
pub fn per_item_tolerance(query: &InnerProductQuery, pos: usize) -> f64 {
    let m = query.len() as f64;
    let w = query.weights()[pos].abs();
    if w == 0.0 {
        f64::INFINITY
    } else {
        query.delta() / (m * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(SchemeKind::SwatAsr.name(), "SWAT-ASR");
        assert_eq!(SchemeKind::DivergenceCaching.name(), "DC");
        assert_eq!(SchemeKind::AdaptivePrecision.name(), "APS");
        assert_eq!(SchemeKind::ALL.len(), 3);
    }

    #[test]
    fn tolerance_allocation_satisfies_query_budget() {
        let q = InnerProductQuery::linear(8, 16.0);
        // If every item's width equals its tolerance, the weighted total
        // error budget is exactly delta.
        let total: f64 = (0..q.len())
            .map(|p| q.weights()[p] * per_item_tolerance(&q, p))
            .sum();
        assert!((total - q.delta()).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_items_are_free() {
        let q = InnerProductQuery::new(vec![0, 1], vec![1.0, 0.0], 5.0).unwrap();
        assert!(per_item_tolerance(&q, 1).is_infinite());
        assert!(per_item_tolerance(&q, 0).is_finite());
    }
}
