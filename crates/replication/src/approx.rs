//! Segment approximations replicated by SWAT-ASR.
//!
//! The paper's §3 develops the replication algorithm for the
//! 1-coefficient case, where the approximation of a segment is a range
//! `[d_L, d_H]`, and sketches the general case: "the client would
//! maintain the desired number of coefficients and a range denoting the
//! maximum deviation of the true value from that computed using inverse
//! transform on the coefficients."
//!
//! [`SegmentApprox`] abstracts exactly that choice so one ADR engine
//! serves both:
//!
//! * [`RangeApprox`] — the paper's mainline: `[min, max]` per segment,
//!   answered by the midpoint, update suppressed when the old range
//!   encloses the new.
//! * [`CoeffApprox`] — the general case: `k` Haar coefficients plus the
//!   max deviation `dev` of true values from the reconstruction. An
//!   update is suppressed when the stale copy is still *provably* sound:
//!   `max_i |old_i − new_i| + dev_new ≤ dev_old` implies
//!   `|truth − old_i| ≤ dev_old` by the triangle inequality, so a client
//!   holding the old summary keeps honoring its advertised deviation.

use swat_tree::ValueRange;
use swat_wavelet::HaarCoeffs;

/// An approximation of one window segment that SWAT-ASR can replicate.
pub trait SegmentApprox: Clone + PartialEq + std::fmt::Debug {
    /// Build from the segment's current exact values (newest first). The
    /// slice may be shorter than the segment during warm-up; never empty.
    fn from_segment(values_newest_first: &[f64], k: usize) -> Self;

    /// Whether a client holding `old` remains sound when the source's
    /// approximation becomes `new` — if so the update need not propagate
    /// (the paper's enclosure test, generalized).
    fn suppresses(old: &Self, new: &Self) -> bool;

    /// Approximate value at `offset` within the segment (0 = the
    /// segment's newest index).
    fn value_at(&self, offset: usize) -> f64;

    /// Sound bound on `2 × |truth − value_at(·)|` — the "width" the
    /// query admission test weighs, scaled like the paper's range width.
    fn uncertainty(&self) -> f64;

    /// Serialize for the durability layer. Integrity is the container's
    /// job (the `swat-store` image codec checksums every record); this
    /// method only defines the payload bytes.
    fn write_bytes(&self, out: &mut Vec<u8>);

    /// Parse bytes produced by [`write_bytes`](Self::write_bytes).
    /// Returns `None` — never panics — on any malformed input, so a
    /// corrupted durable image degrades to a lost replica, not a crash.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

/// The paper's 1-coefficient approximation: the exact `[min, max]` range.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeApprox(pub ValueRange);

impl RangeApprox {
    /// The underlying range.
    pub fn range(&self) -> ValueRange {
        self.0
    }
}

impl SegmentApprox for RangeApprox {
    fn from_segment(values: &[f64], _k: usize) -> Self {
        RangeApprox(ValueRange::of(values))
    }

    fn suppresses(old: &Self, new: &Self) -> bool {
        old.0.encloses(&new.0)
    }

    fn value_at(&self, _offset: usize) -> f64 {
        self.0.midpoint()
    }

    fn uncertainty(&self) -> f64 {
        self.0.width()
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.lo().to_bits().to_le_bytes());
        out.extend_from_slice(&self.0.hi().to_bits().to_le_bytes());
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        let lo = f64::from_bits(u64::from_le_bytes(bytes[..8].try_into().ok()?));
        let hi = f64::from_bits(u64::from_le_bytes(bytes[8..].try_into().ok()?));
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return None;
        }
        Some(RangeApprox(ValueRange::new(lo, hi)))
    }
}

/// The general case: `k` Haar coefficients plus the maximum deviation of
/// the true segment values from the truncated reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct CoeffApprox {
    coeffs: HaarCoeffs,
    deviation: f64,
    /// True segment length (the coefficient signal may be padded up to a
    /// power of two during warm-up).
    len: usize,
}

impl CoeffApprox {
    /// The stored coefficients.
    pub fn coeffs(&self) -> &HaarCoeffs {
        &self.coeffs
    }

    /// Max deviation of truth from the reconstruction, at publication.
    pub fn deviation(&self) -> f64 {
        self.deviation
    }
}

impl SegmentApprox for CoeffApprox {
    fn from_segment(values: &[f64], k: usize) -> Self {
        assert!(!values.is_empty(), "segment must hold at least one value");
        // Pad to a power of two with the oldest value (only relevant
        // during warm-up; full segments are dyadic already).
        let mut padded = values.to_vec();
        let n = values.len().next_power_of_two();
        padded.resize(n, *values.last().expect("nonempty"));
        let coeffs =
            HaarCoeffs::from_signal(&padded, k.max(1)).expect("padded segment is a power of two");
        let deviation = padded
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - coeffs.value_at(i)).abs())
            .fold(0.0, f64::max);
        CoeffApprox {
            coeffs,
            deviation,
            len: values.len(),
        }
    }

    fn suppresses(old: &Self, new: &Self) -> bool {
        if old.coeffs.len() != new.coeffs.len() || old.len != new.len {
            return false;
        }
        // Triangle inequality: a stale copy stays sound iff its advertised
        // deviation still covers the drift plus the fresh deviation.
        let drift = (0..new.len)
            .map(|i| (old.coeffs.value_at(i) - new.coeffs.value_at(i)).abs())
            .fold(0.0, f64::max);
        drift + new.deviation <= old.deviation
    }

    fn value_at(&self, offset: usize) -> f64 {
        self.coeffs.value_at(offset.min(self.coeffs.len() - 1))
    }

    fn uncertainty(&self) -> f64 {
        2.0 * self.deviation
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(self.coeffs.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.deviation.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.coeffs.coefficients().len() as u64).to_le_bytes());
        for &c in self.coeffs.coefficients() {
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let f64_at = |at: usize| -> Option<f64> {
            Some(f64::from_bits(u64::from_le_bytes(
                bytes.get(at..at + 8)?.try_into().ok()?,
            )))
        };
        let u64_at = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
        };
        let len = usize::try_from(u64_at(0)?).ok()?;
        let signal_len = usize::try_from(u64_at(8)?).ok()?;
        let deviation = f64_at(16)?;
        let stored = usize::try_from(u64_at(24)?).ok()?;
        if !deviation.is_finite()
            || deviation < 0.0
            || len == 0
            || len > signal_len
            || stored > signal_len
            || bytes.len() != 32 + 8 * stored
        {
            return None;
        }
        let mut coeffs = Vec::with_capacity(stored);
        for i in 0..stored {
            let c = f64_at(32 + 8 * i)?;
            if !c.is_finite() {
                return None;
            }
            coeffs.push(c);
        }
        let coeffs = HaarCoeffs::from_parts(signal_len, coeffs).ok()?;
        Some(CoeffApprox {
            coeffs,
            deviation,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_approx_mirrors_value_range() {
        let a = RangeApprox::from_segment(&[3.0, 9.0, 5.0], 1);
        assert_eq!(a.range(), ValueRange::new(3.0, 9.0));
        assert_eq!(a.value_at(0), 6.0);
        assert_eq!(a.value_at(2), 6.0);
        assert_eq!(a.uncertainty(), 6.0);
        let tighter = RangeApprox::from_segment(&[4.0, 8.0], 1);
        assert!(RangeApprox::suppresses(&a, &tighter));
        assert!(!RangeApprox::suppresses(&tighter, &a));
    }

    #[test]
    fn coeff_approx_is_sound_at_publication() {
        let values = [7.0, 3.0, 9.0, 1.0];
        for k in [1usize, 2, 4] {
            let a = CoeffApprox::from_segment(&values, k);
            for (i, &v) in values.iter().enumerate() {
                assert!(
                    (v - a.value_at(i)).abs() <= a.deviation() + 1e-12,
                    "k={k} i={i}"
                );
            }
        }
        // Full budget is exact.
        let a = CoeffApprox::from_segment(&values, 4);
        assert!(a.deviation() < 1e-12);
    }

    #[test]
    fn coeff_uncertainty_shrinks_with_k() {
        let values: Vec<f64> = (0..8).map(|i| ((i * 13) % 7) as f64).collect();
        let u1 = CoeffApprox::from_segment(&values, 1).uncertainty();
        let u4 = CoeffApprox::from_segment(&values, 4).uncertainty();
        let u8 = CoeffApprox::from_segment(&values, 8).uncertainty();
        assert!(u4 <= u1 + 1e-12);
        assert!(u8 <= 1e-12);
    }

    #[test]
    fn coeff_suppression_is_sound() {
        // If suppresses(old, new) holds, every value consistent with the
        // new approximation is within old's advertised deviation of old's
        // reconstruction.
        let old_vals = [10.0, 12.0, 30.0, 32.0];
        let old = CoeffApprox::from_segment(&old_vals, 2);
        // A slightly shifted segment.
        let new_vals = [10.5, 11.5, 30.5, 31.5];
        let new = CoeffApprox::from_segment(&new_vals, 2);
        if CoeffApprox::suppresses(&old, &new) {
            for (i, &truth) in new_vals.iter().enumerate() {
                assert!(
                    (truth - old.value_at(i)).abs() <= old.deviation() + 1e-9,
                    "suppression claimed soundness it cannot honor at {i}"
                );
            }
        }
        // A wildly different segment must not be suppressed by a tight old.
        let far = CoeffApprox::from_segment(&[90.0, 91.0, 92.0, 93.0], 2);
        assert!(!CoeffApprox::suppresses(&old, &far));
    }

    #[test]
    fn byte_codecs_roundtrip_bit_identically() {
        let r = RangeApprox::from_segment(&[3.0, 9.0, 5.0], 1);
        let mut bytes = Vec::new();
        r.write_bytes(&mut bytes);
        assert_eq!(RangeApprox::from_bytes(&bytes).unwrap(), r);

        for k in [1usize, 2, 4] {
            let c = CoeffApprox::from_segment(&[7.0, 3.0, 9.0, 1.0, 2.0], k);
            let mut bytes = Vec::new();
            c.write_bytes(&mut bytes);
            assert_eq!(CoeffApprox::from_bytes(&bytes).unwrap(), c);
        }
    }

    #[test]
    fn byte_codecs_reject_malformed_input_without_panicking() {
        let r = RangeApprox::from_segment(&[3.0, 9.0], 1);
        let mut bytes = Vec::new();
        r.write_bytes(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                RangeApprox::from_bytes(&bytes[..cut]).is_none(),
                "cut {cut}"
            );
        }
        // A range with lo > hi or non-finite bounds must not parse.
        let mut swapped = Vec::new();
        RangeApprox(ValueRange::new(3.0, 9.0)).write_bytes(&mut swapped);
        swapped.rotate_left(8); // hi bytes first: encodes [9, 3]
        assert!(RangeApprox::from_bytes(&swapped).is_none());

        let c = CoeffApprox::from_segment(&[7.0, 3.0, 9.0, 1.0], 2);
        let mut bytes = Vec::new();
        c.write_bytes(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                CoeffApprox::from_bytes(&bytes[..cut]).is_none(),
                "cut {cut}"
            );
        }
        // Coefficient-count field inflated past the buffer.
        let mut inflated = bytes.clone();
        inflated[24] = 0xFF;
        assert!(CoeffApprox::from_bytes(&inflated).is_none());
    }

    #[test]
    fn warmup_padding_handles_odd_lengths() {
        let a = CoeffApprox::from_segment(&[5.0, 7.0, 9.0], 2);
        assert!(a.value_at(0).is_finite());
        assert!(a.value_at(2).is_finite());
        assert!(a.uncertainty() >= 0.0);
    }
}
