//! Divergence Caching (Huang, Sloan & Wolfson, PDIS'94), adapted to
//! precision tolerances per the SWAT paper's §4.1.
//!
//! One cached interval per *(client, window item)* pair. The interval's
//! width is the "refresh rate" `k`: a read with tolerance `τ` hits the
//! cache iff `τ ≥ k`; otherwise it is forwarded to the server (control
//! message, cost `w` per edge) which replies with the current value and a
//! **newly computed** optimal width (data message, cost 1 per edge). A
//! write that escapes a client's cached interval triggers an *unsolicited
//! refresh* (data message per edge).
//!
//! The optimal width minimizes the paper's expected cost per unit time
//! over the discretized widths `k ∈ {0, …, M}`:
//!
//! ```text
//! cost(0) = λ_w                                      (exact caching)
//! cost(k) = r(k)(1+w) + (M−k)/M · (λ_w + r(k))       (0 < k < M)
//! cost(M) = (w+1) Σ_t λ_{r_t}                        (no caching)
//! ```
//!
//! with `r(k) = Σ_{t<k} λ_{r_t}` the rate of reads whose tolerance is too
//! tight for width `k`. Rates are estimated from a sliding window of the
//! last 23 read/write events per (client, item), as in the original paper
//! ("the authors used a window of size 23; we use the same").

use std::collections::VecDeque;

use crate::scheme::{per_item_tolerance, QueryOutcome, ReplicationScheme};
use swat_net::{MessageLedger, MsgKind, NodeId, Topology};
use swat_tree::{ExactWindow, InnerProductQuery, ValueRange};

/// Number of past events used to estimate read/write rates (reference
/// \[11\] of the paper, via its §4.1).
pub const HISTORY: usize = 23;

/// Number of discrete width levels (`M` in the cost model). Widths are
/// multiples of `value_range / WIDTH_LEVELS`.
pub const WIDTH_LEVELS: usize = 16;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A read request with its tolerance bin, at a tick.
    Read { tol_bin: usize, at: u64 },
    /// A write to the item, at a tick.
    Write { at: u64 },
}

impl Event {
    fn at(&self) -> u64 {
        match *self {
            Event::Read { at, .. } | Event::Write { at } => at,
        }
    }
}

/// Per-(client, item) state: the client-side cache plus the server-side
/// event history driving the width choice.
#[derive(Debug, Clone, Default)]
struct ItemState {
    /// Client-side cached interval; `None` = not cached (width level M).
    interval: Option<ValueRange>,
    /// Width level `k` of the cached interval (0 = exact).
    width_bin: usize,
    /// Server-side event history (last [`HISTORY`] events).
    events: VecDeque<Event>,
}

impl ItemState {
    fn record(&mut self, e: Event) {
        if self.events.len() == HISTORY {
            self.events.pop_front();
        }
        self.events.push_back(e);
    }
}

/// Divergence Caching over a topology: per-item caching for every client,
/// with the source as the single server (intermediate tree nodes relay).
#[derive(Debug)]
pub struct DivergenceCaching {
    topo: Topology,
    window: ExactWindow,
    /// `items[client - 1][item]` (the source caches nothing).
    items: Vec<Vec<ItemState>>,
    /// Control-message weight `w` of the cost model.
    control_weight: f64,
    /// Full value range of the data, defining the width unit.
    value_span: f64,
    /// Hop count from each client to the source (precomputed).
    depths: Vec<usize>,
}

impl DivergenceCaching {
    /// A fresh scheme. `value_span` is the maximum possible data range
    /// (the paper's `M`, e.g. 100 for the synthetic dataset);
    /// `control_weight` is the control-message cost `w`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `value_span <= 0`, or
    /// `control_weight < 0`.
    pub fn new(topo: Topology, window: usize, value_span: f64, control_weight: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(value_span > 0.0, "value span must be positive");
        assert!(control_weight >= 0.0, "control weight must be nonnegative");
        let items = topo
            .clients()
            .map(|_| vec![ItemState::default(); window])
            .collect();
        let depths = topo.nodes().map(|v| topo.depth(v)).collect();
        DivergenceCaching {
            topo,
            window: ExactWindow::new(window),
            items,
            control_weight,
            value_span,
            depths,
        }
    }

    fn width_unit(&self) -> f64 {
        self.value_span / WIDTH_LEVELS as f64
    }

    /// Tolerance `τ` (a width) discretized to a bin in `0..=WIDTH_LEVELS`.
    fn tol_bin(&self, tol: f64) -> usize {
        ((tol / self.width_unit()).floor() as usize).min(WIDTH_LEVELS)
    }

    /// Choose the width level minimizing expected cost per unit time from
    /// the item's event history. Empty history defaults to no caching.
    fn optimal_width_bin(&self, st: &ItemState, now: u64) -> usize {
        if st.events.is_empty() {
            return WIDTH_LEVELS;
        }
        let oldest = st.events.front().expect("nonempty").at();
        let span = (now.saturating_sub(oldest) + 1) as f64;
        let mut reads_per_bin = [0.0f64; WIDTH_LEVELS + 1];
        let mut writes = 0.0;
        for e in &st.events {
            match *e {
                Event::Read { tol_bin, .. } => reads_per_bin[tol_bin] += 1.0,
                Event::Write { .. } => writes += 1.0,
            }
        }
        let lambda_w = writes / span;
        let lambda_r: Vec<f64> = reads_per_bin.iter().map(|c| c / span).collect();
        let total_reads: f64 = lambda_r.iter().sum();
        let m = WIDTH_LEVELS as f64;
        let w = self.control_weight;
        let mut best = (0usize, lambda_w); // k = 0: pay every write
        for k in 1..WIDTH_LEVELS {
            let r_k: f64 = lambda_r[..k].iter().sum();
            let cost = r_k * (1.0 + w) + (m - k as f64) / m * (lambda_w + r_k);
            if cost < best.1 {
                best = (k, cost);
            }
        }
        let cost_m = (w + 1.0) * total_reads;
        if cost_m < best.1 {
            best = (WIDTH_LEVELS, cost_m);
        }
        best.0
    }

    /// Client-side cached interval for `(client, item)`, if any.
    pub fn cached_interval(&self, client: NodeId, item: usize) -> Option<ValueRange> {
        self.items[client.index() - 1][item].interval
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

impl ReplicationScheme for DivergenceCaching {
    fn on_data(&mut self, now: u64, value: f64, ledger: &mut MessageLedger) {
        self.window.push(value);
        // Every window item takes a new value; each cached copy whose
        // interval no longer contains its item's value gets an unsolicited
        // refresh (same width, recentered).
        let filled = self.window.len();
        for client in self.topo.clients() {
            let hops = self.depths[client.index()];
            for item in 0..filled {
                let truth = self.window.get(item).expect("within filled range");
                let st = &mut self.items[client.index() - 1][item];
                st.record(Event::Write { at: now });
                let Some(interval) = st.interval else {
                    continue;
                };
                if !interval.contains(truth) {
                    // The refresh message is being paid for anyway, so the
                    // server attaches a newly optimized refresh rate —
                    // possibly "stop caching" when writes dominate.
                    ledger.charge_hops(MsgKind::Update, hops);
                    let k = {
                        let st = &self.items[client.index() - 1][item];
                        self.optimal_width_bin(st, now)
                    };
                    let st = &mut self.items[client.index() - 1][item];
                    st.width_bin = k;
                    if k == WIDTH_LEVELS {
                        st.interval = None;
                    } else {
                        let half = 0.5 * k as f64 * self.value_span / WIDTH_LEVELS as f64;
                        st.interval = Some(ValueRange::new(truth - half, truth + half));
                    }
                }
            }
        }
    }

    fn on_query(
        &mut self,
        now: u64,
        client: NodeId,
        query: &InnerProductQuery,
        ledger: &mut MessageLedger,
    ) -> QueryOutcome {
        let hops = self.depths[client.index()];
        let mut value = 0.0;
        let mut all_local = true;
        for (pos, &item) in query.indices().iter().enumerate() {
            let tol = per_item_tolerance(query, pos);
            let tol_bin = self.tol_bin(tol);
            let truth = self.window.get(item).unwrap_or(0.0);
            let st = &mut self.items[client.index() - 1][item];
            st.record(Event::Read { tol_bin, at: now });
            let width = st.width_bin as f64 * self.value_span / WIDTH_LEVELS as f64;
            let hit = st.interval.is_some() && width <= tol;
            if hit {
                value += query.weights()[pos] * st.interval.expect("hit").midpoint();
                continue;
            }
            // Miss: request up (control, weight w per edge), reply down
            // (data, cost 1 per edge) carrying the value and a freshly
            // optimized width.
            all_local = false;
            for _ in 0..hops {
                ledger.charge_weighted(MsgKind::Control, self.control_weight);
            }
            ledger.charge_hops(MsgKind::Answer, hops);
            let k = {
                let st = &self.items[client.index() - 1][item];
                self.optimal_width_bin(st, now)
            };
            let st = &mut self.items[client.index() - 1][item];
            st.width_bin = k;
            if k == WIDTH_LEVELS {
                st.interval = None; // no caching
            } else {
                let half = 0.5 * k as f64 * self.value_span / WIDTH_LEVELS as f64;
                st.interval = Some(ValueRange::new(truth - half, truth + half));
            }
            value += query.weights()[pos] * truth;
        }
        QueryOutcome {
            answered_at: if all_local { client } else { NodeId::SOURCE },
            value,
            local_hit: all_local,
        }
    }

    fn on_phase_end(&mut self, _now: u64, _ledger: &mut MessageLedger) {
        // Divergence caching has no phase structure.
    }

    fn approximation_count(&self) -> usize {
        self.items
            .iter()
            .flat_map(|per_client| per_client.iter())
            .filter(|st| st.interval.is_some())
            .count()
    }

    fn name(&self) -> &'static str {
        "DC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(window: usize) -> DivergenceCaching {
        DivergenceCaching::new(Topology::single_client(), window, 100.0, 0.1)
    }

    #[test]
    fn first_read_misses_then_caches() {
        let mut dc = scheme(8);
        let mut ledger = MessageLedger::new();
        for (t, v) in (0..16).map(|i| (i as u64, 50.0)) {
            dc.on_data(t, v, &mut ledger);
        }
        assert_eq!(ledger.total(), 0, "nothing cached yet, no refreshes");
        let q = InnerProductQuery::linear(2, 50.0);
        let out = dc.on_query(16, NodeId(1), &q, &mut ledger);
        assert!(!out.local_hit, "cold cache must miss");
        let miss_cost = ledger.total();
        assert!(miss_cost >= 2, "request + reply per missing item");
        // Repeat reads: the server chose a width; with a stable value and
        // repeated identical tolerances, reads should start hitting.
        for t in 17..30 {
            dc.on_query(t, NodeId(1), &q, &mut ledger);
        }
        let out = dc.on_query(30, NodeId(1), &q, &mut ledger);
        assert!(out.local_hit, "warm cache with stable data should hit");
    }

    #[test]
    fn stable_data_with_cached_interval_sends_no_refreshes() {
        let mut dc = scheme(4);
        let mut ledger = MessageLedger::new();
        for t in 0..8 {
            dc.on_data(t, 42.0, &mut ledger);
        }
        let q = InnerProductQuery::linear(2, 80.0);
        for t in 8..20 {
            dc.on_query(t, NodeId(1), &q, &mut ledger);
        }
        let before = ledger.count(MsgKind::Update);
        for t in 20..40 {
            dc.on_data(t, 42.0, &mut ledger);
        }
        assert_eq!(
            ledger.count(MsgKind::Update),
            before,
            "constant data never escapes its interval"
        );
    }

    #[test]
    fn wild_data_with_reads_pays_refreshes_or_uncaches() {
        let mut dc = scheme(4);
        let mut ledger = MessageLedger::new();
        let mut t = 0u64;
        let q = InnerProductQuery::linear(2, 10.0);
        for i in 0..200 {
            dc.on_data(t, if i % 2 == 0 { 0.0 } else { 100.0 }, &mut ledger);
            t += 1;
            if i % 4 == 0 {
                dc.on_query(t, NodeId(1), &q, &mut ledger);
                t += 1;
            }
        }
        // With writes dominating reads, the optimizer should mostly give
        // up on caching (width level M -> interval None), bounding the
        // refresh traffic.
        let updates = ledger.count(MsgKind::Update);
        let answers = ledger.count(MsgKind::Answer);
        assert!(
            updates < 120,
            "adaptivity should stop most unsolicited refreshes ({updates})"
        );
        assert!(answers > 0);
    }

    #[test]
    fn tolerance_binning() {
        let dc = scheme(4);
        assert_eq!(dc.tol_bin(0.0), 0);
        assert_eq!(dc.tol_bin(100.0), WIDTH_LEVELS);
        assert_eq!(dc.tol_bin(1e9), WIDTH_LEVELS);
        let unit = 100.0 / WIDTH_LEVELS as f64;
        assert_eq!(dc.tol_bin(unit * 2.5), 2);
    }

    #[test]
    fn cost_model_prefers_no_caching_under_pure_writes() {
        let dc = scheme(4);
        let mut st = ItemState::default();
        for t in 0..HISTORY as u64 {
            st.record(Event::Write { at: t });
        }
        // Pure writes, no reads: cost(M) = (w+1)·0 = 0 while every cached
        // width pays for escaping writes, so no caching wins.
        let k = dc.optimal_width_bin(&st, HISTORY as u64);
        assert_eq!(k, WIDTH_LEVELS);
    }

    #[test]
    fn cost_model_prefers_tight_caching_under_pure_reads() {
        let dc = scheme(4);
        let mut st = ItemState::default();
        for t in 0..HISTORY as u64 {
            st.record(Event::Read { tol_bin: 1, at: t });
        }
        // Pure reads with tolerance bin 1: width 1 serves them all at
        // cost (M-1)/M·r; width 0 is free of read cost and write cost is
        // zero -> k = 0 or 1 both beat no-caching.
        let k = dc.optimal_width_bin(&st, HISTORY as u64);
        assert!(k <= 1, "expected tight caching, got {k}");
    }

    #[test]
    fn space_is_linear_in_items() {
        let mut dc = DivergenceCaching::new(Topology::single_client(), 32, 100.0, 0.1);
        let mut ledger = MessageLedger::new();
        for t in 0..64 {
            dc.on_data(t, (t % 50) as f64, &mut ledger);
        }
        // Query everything with loose tolerance: every item gets cached.
        let q = InnerProductQuery::linear(32, 1e6);
        dc.on_query(100, NodeId(1), &q, &mut ledger);
        for t in 101..140 {
            dc.on_query(t, NodeId(1), &q, &mut ledger);
        }
        assert!(
            dc.approximation_count() > 16,
            "per-item caching should hold O(N) approximations, got {}",
            dc.approximation_count()
        );
    }
}
