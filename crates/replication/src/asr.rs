//! SWAT-ASR: adaptive stream replication over window segments (§3).
//!
//! The window is partitioned into the `O(log N)` dyadic segments of
//! Table 1, and each segment independently runs an ADR-style replication
//! scheme on the spanning tree:
//!
//! * The **source** holds the stream and keeps, per segment, an
//!   approximation of its current contents — by default the exact
//!   `[min, max]` range (the 1-coefficient case the paper develops; see
//!   [`RangeApprox`]), or, in the paper's sketched general case, `k`
//!   Haar coefficients plus a deviation bound ([`CoeffApprox`]). When an
//!   arrival moves the segment outside what the stored approximation can
//!   still soundly promise, that is a *write*: the stored approximation
//!   is replaced and the update is pushed to subscribed children, each
//!   of which re-propagates only if its own stale copy fails the same
//!   soundness test — the paper's enclosure-based suppression
//!   (Figure 8a), generalized by [`SegmentApprox::suppresses`].
//! * A **query** `(I, W, δ)` is decomposed over segments; a node answers
//!   locally iff every touched segment is cached and
//!   `Σ wᵢ · uncertainty(segment(i)) ≤ δ`, otherwise it forwards the
//!   whole query to its parent (one message per edge). The answering node
//!   attributes a read to the child the query arrived through (or to its
//!   local counter) and marks unknown children *interested*.
//! * At every **phase end** (Figure 8b) each node runs, per segment, the
//!   *contraction* test (an R-fringe replica whose reads fell below the
//!   writes it received decaches, notifying its parent with one control
//!   message) and the *expansion* tests (children whose reads exceeded
//!   the writes get a replica if merely interested, or a fresh
//!   approximation if already subscribed). Counts then reset.
//!
//! The replication scheme of every segment is a connected subtree
//! containing the source at all times, and every cached approximation
//! honors its advertised uncertainty against the segment's true current
//! values — both enforced by tests.

use std::collections::BTreeMap;

use crate::approx::{CoeffApprox, RangeApprox, SegmentApprox};
use crate::scheme::{QueryOutcome, ReplicationScheme};
use crate::segments::{segment_of, window_segments, Segment};
use swat_net::{MessageLedger, MsgKind, NodeId, Topology};
use swat_tree::{ExactWindow, InnerProductQuery, ValueRange};

/// Per-node, per-segment replication state — one row of the paper's
/// directory (Table 1) plus the phase counters of §3.
///
/// `pub(crate)` so the fault-aware driver in [`crate::chaos`] can run the
/// same rows through an adjudicated, delayed transport.
#[derive(Debug, Clone)]
pub(crate) struct SegmentRow<A> {
    /// The cached approximation; `None` means this node is not in the
    /// segment's replication scheme.
    pub(crate) approx: Option<A>,
    /// Children holding replicas (the subscription list).
    pub(crate) subscribed: Vec<NodeId>,
    /// Children that asked queries but hold no replica.
    pub(crate) interested: Vec<NodeId>,
    /// Reads served per child this phase.
    pub(crate) read_counts: BTreeMap<NodeId, u64>,
    /// Queries answered locally for this node's own clients this phase.
    pub(crate) local_reads: u64,
    /// Updates received (approximation moved unsoundly) this phase.
    pub(crate) writes: u64,
    /// Sequence number of the approximation held (the source's write
    /// epoch for this segment at adoption time). Always 0 on the
    /// synchronous path; maintained by the chaos driver.
    pub(crate) seq: u64,
    /// Whether the held approximation is known to no longer soundly stand
    /// in for the segment's truth (a missed or in-flight update). Stale
    /// rows never answer queries. Always `false` on the synchronous path.
    pub(crate) stale: bool,
}

impl<A> Default for SegmentRow<A> {
    fn default() -> Self {
        SegmentRow {
            approx: None,
            subscribed: Vec::new(),
            interested: Vec::new(),
            read_counts: BTreeMap::new(),
            local_reads: 0,
            writes: 0,
            seq: 0,
            stale: false,
        }
    }
}

impl<A> SegmentRow<A> {
    fn is_subscribed(&self, v: NodeId) -> bool {
        self.subscribed.contains(&v)
    }

    fn is_interested(&self, v: NodeId) -> bool {
        self.interested.contains(&v)
    }

    pub(crate) fn note_read(&mut self, from: Option<NodeId>) {
        match from {
            None => self.local_reads += 1,
            Some(v) => {
                if !self.is_subscribed(v) && !self.is_interested(v) {
                    self.interested.push(v);
                }
                *self.read_counts.entry(v).or_insert(0) += 1;
            }
        }
    }

    pub(crate) fn reads_served(&self) -> u64 {
        self.local_reads + self.read_counts.values().sum::<u64>()
    }

    pub(crate) fn reset_phase(&mut self) {
        self.read_counts.clear();
        self.local_reads = 0;
        self.writes = 0;
        self.interested.clear();
    }

    /// The approximation usable for answering: present and not stale.
    pub(crate) fn usable(&self) -> Option<&A> {
        if self.stale {
            None
        } else {
            self.approx.as_ref()
        }
    }
}

/// The SWAT-ASR scheme over a given topology, generic over the segment
/// approximation (`RangeApprox` by default — the paper's 1-coefficient
/// setting).
#[derive(Debug)]
pub struct SwatAsr<A: SegmentApprox = RangeApprox> {
    topo: Topology,
    segments: Vec<Segment>,
    window: ExactWindow,
    /// Coefficient budget handed to `A::from_segment`.
    k: usize,
    /// `rows[node][segment]`.
    rows: Vec<Vec<SegmentRow<A>>>,
    /// Whether sound-stale updates are suppressed (the paper's behaviour;
    /// disable only for the ablation benchmark).
    suppress_enclosed: bool,
}

/// SWAT-ASR replicating `k`-coefficient summaries plus deviation bounds —
/// the paper's §3 "general case".
pub type CoeffSwatAsr = SwatAsr<CoeffApprox>;

impl SwatAsr<RangeApprox> {
    /// A fresh scheme in the paper's 1-coefficient configuration: only
    /// the source is in every segment's replication scheme (it owns the
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two >= 2.
    pub fn new(topo: Topology, window: usize) -> Self {
        Self::with_enclosure_suppression(topo, window, true)
    }

    /// As [`SwatAsr::new`], optionally disabling the enclosure-based
    /// update suppression (every changed approximation then propagates to
    /// all subscribers) — an ablation of the paper's design choice.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two >= 2.
    pub fn with_enclosure_suppression(topo: Topology, window: usize, enabled: bool) -> Self {
        SwatAsr::with_approx(topo, window, 1, enabled)
    }

    /// The cached range of `node` for segment `seg`, if any.
    pub fn cached_range(&self, node: NodeId, seg: usize) -> Option<ValueRange> {
        self.cached_approx(node, seg).map(RangeApprox::range)
    }
}

impl SwatAsr<CoeffApprox> {
    /// A fresh scheme replicating `k`-coefficient summaries — the general
    /// case of §3.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two >= 2 and `k >= 1`.
    pub fn with_coefficients(topo: Topology, window: usize, k: usize) -> Self {
        assert!(k >= 1, "coefficient budget must be positive");
        SwatAsr::with_approx(topo, window, k, true)
    }
}

impl<A: SegmentApprox> SwatAsr<A> {
    fn with_approx(topo: Topology, window: usize, k: usize, suppress: bool) -> Self {
        let segments = window_segments(window);
        let rows = topo
            .nodes()
            .map(|_| vec![SegmentRow::default(); segments.len()])
            .collect();
        SwatAsr {
            topo,
            segments,
            window: ExactWindow::new(window),
            k,
            rows,
            suppress_enclosed: suppress,
        }
    }

    /// The segment partition in use.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The cached approximation of `node` for segment `seg`, if any.
    pub fn cached_approx(&self, node: NodeId, seg: usize) -> Option<&A> {
        self.rows[node.index()][seg].approx.as_ref()
    }

    /// Exact range of segment `seg`'s *current* contents (source truth);
    /// `None` while the window has no data there yet.
    pub fn exact_segment_range(&self, seg: usize) -> Option<ValueRange> {
        let s = self.segments[seg];
        if self.window.len() <= s.lo {
            return None;
        }
        let hi = s.hi.min(self.window.len() - 1);
        Some(self.window.range_of(s.lo, hi))
    }

    /// Whether the sliding window has filled to capacity. While filling,
    /// queries may touch indices with no value yet; exact answers treat
    /// those as zero while approximations extrapolate, so the `δ`
    /// guarantee only bites once the window is full.
    pub(crate) fn window_full(&self) -> bool {
        self.window.len() == self.window.capacity()
    }

    /// Current values of segment `seg`, newest first (`None` while empty).
    pub(crate) fn segment_values(&self, seg: usize) -> Option<Vec<f64>> {
        let s = self.segments[seg];
        if self.window.len() <= s.lo {
            return None;
        }
        let hi = s.hi.min(self.window.len() - 1);
        Some(
            (s.lo..=hi)
                .map(|i| self.window.get(i).expect("in range"))
                .collect(),
        )
    }

    /// Push `approx` down the subscription tree from `node`, charging one
    /// update message per edge; receivers adopt it and re-propagate only
    /// when their stale copy fails the soundness test (Figure 8a).
    fn propagate(&mut self, node: NodeId, seg: usize, approx: &A, ledger: &mut MessageLedger) {
        let subscribers = self.rows[node.index()][seg].subscribed.clone();
        for child in subscribers {
            ledger.charge(MsgKind::Update);
            let row = &mut self.rows[child.index()][seg];
            let old = row.approx.replace(approx.clone());
            row.writes += 1;
            let quiet = match &old {
                Some(o) if self.suppress_enclosed => A::suppresses(o, approx),
                Some(o) => *o == *approx,
                None => false,
            };
            if !quiet {
                self.propagate(child, seg, approx, ledger);
            }
        }
    }

    /// Whether `node` can answer `query` from its cached approximations,
    /// and the answer if so. The source answers unconditionally, falling
    /// back to exact values when its own approximations are too coarse.
    /// Stale rows (chaos driver only) count as uncached: a replica that
    /// missed an update disowns its bound rather than serve it.
    pub(crate) fn try_answer(&self, node: NodeId, query: &InnerProductQuery) -> Option<f64> {
        let n = self.window.capacity();
        let rows = &self.rows[node.index()];
        let mut err = 0.0;
        let mut value = 0.0;
        for (pos, &idx) in query.indices().iter().enumerate() {
            let seg = segment_of(n, idx);
            let Some(approx) = rows[seg].usable() else {
                if self.topo.is_source(node) {
                    // The source owns the stream: answer exactly.
                    return Some(self.answer_exact(query));
                }
                return None;
            };
            let w = query.weights()[pos];
            err += w.abs() * approx.uncertainty();
            value += w * approx.value_at(idx - self.segments[seg].lo);
        }
        if err <= query.delta() {
            Some(value)
        } else if self.topo.is_source(node) {
            Some(self.answer_exact(query))
        } else {
            None
        }
    }

    pub(crate) fn answer_exact(&self, query: &InnerProductQuery) -> f64 {
        query
            .indices()
            .iter()
            .zip(query.weights())
            .map(|(&idx, &w)| w * self.window.get(idx).unwrap_or(0.0))
            .sum()
    }

    /// Segment indices a query touches (deduplicated, ascending).
    pub(crate) fn touched_segments(&self, query: &InnerProductQuery) -> Vec<usize> {
        let n = self.window.capacity();
        let mut segs: Vec<usize> = query
            .indices()
            .iter()
            .map(|&idx| segment_of(n, idx))
            .collect();
        segs.sort_unstable();
        segs.dedup();
        segs
    }

    /// Nodes currently holding a replica of `seg` (the replication scheme
    /// R) — used by the connectivity invariant test.
    pub fn replica_holders(&self, seg: usize) -> Vec<NodeId> {
        self.topo
            .nodes()
            .filter(|&v| self.rows[v.index()][seg].approx.is_some())
            .collect()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The row of `node` for segment `seg` (chaos-driver access).
    pub(crate) fn row(&self, node: NodeId, seg: usize) -> &SegmentRow<A> {
        &self.rows[node.index()][seg]
    }

    /// Mutable row access (chaos-driver transport effects).
    pub(crate) fn row_mut(&mut self, node: NodeId, seg: usize) -> &mut SegmentRow<A> {
        &mut self.rows[node.index()][seg]
    }

    /// Whether enclosure-based update suppression is on.
    pub(crate) fn suppression_enabled(&self) -> bool {
        self.suppress_enclosed
    }

    /// Absorb one arrival at the source: push into the window, recompute
    /// every segment's approximation, and return the `(segment, approx)`
    /// pairs whose stored copy could not soundly stand in (the *writes*
    /// that must propagate). Shared by the synchronous [`Self::on_data`]
    /// and the chaos driver, which replaces direct propagation with
    /// adjudicated sends.
    pub(crate) fn ingest(&mut self, value: f64) -> Vec<(usize, A)> {
        self.window.push(value);
        let mut out = Vec::new();
        for seg in 0..self.segments.len() {
            let Some(values) = self.segment_values(seg) else {
                continue;
            };
            let new_approx = A::from_segment(&values, self.k);
            let row = &mut self.rows[0][seg];
            let old = row.approx.take();
            let quiet = match &old {
                Some(o) if self.suppress_enclosed => A::suppresses(o, &new_approx),
                Some(o) => *o == new_approx,
                None => false,
            };
            row.approx = Some(new_approx.clone());
            if !quiet {
                row.writes += 1;
                out.push((seg, new_approx));
            }
        }
        out
    }
}

impl<A: SegmentApprox> ReplicationScheme for SwatAsr<A> {
    fn on_data(&mut self, _now: u64, value: f64, ledger: &mut MessageLedger) {
        // Recompute every segment's approximation; one the stale stored
        // copy cannot soundly stand in for is a write.
        for (seg, new_approx) in self.ingest(value) {
            self.propagate(NodeId::SOURCE, seg, &new_approx, ledger);
        }
    }

    fn on_query(
        &mut self,
        _now: u64,
        client: NodeId,
        query: &InnerProductQuery,
        ledger: &mut MessageLedger,
    ) -> QueryOutcome {
        let touched = self.touched_segments(query);
        let mut node = client;
        let mut from: Option<NodeId> = None;
        let mut hops = 0usize;
        loop {
            if let Some(value) = self.try_answer(node, query) {
                for &seg in &touched {
                    self.rows[node.index()][seg].note_read(from);
                }
                if hops > 0 {
                    ledger.charge_hops(MsgKind::Answer, hops);
                }
                return QueryOutcome {
                    answered_at: node,
                    value,
                    local_hit: hops == 0,
                };
            }
            let parent = self.topo.parent(node).expect("the source always answers");
            ledger.charge(MsgKind::QueryForward);
            from = Some(node);
            node = parent;
            hops += 1;
        }
    }

    fn on_phase_end(&mut self, _now: u64, ledger: &mut MessageLedger) {
        let n_segs = self.segments.len();
        // Contraction first, deepest nodes first, so a decached child is
        // out of its parent's subscription list before expansion runs.
        let mut order: Vec<NodeId> = self.topo.nodes().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.topo.depth(v)));
        for &u in &order {
            if self.topo.is_source(u) {
                continue; // "the source is always a member"
            }
            for seg in 0..n_segs {
                let row = &self.rows[u.index()][seg];
                let is_fringe = row.approx.is_some() && row.subscribed.is_empty();
                if is_fringe && row.reads_served() < row.writes {
                    // Decache and unsubscribe at the parent (one control
                    // message up).
                    self.rows[u.index()][seg].approx = None;
                    ledger.charge(MsgKind::Control);
                    let parent = self.topo.parent(u).expect("non-source has a parent");
                    self.rows[parent.index()][seg]
                        .subscribed
                        .retain(|&v| v != u);
                }
            }
        }
        // Expansion, top-down.
        let mut order: Vec<NodeId> = self.topo.nodes().collect();
        order.sort_by_key(|&v| self.topo.depth(v));
        for &u in &order {
            for seg in 0..n_segs {
                if self.rows[u.index()][seg].approx.is_none() {
                    continue;
                }
                let approx = self.rows[u.index()][seg]
                    .approx
                    .clone()
                    .expect("checked above");
                let writes = self.rows[u.index()][seg].writes;
                // Refresh subscribed children that kept missing.
                let subscribed = self.rows[u.index()][seg].subscribed.clone();
                for v in subscribed {
                    let reads = self.rows[u.index()][seg]
                        .read_counts
                        .get(&v)
                        .copied()
                        .unwrap_or(0);
                    if writes < reads {
                        ledger.charge(MsgKind::Update);
                        let row = &mut self.rows[v.index()][seg];
                        row.approx = Some(approx.clone());
                        row.writes += 1;
                    }
                }
                // Promote interested children that read enough.
                let interested = std::mem::take(&mut self.rows[u.index()][seg].interested);
                for v in interested {
                    let reads = self.rows[u.index()][seg]
                        .read_counts
                        .get(&v)
                        .copied()
                        .unwrap_or(0);
                    if writes < reads {
                        self.rows[u.index()][seg].subscribed.push(v);
                        ledger.charge(MsgKind::Insert);
                        self.rows[v.index()][seg].approx = Some(approx.clone());
                    }
                }
            }
        }
        // Reset all phase counters.
        for node_rows in &mut self.rows {
            for row in node_rows {
                row.reset_phase();
            }
        }
    }

    fn approximation_count(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|rows| rows.iter())
            .filter(|r| r.approx.is_some())
            .count()
    }

    fn name(&self) -> &'static str {
        "SWAT-ASR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(asr: &mut SwatAsr, values: impl IntoIterator<Item = f64>) -> MessageLedger {
        let mut ledger = MessageLedger::new();
        for v in values {
            asr.on_data(0, v, &mut ledger);
        }
        ledger
    }

    #[test]
    fn source_tracks_exact_segment_ranges() {
        let mut asr = SwatAsr::new(Topology::single_client(), 8);
        feed(&mut asr, (0..16).map(|i| i as f64));
        // Window newest-first: 15, 14, ..., 8. Segments (0,1) (2,3) (4,7).
        assert_eq!(
            asr.cached_range(NodeId::SOURCE, 0).unwrap(),
            ValueRange::new(14.0, 15.0)
        );
        assert_eq!(
            asr.cached_range(NodeId::SOURCE, 1).unwrap(),
            ValueRange::new(12.0, 13.0)
        );
        assert_eq!(
            asr.cached_range(NodeId::SOURCE, 2).unwrap(),
            ValueRange::new(8.0, 11.0)
        );
    }

    #[test]
    fn no_updates_flow_before_any_subscription() {
        let mut asr = SwatAsr::new(Topology::single_client(), 8);
        let ledger = feed(&mut asr, (0..50).map(|i| (i % 9) as f64));
        assert_eq!(ledger.total(), 0, "nobody subscribed; no messages");
        assert_eq!(asr.approximation_count(), 3, "only the source's rows");
    }

    #[test]
    fn query_miss_forwards_to_source_and_counts_messages() {
        let mut asr = SwatAsr::new(Topology::chain(2), 8);
        let mut ledger = MessageLedger::new();
        feed(&mut asr, (0..20).map(|i| i as f64));
        let q = InnerProductQuery::linear(4, 100.0);
        let out = asr.on_query(0, NodeId(2), &q, &mut ledger);
        assert_eq!(out.answered_at, NodeId::SOURCE);
        assert!(!out.local_hit);
        // 2 hops up + 2 hops of answer.
        assert_eq!(ledger.count(MsgKind::QueryForward), 2);
        assert_eq!(ledger.count(MsgKind::Answer), 2);
    }

    #[test]
    fn expansion_installs_replica_after_read_heavy_phase() {
        let mut asr = SwatAsr::new(Topology::single_client(), 8);
        let mut ledger = MessageLedger::new();
        feed(&mut asr, std::iter::repeat_n(5.0, 20));
        let q = InnerProductQuery::linear(4, 100.0);
        // Three reads, zero writes in the phase.
        for _ in 0..3 {
            asr.on_query(0, NodeId(1), &q, &mut ledger);
        }
        assert!(asr.cached_range(NodeId(1), 0).is_none());
        asr.on_phase_end(0, &mut ledger);
        // Client now holds replicas of the touched segments (0 and 1).
        assert!(asr.cached_range(NodeId(1), 0).is_some());
        assert!(asr.cached_range(NodeId(1), 1).is_some());
        assert!(ledger.count(MsgKind::Insert) >= 2);
        // Subsequent identical queries are local hits.
        let before = ledger.total();
        let out = asr.on_query(0, NodeId(1), &q, &mut ledger);
        assert!(out.local_hit);
        assert_eq!(ledger.total(), before);
    }

    #[test]
    fn contraction_drops_replica_after_write_heavy_phase() {
        let mut asr = SwatAsr::new(Topology::single_client(), 8);
        let mut ledger = MessageLedger::new();
        feed(&mut asr, std::iter::repeat_n(5.0, 20));
        let q = InnerProductQuery::linear(2, 100.0); // touches segment 0 only
        for _ in 0..3 {
            asr.on_query(0, NodeId(1), &q, &mut ledger);
        }
        asr.on_phase_end(0, &mut ledger);
        assert!(asr.cached_range(NodeId(1), 0).is_some());
        // Now a write-heavy phase with zero reads: wildly varying data.
        feed(&mut asr, (0..20).map(|i| ((i * 37) % 100) as f64));
        asr.on_phase_end(0, &mut ledger);
        assert!(
            asr.cached_range(NodeId(1), 0).is_none(),
            "fringe replica must contract"
        );
        assert!(ledger.count(MsgKind::Control) >= 1, "unsubscribe message");
    }

    #[test]
    fn enclosure_suppresses_updates() {
        let mut asr = SwatAsr::new(Topology::single_client(), 8);
        let mut ledger = MessageLedger::new();
        // Oscillate widely so segment ranges are wide, then subscribe.
        feed(
            &mut asr,
            (0..16).map(|i| if i % 2 == 0 { 0.0 } else { 100.0 }),
        );
        let q = InnerProductQuery::linear(2, 1000.0);
        for _ in 0..3 {
            asr.on_query(0, NodeId(1), &q, &mut ledger);
        }
        asr.on_phase_end(0, &mut ledger);
        assert!(asr.cached_range(NodeId(1), 0).is_some());
        // Keep oscillating inside [0, 100]: every new segment range is
        // enclosed by the cached [0, 100], so no updates flow.
        let l2 = feed(
            &mut asr,
            (0..40).map(|i| if i % 2 == 0 { 10.0 } else { 90.0 }),
        );
        assert_eq!(l2.total(), 0, "enclosed ranges must not propagate");
    }

    #[test]
    fn cached_ranges_always_enclose_truth() {
        // Soundness invariant: any cached range encloses the segment's
        // true current values, at every step.
        let mut asr = SwatAsr::new(Topology::chain(3), 16);
        let mut ledger = MessageLedger::new();
        let data: Vec<f64> = (0..300)
            .map(|i| (((i * 17) % 83) as f64).sin() * 40.0 + 50.0)
            .collect();
        let q = InnerProductQuery::linear(8, 60.0);
        for (i, &v) in data.iter().enumerate() {
            asr.on_data(0, v, &mut ledger);
            if i % 3 == 0 {
                asr.on_query(0, NodeId(3), &q, &mut ledger);
            }
            if i % 20 == 19 {
                asr.on_phase_end(0, &mut ledger);
            }
            for seg in 0..asr.segments().len() {
                let Some(truth) = asr.exact_segment_range(seg) else {
                    continue;
                };
                for node in asr.topology().nodes() {
                    if let Some(cached) = asr.cached_range(node, seg) {
                        assert!(
                            cached.encloses(&truth),
                            "step {i}: node {node} seg {seg}: {cached} !⊇ {truth}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn replication_scheme_stays_connected() {
        let mut asr = SwatAsr::new(Topology::complete_binary(2), 16);
        let mut ledger = MessageLedger::new();
        let data: Vec<f64> = (0..400).map(|i| ((i * 29) % 100) as f64).collect();
        for (i, &v) in data.iter().enumerate() {
            asr.on_data(0, v, &mut ledger);
            let client = NodeId(1 + (i % 6));
            let q = InnerProductQuery::linear(4, 200.0);
            asr.on_query(0, client, &q, &mut ledger);
            if i % 15 == 14 {
                asr.on_phase_end(0, &mut ledger);
            }
            for seg in 0..asr.segments().len() {
                let holders = asr.replica_holders(seg);
                if holders.is_empty() {
                    continue;
                }
                assert!(
                    holders.contains(&NodeId::SOURCE),
                    "source must hold seg {seg}"
                );
                for &h in &holders {
                    if let Some(p) = asr.topology().parent(h) {
                        assert!(
                            holders.contains(&p),
                            "step {i}: holder {h} of seg {seg} has non-holder parent {p}"
                        );
                    }
                }
            }
        }
    }

    // ---- the §3 "general case": k-coefficient replication ----

    #[test]
    fn coefficient_asr_answers_and_caches() {
        let mut asr = SwatAsr::with_coefficients(Topology::single_client(), 16, 4);
        let mut ledger = MessageLedger::new();
        for i in 0..48 {
            asr.on_data(i, 50.0 + (i as f64 * 0.1).sin(), &mut ledger);
        }
        // Close the write-heavy warm-up phase, then run a read-only phase:
        // expansion requires reads to exceed writes.
        asr.on_phase_end(0, &mut ledger);
        let q = InnerProductQuery::linear(8, 5.0);
        for t in 0..4 {
            asr.on_query(t, NodeId(1), &q, &mut ledger);
        }
        asr.on_phase_end(1, &mut ledger);
        assert!(
            asr.cached_approx(NodeId(1), 0).is_some(),
            "replica installed"
        );
        let out = asr.on_query(9, NodeId(1), &q, &mut ledger);
        assert!(
            out.local_hit,
            "lossless coefficient replicas satisfy delta=5"
        );
        assert!(out.value.is_finite());
    }

    #[test]
    fn coefficient_replicas_honor_their_deviation() {
        // Soundness: every cached coefficient summary's reconstruction is
        // within its advertised deviation of the current true values.
        let mut asr = SwatAsr::with_coefficients(Topology::chain(2), 16, 2);
        let mut ledger = MessageLedger::new();
        let data: Vec<f64> = (0..260)
            .map(|i| 50.0 + 20.0 * ((i as f64) * 0.05).sin())
            .collect();
        let q = InnerProductQuery::linear(8, 30.0);
        for (i, &v) in data.iter().enumerate() {
            asr.on_data(i as u64, v, &mut ledger);
            if i % 2 == 0 {
                asr.on_query(i as u64, NodeId(2), &q, &mut ledger);
            }
            if i % 20 == 19 {
                asr.on_phase_end(i as u64, &mut ledger);
            }
            if i < 16 {
                continue; // window still filling
            }
            for (seg_idx, seg) in asr.segments().to_vec().iter().enumerate() {
                for node in asr.topology().nodes() {
                    let Some(approx) = asr.cached_approx(node, seg_idx) else {
                        continue;
                    };
                    for offset in 0..seg.width() {
                        let truth = data[i - (seg.lo + offset)];
                        assert!(
                            (truth - approx.value_at(offset)).abs() <= approx.deviation() + 1e-9,
                            "step {i} node {node} seg {seg_idx} offset {offset}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_coefficients_serve_tighter_precision_locally() {
        // Read-heavy wavy workload with a tight delta: range replicas
        // (width ~ 14 > delta) can never answer locally, while lossless
        // coefficient replicas can — each pushed update restores their
        // freshness and their deviation is zero.
        let data: Vec<f64> = (0..400)
            .map(|i| 50.0 + 10.0 * ((i as f64) * 0.8).sin())
            .collect();
        fn drive<A: crate::approx::SegmentApprox>(mut asr: SwatAsr<A>, data: &[f64]) -> u32 {
            let mut ledger = MessageLedger::new();
            let q = InnerProductQuery::linear(4, 4.0);
            let mut hits = 0u32;
            for (i, &v) in data.iter().enumerate() {
                asr.on_data(i as u64, v, &mut ledger);
                // Three reads per write: caching pays.
                for r in 0..3u64 {
                    if asr
                        .on_query(i as u64 * 4 + r, NodeId(1), &q, &mut ledger)
                        .local_hit
                    {
                        hits += 1;
                    }
                }
                if i % 20 == 19 {
                    asr.on_phase_end(i as u64, &mut ledger);
                }
            }
            hits
        }
        let range_hits = drive(SwatAsr::new(Topology::single_client(), 16), &data);
        let coeff_hits = drive(
            SwatAsr::with_coefficients(Topology::single_client(), 16, 8),
            &data,
        );
        assert!(
            coeff_hits > range_hits,
            "k=8 hits {coeff_hits} should beat range hits {range_hits}"
        );
    }
}
