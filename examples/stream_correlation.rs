//! Multiple streams, continuous queries, and whole-stream history —
//! the paper's extensions in one scenario.
//!
//! Two correlated sensor streams (temperature at two nearby sites) and
//! one unrelated stream (network load) flow in. We:
//!
//! 1. track pairwise correlations from the summaries ([`StreamSet`]),
//! 2. keep a standing alert query over the newest values
//!    ([`ContinuousEngine`]),
//! 3. retain the *entire* history of one stream at logarithmic cost
//!    ([`GrowingSwat`]).
//!
//! ```sh
//! cargo run --release --example stream_correlation
//! ```

use swat::tree::{ContinuousEngine, GrowingSwat, InnerProductQuery, StreamSet, SwatConfig};

fn main() {
    let config = SwatConfig::new(128).expect("valid");
    // Correlation estimates improve with per-node detail: k = 8
    // coefficients give the reconstructions enough degrees of freedom
    // that unrelated streams do not alias on shared block boundaries.
    let corr_config = SwatConfig::with_coefficients(128, 8).expect("valid");
    let mut set = StreamSet::new(corr_config, 3);
    let mut alerts = ContinuousEngine::new(config);
    let mut history = GrowingSwat::new(1);

    let mut rng = swat::sim::rng_stream(42, 0);
    use rand::Rng;
    let mut fired = 0u32;
    for i in 0..4000u32 {
        let t = f64::from(i);
        let base = 70.0 + 12.0 * (t * 0.01).sin();
        let site_a = base + rng.gen_range(-1.0..1.0);
        let site_b = base * 0.9 + 5.0 + rng.gen_range(-1.0..1.0);
        let load = rng.gen_range(0.0..100.0);
        set.push_row(&[site_a, site_b, load]);
        history.push(site_a);
        fired += alerts.push(site_a).len() as u32;
        if i == 500 {
            // Standing query: exponentially weighted recent temperature,
            // evaluated every 50 arrivals.
            alerts.subscribe(InnerProductQuery::exponential(16, 5.0), 50);
        }
    }

    println!("pairwise correlations over the last 128 samples (from summaries):");
    for (a, b, label) in [
        (0usize, 1usize, "site A vs site B (should be strong)"),
        (0, 2, "site A vs network load (should be weak)"),
    ] {
        let rho = set.correlation(a, b, 128).expect("warm");
        println!("  corr(stream {a}, stream {b}) = {rho:+.3}   {label}");
    }

    println!("\nstanding alert query fired {fired} times since registration");

    println!(
        "\nwhole-history summary of site A: {} arrivals in {} levels ({} summaries)",
        history.arrivals(),
        history.levels(),
        history.summary_count()
    );
    for ago in [1usize, 100, 1000, 3500] {
        let p = history.point(ago).expect("covered");
        println!(
            "  temperature {ago:>4} samples ago ~ {:6.2} (±{:.2}, level {})",
            p.value, p.error_bound, p.level
        );
    }
}
