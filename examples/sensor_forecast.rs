//! Forecasting from biased summaries — the paper's §1 motivation:
//! "Applications in forecasting involve predicting the future conditions
//! using the last few measurements … a system which maintains better
//! approximations for the recent data is useful."
//!
//! A weather sensor streams daily maximum temperatures. We keep a SWAT
//! over the last 512 days and, each day, forecast tomorrow from an
//! exponentially weighted inner product over the recent past — computed
//! purely from the O(log N) summary. The punchline: the summary-based
//! forecast tracks the exact-data forecast almost perfectly while
//! storing ~25 numbers instead of 512.
//!
//! ```sh
//! cargo run --release --example sensor_forecast
//! ```

use swat::data::weather;
use swat::tree::{ExactWindow, InnerProductQuery, SwatConfig, SwatTree};

fn main() {
    let window = 512;
    let mut tree = SwatTree::new(SwatConfig::new(window).expect("valid"));
    let mut truth = ExactWindow::new(window);

    // Normalizing constant of the exponential weights (sums to ~2).
    let m = 16;
    let q = InnerProductQuery::exponential(m, f64::INFINITY);
    let weight_sum: f64 = q.weights().iter().sum();

    let mut n_days = 0u32;
    let mut err_summary = 0.0; // |summary forecast - actual|
    let mut err_exact = 0.0; // |exact-data forecast - actual|
    let mut err_persist = 0.0; // |yesterday - actual| (naive baseline)
    let mut divergence = 0.0; // |summary forecast - exact forecast|

    let days = weather::Weather::new(11).take(3000);
    for (day, temp) in days.enumerate() {
        if day >= 2 * window {
            // Forecast BEFORE observing today's value.
            let summary_forecast = tree.inner_product(&q).expect("warm").value / weight_sum;
            let exact_forecast = q.exact(&truth.to_vec()) / weight_sum;
            let persistence = truth.get(0).expect("has data");
            err_summary += (summary_forecast - temp).abs();
            err_exact += (exact_forecast - temp).abs();
            err_persist += (persistence - temp).abs();
            divergence += (summary_forecast - exact_forecast).abs();
            n_days += 1;
        }
        tree.push(temp);
        truth.push(temp);
    }

    let n = f64::from(n_days);
    println!("forecasting daily max temperature over {n_days} evaluation days\n");
    println!("mean absolute forecast error (°F):");
    println!(
        "  exponentially weighted, from SWAT summary : {:.3}",
        err_summary / n
    );
    println!(
        "  exponentially weighted, from exact window : {:.3}",
        err_exact / n
    );
    println!(
        "  persistence (yesterday = tomorrow)        : {:.3}",
        err_persist / n
    );
    println!(
        "\nsummary-vs-exact forecast divergence: {:.4} °F on average",
        divergence / n
    );
    println!(
        "\nstate kept: {} summaries ({} bytes) instead of {} raw values",
        tree.summary_count(),
        tree.space_bytes(),
        window
    );
}
