//! Telecommunications network monitoring — the paper's opening scenario.
//!
//! "A tremendous number of connections are handled every minute by
//! switches. Typically, for each call, a switch dumps a Call Detail
//! Record." We simulate a per-minute call-volume stream with a daily
//! cycle and bursty incidents, maintain a SWAT over the last 1024
//! minutes, and answer the monitoring questions an operations center
//! would ask — with recent minutes weighted most.
//!
//! ```sh
//! cargo run --release --example telecom_monitoring
//! ```

use rand::Rng;
use swat::histogram::{HistogramConfig, SlidingHistogram};
use swat::tree::{ExactWindow, InnerProductQuery, RangeQuery, SwatConfig, SwatTree};

/// Calls handled per minute: diurnal cycle + noise + occasional bursts.
fn call_volume(minute: u64, rng: &mut impl Rng, burst: &mut f64) -> f64 {
    let day_phase = 2.0 * std::f64::consts::PI * (minute % 1440) as f64 / 1440.0;
    let base = 600.0 + 350.0 * (day_phase - 2.0).sin();
    *burst *= 0.9;
    if rng.gen_bool(0.003) {
        *burst += rng.gen_range(200.0..800.0); // incident / flash crowd
    }
    (base + *burst + rng.gen_range(-40.0..40.0)).max(0.0)
}

fn main() {
    let window = 1024;
    let mut tree = SwatTree::new(SwatConfig::new(window).expect("valid"));
    let mut hist = SlidingHistogram::new(HistogramConfig::new(window, 30, 0.1).expect("valid"));
    let mut truth = ExactWindow::new(window);

    let mut rng = swat::sim::rng_stream(2003, 1);
    let mut burst = 0.0;
    for minute in 0..5_000u64 {
        let v = call_volume(minute, &mut rng, &mut burst);
        tree.push(v);
        hist.push(v);
        truth.push(v);
    }
    println!(
        "switch processed {} minutes of call volumes; summary: {} nodes, {} bytes\n",
        tree.arrivals(),
        tree.summary_count(),
        tree.space_bytes()
    );

    // Exponentially weighted recent load — the forecasting primitive the
    // paper's intro motivates ("the number of hits in the immediate past
    // can be used to gauge popularity").
    let q = InnerProductQuery::exponential(64, 50.0);
    let a = tree.inner_product(&q).expect("warm");
    let exact = q.exact(&truth.to_vec());
    println!("recency-weighted load index:");
    println!(
        "  SWAT estimate  = {:.1} (bound ±{:.1}, {} nodes touched)",
        a.value, a.error_bound, a.nodes_used
    );
    println!("  exact          = {exact:.1}");
    println!(
        "  relative error = {:.5}\n",
        (a.value - exact).abs() / exact
    );

    // The same index from the histogram baseline, for comparison.
    let h = hist.build();
    let hv = h.inner_product(q.indices(), q.weights());
    println!("histogram baseline (B=30, eps=0.1):");
    println!("  estimate       = {hv:.1}");
    println!("  relative error = {:.5}\n", (hv - exact).abs() / exact);

    // Range query: in the last ~17 hours, when did volume approach the
    // 950-calls/minute alert threshold?
    let rq = RangeQuery::new(950.0, 100.0, 0, window - 1);
    let hot = tree.range_query(&rq).expect("warm");
    match hot.iter().map(|m| m.index).max() {
        Some(oldest) => println!(
            "{} minutes in the window ran near the alert threshold (950±100); earliest was {} minutes ago",
            hot.len(),
            oldest
        ),
        None => println!("no minute in the window approached the 950-calls alert threshold"),
    }

    // Multi-resolution drill-down: the same point at different levels.
    println!("\nmulti-resolution view of the load 30 minutes ago:");
    for level in [0usize, 3, 6] {
        let opts = swat::tree::QueryOptions::at_level(level);
        let p = tree.point_with(30, opts).expect("warm");
        println!(
            "  from level >= {level}: {:.1} (served at level {}, bound ±{:.1})",
            p.value, p.level, p.error_bound
        );
    }
}
