//! Quickstart: summarize a stream and ask the three query types.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use swat::tree::{InnerProductQuery, RangeQuery, SwatConfig, SwatTree};

fn main() {
    // A SWAT over the last 256 values, one Haar coefficient per node —
    // the paper's configuration. O(log N) space, O(1) amortized updates.
    let config = SwatConfig::new(256).expect("256 is a power of two");
    let mut tree = SwatTree::new(config);

    // Feed a noisy sine wave. Any f64 stream works.
    let stream = (0..2000).map(|i| {
        let t = i as f64;
        50.0 + 30.0 * (t * 0.02).sin() + 5.0 * (t * 0.9).cos()
    });
    tree.extend(stream);
    println!(
        "ingested {} values into {} summaries ({} bytes)",
        tree.arrivals(),
        tree.summary_count(),
        tree.space_bytes()
    );

    // 1. Point query: window index 0 is the newest value.
    let p = tree.point(0).expect("tree is warm");
    println!(
        "newest value ~ {:.2} (guaranteed within ±{:.2}, served by level {})",
        p.value, p.error_bound, p.level
    );
    let old = tree.point(200).expect("tree is warm");
    println!(
        "value 200 steps ago ~ {:.2} (±{:.2}, level {} — coarser for older data)",
        old.value, old.error_bound, old.level
    );

    // 2. Inner-product query: exponentially weighted recent average,
    //    precision requirement 10.
    let q = InnerProductQuery::exponential(32, 10.0);
    let a = tree.inner_product(&q).expect("tree is warm");
    println!(
        "exponential inner product over 32 newest = {:.2} (error bound {:.2}, {} nodes, precision {})",
        a.value,
        a.error_bound,
        a.nodes_used,
        if a.meets_precision { "met" } else { "NOT met" }
    );

    // 3. Range query: when in the last window was the signal near 80?
    let rq = RangeQuery::new(80.0, 2.5, 0, 255);
    let matches = tree.range_query(&rq).expect("tree is warm");
    println!(
        "{} window positions approximately within 80 ± 2.5; first few: {:?}",
        matches.len(),
        matches
            .iter()
            .take(5)
            .map(|m| (m.index, (m.value * 100.0).round() / 100.0))
            .collect::<Vec<_>>()
    );
}
