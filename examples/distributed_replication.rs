//! Distributed stream replication — the paper's §3/§5 scenario.
//!
//! A central data-processing facility (the source) ingests a stream;
//! operation centers (clients) across a spanning tree ask inner-product
//! queries with precision requirements. We run SWAT-ASR against the
//! Divergence Caching and Adaptive Precision Setting baselines on the
//! identical workload and report message costs, hit rates, and space.
//!
//! ```sh
//! cargo run --release --example distributed_replication
//! ```

use swat::net::Topology;
use swat::replication::asr::SwatAsr;
use swat::replication::harness::{run, run_scheme, WorkloadConfig};
use swat::replication::SchemeKind;

fn main() {
    // Six operation centers in a complete binary tree under the source.
    let topo = Topology::complete_binary(2);
    println!(
        "topology: source + {} clients (complete binary tree)",
        topo.client_count()
    );

    let cfg = WorkloadConfig {
        window: 64,
        t_data: 2,  // a new value every 2 ticks
        t_query: 1, // every client queries every tick (read-heavy)
        delta: 30.0,
        horizon: 6_000,
        warmup: 1_200,
        seed: 7,
        ..WorkloadConfig::default()
    };
    let data = swat::data::Dataset::Weather.series(7, 3_100);

    println!(
        "workload: N={}, T_d={}, T_q={}, delta={}, {} ticks measured after {} warm-up\n",
        cfg.window,
        cfg.t_data,
        cfg.t_query,
        cfg.delta,
        cfg.horizon - cfg.warmup,
        cfg.warmup
    );

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>8} {:>14}",
        "scheme", "messages", "updates", "forwards", "hit rate", "approximations"
    );
    for kind in SchemeKind::ALL {
        let out = run(kind, &topo, &data, &cfg);
        let hits = out.metrics.counter("local_hits") as f64;
        let queries = out.metrics.counter("queries").max(1) as f64;
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>7.1}% {:>14}",
            out.scheme,
            out.ledger.total(),
            out.ledger.count(swat::net::MsgKind::Update),
            out.ledger.count(swat::net::MsgKind::QueryForward),
            100.0 * hits / queries,
            out.approximations,
        );
    }

    // The paper's §3 "general case": replicate k coefficients plus a
    // deviation bound instead of plain ranges.
    let mut coeff = SwatAsr::with_coefficients(topo.clone(), cfg.window, 4);
    let out = run_scheme(&mut coeff, &topo, &data, &cfg);
    let hits = out.metrics.counter("local_hits") as f64;
    let queries = out.metrics.counter("queries").max(1) as f64;
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>7.1}% {:>14}   <- k=4 coefficients/segment",
        "ASR-k4",
        out.ledger.total(),
        out.ledger.count(swat::net::MsgKind::Update),
        out.ledger.count(swat::net::MsgKind::QueryForward),
        100.0 * hits / queries,
        out.approximations,
    );

    println!(
        "\nSWAT-ASR replicates O(log N) window *segments* per site and shares them\n\
         down the hierarchy; DC and APS cache every window item per client, so they\n\
         pay per-item refresh and miss traffic — the paper reports 3-5x more messages."
    );
}
