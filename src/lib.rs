//! # SWAT — hierarchical stream summarization in large networks
//!
//! A from-scratch Rust implementation of *SWAT: Hierarchical Stream
//! Summarization in Large Networks* (Bulut & Singh, ICDE 2003): a
//! wavelet-based approximation tree that summarizes a sliding window of a
//! data stream at multiple resolutions with `O(log N)` space and `O(1)`
//! amortized per-arrival maintenance, answering point, range, and
//! inner-product queries biased toward recent data — plus its extension to
//! adaptive replication of stream summaries across a network of clients.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`tree`] — the SWAT approximation tree (the paper's core contribution),
//! * [`wavelet`] — Haar / Daubechies transform machinery,
//! * [`histogram`] — the Guha–Koudas sliding-window histogram baseline,
//! * [`sim`] — a deterministic discrete-event simulation kernel,
//! * [`net`] — spanning-tree network topologies with message accounting,
//! * [`replication`] — SWAT-ASR and the Divergence Caching / Adaptive
//!   Precision Setting baselines,
//! * [`data`] — synthetic and weather-like workload generators.
//!
//! # Quickstart
//!
//! ```
//! use swat::tree::{SwatTree, SwatConfig, InnerProductQuery};
//!
//! // Summarize a sliding window of 16 values, 1 coefficient per node.
//! let mut tree = SwatTree::new(SwatConfig::new(16).unwrap());
//! for i in 0..100 {
//!     tree.push((i % 10) as f64);
//! }
//!
//! // Approximate the most recent value (index 0 = newest).
//! let p = tree.point(0).unwrap();
//! assert!((p.value - 9.0).abs() <= 5.0);
//!
//! // An exponentially weighted inner product over the 4 newest values.
//! let q = InnerProductQuery::exponential(4, 20.0);
//! let answer = tree.inner_product(&q).unwrap();
//! assert!(answer.value.is_finite());
//! ```

pub use swat_data as data;
pub use swat_histogram as histogram;
pub use swat_net as net;
pub use swat_replication as replication;
pub use swat_sim as sim;
pub use swat_tree as tree;
pub use swat_wavelet as wavelet;
